"""Privatizability analysis.

Paper Fig. 3's ``IsPrivatizable(def)``: a scalar definition is
privatizable (with respect to its innermost enclosing loop) when

* every use the definition reaches lies inside that loop,
* the value never crosses an iteration boundary (no flow through the
  loop-header phi), and
* the value is not live at the loop exit.

All three conditions fall out of the SSA chains: a value that escapes
an iteration or the loop necessarily flows through the phi at the loop
header (the header node is the loop's only join point for both the back
edge and the exit edge in our CFG shape).

The ``NEW`` clause of an INDEPENDENT directive asserts privatizability
for the named variables with respect to that loop (HPF semantics), and
the paper's compiler "takes advantage of the NEW clause ... to infer
this"; we honor it identically. For *arrays*, phpf "currently relies on
directives from the programmer to infer that arrays are privatizable" —
so array privatizability comes only from NEW clauses, with a legality
lint on top.
"""

from __future__ import annotations

from ..ir.cfg import CFG
from ..ir.expr import ArrayElemRef, ScalarRef, affine_form
from ..ir.program import Procedure
from ..ir.stmt import AssignStmt, LoopStmt
from ..ir.symbols import Symbol
from .dataflow import LivenessInfo
from .ssa import SSADef, SSAInfo


class PrivatizabilityInfo:
    """Per-definition scalar privatizability plus per-loop array
    privatizability queries."""

    def __init__(self, proc: Procedure, cfg: CFG, ssa: SSAInfo, liveness: LivenessInfo):
        self.proc = proc
        self.cfg = cfg
        self.ssa = ssa
        self.liveness = liveness

    # -- scalars ---------------------------------------------------------------

    def is_privatizable(self, d: SSADef, loop: LoopStmt | None = None) -> bool:
        """``IsPrivatizable(def)`` of paper Fig. 3, with respect to
        ``loop`` (default: the innermost loop enclosing the def)."""
        if not d.is_real or d.stmt is None:
            return False
        if loop is None:
            loop = d.stmt.loop
        if loop is None:
            return False  # not inside any loop: nothing to privatize against
        if not self.proc.encloses(loop, d.stmt):
            return False

        symbol = d.symbol
        # NEW clause assertion for this loop.
        if symbol.name in loop.new_vars:
            return True

        # Every reached use must be inside the loop.
        for use in self.ssa.reached_uses(d):
            use_stmt = self.ssa.stmt_of_use(use)
            if use_stmt is None or not (
                use_stmt is loop or self.proc.encloses(loop, use_stmt)
            ):
                return False
        # The value must not cross an iteration/exit boundary: no flow
        # through the phi at the loop header.
        header = self.cfg.node_of(loop)
        if self.ssa.flows_through_phi_at(d, header):
            return False
        # Not live at loop exit (defensive double-check; the phi test
        # already implies it in this CFG shape).
        if self.liveness.is_live_out_of_loop(symbol.name, loop):
            return False
        return True

    def privatization_level(self, d: SSADef) -> int | None:
        """The *outermost* 1-based loop level at which ``d`` is
        privatizable, or None. (Note the properties at different levels
        are independent: a value may escape the inner loop yet stay
        confined to one outer iteration.)"""
        if d.stmt is None:
            return None
        for loop in d.stmt.loops_enclosing():  # outermost inward
            if self.is_privatizable(d, loop):
                return loop.level
        return None

    def deepest_privatization_level(self, d: SSADef) -> int | None:
        """The *innermost* loop level at which ``d`` is privatizable —
        the ``l`` of the paper's alignment-validity condition
        ``AlignLevel(r) <= l`` (a deeper level admits more alignment
        targets)."""
        if d.stmt is None:
            return None
        for loop in reversed(d.stmt.loops_enclosing()):  # innermost outward
            if self.is_privatizable(d, loop):
                return loop.level
        return None

    # -- arrays -------------------------------------------------------------------

    def array_privatizable_in(self, array: Symbol, loop: LoopStmt) -> bool:
        """Array privatizability, from the loop's NEW clause."""
        return array.name in loop.new_vars

    def array_new_loops(self, array: Symbol) -> list[LoopStmt]:
        """Loops whose NEW clause names ``array``."""
        return [
            loop for loop in self.proc.loops() if array.name in loop.new_vars
        ]

    def array_needs_privatization(self, array: Symbol, loop: LoopStmt) -> bool:
        """Does ``array`` carry memory-based dependences across
        iterations of ``loop`` that only privatization can remove?

        Paper Section 3.1: "Any lhs array reference in which each
        subscript is either invariant with respect to the parallel loop
        or is an affine function of inner loop indices contributes to
        memory-based loop-carried dependences, which can be eliminated
        only by privatizing that array."
        """
        inner_vars = {
            l.var.name
            for l in loop.walk()
            if isinstance(l, LoopStmt) and l is not loop
        }
        for stmt in loop.walk():
            if not isinstance(stmt, AssignStmt):
                continue
            if not isinstance(stmt.lhs, ArrayElemRef):
                continue
            if stmt.lhs.symbol.name != array.name:
                continue
            all_inner_or_invariant = True
            for sub in stmt.lhs.subscripts:
                form = affine_form(sub)
                if form is None:
                    all_inner_or_invariant = False
                    break
                if form.coeff(loop.var) != 0:
                    all_inner_or_invariant = False
                    break
                for s in form.symbols:
                    if s.name != loop.var.name and s.name not in inner_vars and not s.is_loop_var:
                        pass  # free symbol invariant w.r.t. the loop: fine
            if all_inner_or_invariant:
                return True
        return False

    def eliminated_dependences(self, array: Symbol, loop: LoopStmt) -> int:
        """Count of memory-based loop-carried dependences on ``array``
        within ``loop`` that privatization eliminates (reporting aid)."""
        from .dependence import array_dependences

        count = 0
        for dep in array_dependences(self.proc, loop):
            if dep.array.name == array.name and dep.loop_carried and dep.kind in (
                "anti",
                "output",
            ):
                count += 1
        return count
