"""repro.obs — structured tracing + metrics for the compiler and the
simulator.

Two small, dependency-free primitives:

- :class:`Tracer` — span-based event collection with Chrome
  ``trace_event`` JSON export (``chrome://tracing`` / Perfetto).  The
  disabled tracer (:data:`NULL_TRACER`) is a near-zero-overhead no-op,
  so every component can take a tracer unconditionally.
- :class:`Metrics` — a registry of counters, gauges, and histogram
  summaries with a flat, deterministically ordered JSON export.

See the "Observability" section of ``docs/ARCHITECTURE.md`` for the
span taxonomy and how to enable/export from the CLI and benchmarks.
"""

from .metrics import Histogram, Metrics
from .tracer import NULL_TRACER, Tracer, validate_chrome_trace

__all__ = [
    "Histogram",
    "Metrics",
    "NULL_TRACER",
    "Tracer",
    "validate_chrome_trace",
]
