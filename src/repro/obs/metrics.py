"""Metrics registry: counters, gauges, and streaming histograms.

One :class:`Metrics` instance aggregates everything a run wants to
report — tier coverage, slab bail reasons, per-event message/element
counts, analysis/lowering cache hit rates — and serializes to a flat,
deterministically ordered JSON document (``repro run --metrics``, the
benchmark coverage/traffic columns, and the CI determinism gate all
consume it).

The registry is not a hot-path object: producers either record at
coarse granularity (per pass, per takeover, per bail) or batch-fill it
from already-collected statistics after a run (see
``SPMDSimulator.collect_metrics``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Histogram:
    """Streaming summary of an observed distribution."""

    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count if self.count else None,
        }


@dataclass
class Metrics:
    """Named counters (monotonic), gauges (last value wins), and
    histograms (summaries of observed values)."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, Any] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: Any) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def merge(self, other: "Metrics") -> "Metrics":
        for name, value in other.counters.items():
            self.inc(name, value)
        self.gauges.update(other.gauges)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.count += hist.count
            mine.total += hist.total
            for bound in ("min", "max"):
                theirs = getattr(hist, bound)
                ours = getattr(mine, bound)
                if theirs is not None:
                    pick = min if bound == "min" else max
                    setattr(
                        mine, bound,
                        theirs if ours is None else pick(ours, theirs),
                    )
        return self

    # -- export ------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """Deterministically ordered JSON-serializable snapshot."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: hist.as_dict()
                for name, hist in sorted(self.histograms.items())
            },
        }

    def render(self) -> str:
        """Human-readable dump (``repro run --metrics`` without a path)."""
        lines: list[str] = []
        for name, value in sorted(self.counters.items()):
            lines.append(f"  {name} = {value:g}")
        for name, value in sorted(self.gauges.items()):
            shown = f"{value:g}" if isinstance(value, (int, float)) else value
            lines.append(f"  {name} = {shown}")
        for name, hist in sorted(self.histograms.items()):
            d = hist.as_dict()
            mean = d["mean"]
            lines.append(
                f"  {name} = n={d['count']} sum={d['sum']:g} "
                f"min={d['min']:g} max={d['max']:g} "
                f"mean={mean:.6g}" if d["count"] else f"  {name} = n=0"
            )
        return "\n".join(lines) if lines else "  (no metrics recorded)"

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")
