"""Span-based tracing with Chrome ``trace_event`` export.

A :class:`Tracer` collects *spans* (duration events wrapping one unit
of work: a compiler pass, a simulator tier entry, a slab takeover) and
*instant* events (points in time: a message startup, a fetch-stage
snapshot, a slab bail).  The recorded stream serializes to the Chrome
``trace_event`` JSON format (the ``{"traceEvents": [...]}`` object
form), loadable in ``chrome://tracing`` / Perfetto.

The disabled tracer is the hot-path contract: ``span()`` returns one
shared no-op context manager and ``instant()`` returns immediately, so
instrumented code pays one attribute load and one branch.  Hot inner
loops additionally guard on :attr:`Tracer.enabled` so argument tuples
are never even built.  ``NULL_TRACER`` is the process-wide disabled
instance every instrumented component defaults to.
"""

from __future__ import annotations

import json
import time
from typing import Any


class _NullSpan:
    """Shared no-op context manager handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def add(self, **args: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """One live duration event; records a complete ("ph": "X") event
    on exit."""

    __slots__ = ("tracer", "name", "cat", "tid", "args", "start_us")

    def __init__(self, tracer: "Tracer", name: str, cat: str, tid: int,
                 args: dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.tid = tid
        self.args = args
        self.start_us = 0.0

    def __enter__(self) -> "_Span":
        self.start_us = self.tracer._now_us()
        return self

    def __exit__(self, *exc) -> None:
        tracer = self.tracer
        end = tracer._now_us()
        tracer._events.append(
            {
                "name": self.name,
                "cat": self.cat or "default",
                "ph": "X",
                "ts": self.start_us,
                "dur": end - self.start_us,
                "pid": tracer.pid,
                "tid": self.tid,
                "args": self.args,
            }
        )

    def add(self, **args: Any) -> None:
        """Attach arguments discovered while the span is open."""
        self.args.update(args)


class Tracer:
    """Collects trace events; exports Chrome ``trace_event`` JSON.

    Construct with ``enabled=False`` (or use :data:`NULL_TRACER`) for a
    no-op tracer whose ``span``/``instant`` calls cost one branch.
    """

    __slots__ = ("enabled", "pid", "_events", "_t0")

    def __init__(self, enabled: bool = True, pid: int = 0):
        self.enabled = enabled
        self.pid = pid
        self._events: list[dict[str, Any]] = []
        self._t0 = time.perf_counter_ns()

    def _now_us(self) -> float:
        return (time.perf_counter_ns() - self._t0) / 1000.0

    # -- recording ---------------------------------------------------------

    def span(self, name: str, cat: str = "", tid: int = 0, **args: Any):
        """Context manager timing one unit of work as a complete event."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, cat, tid, args)

    def instant(self, name: str, cat: str = "", tid: int = 0, **args: Any) -> None:
        """One point-in-time event ("ph": "i", thread scope)."""
        if not self.enabled:
            return
        self._events.append(
            {
                "name": name,
                "cat": cat or "default",
                "ph": "i",
                "s": "t",
                "ts": self._now_us(),
                "pid": self.pid,
                "tid": tid,
                "args": args,
            }
        )

    def counter(self, name: str, cat: str = "", **values: float) -> None:
        """A counter sample ("ph": "C") — one track per ``name``."""
        if not self.enabled:
            return
        self._events.append(
            {
                "name": name,
                "cat": cat or "default",
                "ph": "C",
                "ts": self._now_us(),
                "pid": self.pid,
                "tid": 0,
                "args": values,
            }
        )

    # -- introspection / export --------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> list[dict[str, Any]]:
        """The recorded events (live list; treat as read-only)."""
        return self._events

    def clear(self) -> None:
        self._events.clear()

    def to_chrome(self) -> dict[str, Any]:
        """The Chrome trace object form: ``{"traceEvents": [...]}``."""
        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs"},
        }

    def write(self, path: str) -> None:
        """Serialize to ``path`` as Chrome trace JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle, indent=1)
            handle.write("\n")


#: the process-wide disabled tracer every component defaults to
NULL_TRACER = Tracer(enabled=False)


def validate_chrome_trace(obj: Any) -> list[str]:
    """Structural check of a Chrome trace object (the CI gate uses it):
    returns a list of problems, empty when the trace is well-formed."""
    problems: list[str] = []
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        return ["not an object with a traceEvents list"]
    events = obj["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in event:
                problems.append(f"event {i} missing {field!r}")
        if event.get("ph") == "X" and "dur" not in event:
            problems.append(f"event {i} is complete ('X') but has no dur")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i} has bad ts {ts!r}")
    return problems
