"""Fluent Python builder for mini-HPF programs.

For users who want to drive the compiler from Python without writing
Fortran text::

    from repro.builder import ProgramBuilder

    b = ProgramBuilder("SMOOTH", procs=(4,))
    U = b.array("U", (64,), distribute=("BLOCK",))
    V = b.array("V", (64,), align_with=U)
    t = b.scalar("t")
    i = b.index("i")
    with b.loop(i, 2, 63):
        b.assign(t, U[i - 1] + 2.0 * U[i] + U[i + 1])
        b.assign(V[i], 0.25 * t)
    compiled = b.compile()          # -> CompiledProgram
    print(b.source())               # the generated mini-HPF text

The builder emits mini-HPF source, so everything it produces is also a
valid input for the CLI and files on disk.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ReproError


class BuilderError(ReproError):
    pass


# --------------------------------------------------------------------------
# Expression wrappers
# --------------------------------------------------------------------------


class Expr:
    """A tiny expression wrapper that renders to mini-HPF text."""

    def __init__(self, text: str):
        self.text = text

    def __str__(self) -> str:
        return self.text

    # arithmetic -----------------------------------------------------------
    def _bin(self, op: str, other, swapped=False) -> "Expr":
        lhs, rhs = (_render(other), self.text) if swapped else (self.text, _render(other))
        return Expr(f"({lhs} {op} {rhs})")

    def __add__(self, other):
        return self._bin("+", other)

    def __radd__(self, other):
        return self._bin("+", other, swapped=True)

    def __sub__(self, other):
        return self._bin("-", other)

    def __rsub__(self, other):
        return self._bin("-", other, swapped=True)

    def __mul__(self, other):
        return self._bin("*", other)

    def __rmul__(self, other):
        return self._bin("*", other, swapped=True)

    def __truediv__(self, other):
        return self._bin("/", other)

    def __rtruediv__(self, other):
        return self._bin("/", other, swapped=True)

    def __pow__(self, other):
        return self._bin("**", other)

    def __neg__(self):
        return Expr(f"(-{self.text})")

    # comparisons ----------------------------------------------------------
    def __gt__(self, other):
        return Expr(f"({self.text} > {_render(other)})")

    def __ge__(self, other):
        return Expr(f"({self.text} >= {_render(other)})")

    def __lt__(self, other):
        return Expr(f"({self.text} < {_render(other)})")

    def __le__(self, other):
        return Expr(f"({self.text} <= {_render(other)})")

    def eq(self, other):
        return Expr(f"({self.text} == {_render(other)})")

    def ne(self, other):
        return Expr(f"({self.text} /= {_render(other)})")


def _render(value) -> str:
    if isinstance(value, Expr):
        return value.text
    if isinstance(value, bool):
        return ".TRUE." if value else ".FALSE."
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, int):
        return str(value)
    raise BuilderError(f"cannot use {value!r} in an expression")


class ScalarVar(Expr):
    def __init__(self, name: str):
        super().__init__(name.upper())
        self.name = name.upper()


class IndexVar(ScalarVar):
    pass


class ArrayVar:
    def __init__(self, name: str, shape: tuple[int, ...]):
        self.name = name.upper()
        self.shape = shape

    def __getitem__(self, subscripts) -> Expr:
        if not isinstance(subscripts, tuple):
            subscripts = (subscripts,)
        if len(subscripts) != len(self.shape):
            raise BuilderError(
                f"{self.name} has rank {len(self.shape)}, got "
                f"{len(subscripts)} subscripts"
            )
        rendered = ", ".join(_render(s) for s in subscripts)
        return Expr(f"{self.name}({rendered})")


def intrinsic(name: str, *args) -> Expr:
    """``intrinsic("MAX", a, b)`` etc."""
    rendered = ", ".join(_render(a) for a in args)
    return Expr(f"{name.upper()}({rendered})")


# --------------------------------------------------------------------------
# The builder
# --------------------------------------------------------------------------


@dataclass
class _LoopCtx:
    builder: "ProgramBuilder"
    header: str
    independent_clause: str | None = None

    def __enter__(self):
        if self.independent_clause is not None:
            self.builder._emit(f"!HPF$ INDEPENDENT{self.independent_clause}", indent=False)
        self.builder._emit(self.header)
        self.builder._depth += 1
        return self

    def __exit__(self, exc_type, exc, tb):
        self.builder._depth -= 1
        self.builder._emit("END DO")
        return False


@dataclass
class _IfCtx:
    builder: "ProgramBuilder"
    cond: Expr

    def __enter__(self):
        self.builder._emit(f"IF ({self.cond}) THEN")
        self.builder._depth += 1
        return self

    def __exit__(self, exc_type, exc, tb):
        self.builder._depth -= 1
        self.builder._emit("END IF")
        return False

    def otherwise(self):
        """Switch to the ELSE branch (call inside the ``with`` block)."""
        self.builder._depth -= 1
        self.builder._emit("ELSE")
        self.builder._depth += 1


class ProgramBuilder:
    def __init__(self, name: str, procs: tuple[int, ...] | None = None):
        self.name = name.upper()
        self.procs = procs
        self._decls: list[str] = []
        self._directives: list[str] = []
        self._body: list[str] = []
        self._depth = 1
        self._names: set[str] = set()
        if procs is not None:
            shape = ", ".join(str(p) for p in procs)
            self._directives.append(f"!HPF$ PROCESSORS PGRID({shape})")

    # -- declarations -------------------------------------------------------

    def _check_name(self, name: str) -> str:
        key = name.upper()
        if key in self._names:
            raise BuilderError(f"name {name!r} already declared")
        self._names.add(key)
        return key

    def array(
        self,
        name: str,
        shape: tuple[int, ...],
        kind: str = "REAL",
        distribute: tuple[str, ...] | None = None,
        align_with: ArrayVar | None = None,
        align_subs: str | None = None,
    ) -> ArrayVar:
        key = self._check_name(name)
        dims = ", ".join(str(s) for s in shape)
        self._decls.append(f"  {kind} {key}({dims})")
        if distribute is not None and align_with is not None:
            raise BuilderError(f"{name}: choose DISTRIBUTE or ALIGN, not both")
        if distribute is not None:
            formats = ", ".join(distribute)
            self._directives.append(f"!HPF$ DISTRIBUTE ({formats}) :: {key}")
        if align_with is not None:
            if align_subs is None:
                dummies = ", ".join(f"d{k}" for k in range(len(shape)))
                align_subs = f"({dummies}) WITH {align_with.name}({dummies})"
            self._directives.append(f"!HPF$ ALIGN {key}{align_subs}")
        return ArrayVar(key, shape)

    def scalar(self, name: str, kind: str = "REAL") -> ScalarVar:
        key = self._check_name(name)
        self._decls.append(f"  {kind} {key}")
        return ScalarVar(key)

    def index(self, name: str) -> IndexVar:
        # Loop indices need no declaration (implicit INTEGER), but
        # reserve the name.
        return IndexVar(self._check_name(name))

    # -- statements -------------------------------------------------------------

    def _emit(self, text: str, indent: bool = True) -> None:
        pad = "  " * self._depth if indent else ""
        self._body.append(f"{pad}{text}")

    def assign(self, target, value) -> None:
        self._emit(f"{_render(target)} = {_render(value)}")

    def loop(
        self,
        index: IndexVar,
        low,
        high,
        step=None,
        new: list | None = None,
        reduction: list | None = None,
    ) -> _LoopCtx:
        header = f"DO {index.name} = {_render(low)}, {_render(high)}"
        if step is not None:
            header += f", {_render(step)}"
        clause = None
        if new or reduction:
            clause = ""
            if new:
                clause += ", NEW(" + ", ".join(v.name for v in new) + ")"
            if reduction:
                clause += ", REDUCTION(" + ", ".join(v.name for v in reduction) + ")"
        return _LoopCtx(builder=self, header=header, independent_clause=clause)

    def when(self, cond: Expr) -> _IfCtx:
        return _IfCtx(builder=self, cond=cond)

    # -- products ------------------------------------------------------------------

    def source(self) -> str:
        lines = [f"PROGRAM {self.name}"]
        lines.extend(self._decls)
        lines.extend(self._directives)
        lines.extend(self._body)
        lines.append("END PROGRAM")
        return "\n".join(lines) + "\n"

    def compile(self, options=None):
        from .core.driver import CompilerOptions, compile_source

        return compile_source(self.source(), options or CompilerOptions())
