"""Sweep grids: what to run, and what comes back.

A :class:`SweepSpec` declares an experiment grid — programs ×
processor counts × ``CompilerOptions`` axes — and expands it into
ordered :class:`SweepJob` records.  The engine
(:func:`repro.sweep.run_sweep`) executes jobs and streams back flat
:class:`SweepResult` records carrying whichever measurements the job's
mode produced:

* ``estimate`` — analytic cost-model times (the paper tables),
* ``simulate`` — virtual clocks, canonical stats, tier coverage, and
  traffic counters from the SPMD machine simulator,
* ``compile``  — the mapping report only.

Both record types are plain picklable dataclasses: jobs travel to pool
workers, results travel back, and ``as_dict()`` serializes a result
for JSON artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from itertools import product
from typing import Any, Callable, Mapping, Sequence

from ..core.driver import CompilerOptions

#: a program is source text, or a callable building source for a
#: processor count (the paper generators: ``tomcatv_source(procs=p)``)
ProgramSource = "str | Callable[[int | None], str]"

MODES = ("estimate", "simulate", "compile")


def _describe_options(options: CompilerOptions) -> str:
    parts = []
    for name, value in sorted(options.overrides_from_defaults().items()):
        if name == "num_procs":
            continue  # already carried as the job's procs / "p=" tag
        if name == "machine":
            value = value.name
        parts.append(f"{name}={value}")
    return ",".join(parts)


@dataclass(frozen=True)
class SweepJob:
    """One grid point: compile ``source`` under ``options`` and measure
    it per ``mode``."""

    program: str
    source: str
    options: CompilerOptions = field(default_factory=CompilerOptions)
    mode: str = "estimate"
    #: requested processor count (None: the source's PROCESSORS
    #: directive decides)
    procs: int | None = None
    #: rng seed for generated simulator inputs
    seed: int = 0
    label: str = ""
    #: failure-injection knobs, honoured only inside pool workers (the
    #: engine's crash/timeout tests): ``crash_attempts`` /
    #: ``hang_attempts`` (+ ``hang_seconds``) / ``fail_attempts``
    inject: Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if not self.label:
            procs = self.procs if self.procs is not None else "?"
            described = _describe_options(self.options)
            suffix = f",{described}" if described else ""
            object.__setattr__(
                self, "label", f"{self.program}[p={procs}{suffix}]"
            )


@dataclass
class SweepSpec:
    """A declarative grid: ``programs`` × ``procs`` × option ``axes``.

    ``programs`` maps a name to source text or to a callable invoked
    with each processor count (so generated benchmarks re-emit their
    PROCESSORS directive per point).  ``axes`` maps ``CompilerOptions``
    field names to the values to sweep; the cartesian product is taken
    in declaration order.  ``base`` seeds every point's options.
    """

    programs: Mapping[str, Any]
    procs: Sequence[int | None] = (None,)
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    base: CompilerOptions | None = None
    mode: str = "estimate"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if "num_procs" in self.axes:
            raise ValueError(
                "sweep the processor count with SweepSpec.procs, "
                "not an axes entry for num_procs"
            )
        valid = {f.name for f in fields(CompilerOptions)}
        unknown = sorted(set(self.axes) - valid)
        if unknown:
            raise ValueError(
                f"unknown CompilerOptions axis field(s) {unknown}; "
                f"valid fields: {sorted(valid)}"
            )

    def jobs(self) -> list[SweepJob]:
        """Expand to ordered jobs: programs outermost, then procs, then
        the axes product."""
        axis_names = list(self.axes)
        axis_values = [list(self.axes[name]) for name in axis_names]
        expanded: list[SweepJob] = []
        for program, source_spec in self.programs.items():
            for procs in self.procs:
                source = (
                    source_spec(procs)
                    if callable(source_spec)
                    else source_spec
                )
                for combo in product(*axis_values):
                    overrides = dict(zip(axis_names, combo))
                    if procs is not None:
                        overrides["num_procs"] = procs
                    options = CompilerOptions.from_overrides(
                        self.base, **overrides
                    )
                    expanded.append(
                        SweepJob(
                            program=program,
                            source=source,
                            options=options,
                            mode=self.mode,
                            procs=procs,
                            seed=self.seed,
                        )
                    )
        return expanded

    def __len__(self) -> int:
        sizes = [len(values) for values in self.axes.values()]
        total = 1
        for size in sizes:
            total *= size
        return len(self.programs) * len(self.procs) * total


@dataclass
class SweepResult:
    """One grid point's outcome.  Measurement fields are None unless
    the job's mode produced them."""

    label: str
    program: str
    mode: str
    procs: int | None
    options: CompilerOptions
    ok: bool = True
    error: str | None = None
    #: executions needed (1 = first try; crashes/timeouts retry)
    attempts: int = 1
    #: "serial", "worker-N", or "serial-fallback"
    worker: str = "serial"
    #: the compile came from the persistent cache
    cache_hit: bool = False
    #: the compile was skipped entirely: another grid point in the same
    #: run (or another lane of the same batch) had already compiled
    #: this exact (source, options signature)
    compile_dedup: bool = False
    #: wall-clock of the successful execution (compile + measure); for
    #: a batched point, the batch's wall clock amortized over its lanes
    duration_s: float = 0.0
    #: procs sub-groups fused into the batch this point was evaluated
    #: in (1: a dedicated or single-procs evaluation; >1: the procs
    #: axis itself was a lane dimension of one batch)
    procs_lanes: int = 1
    #: why this point left (or degraded within) the batched fast path:
    #: ``"<rung>: <exception summary>"``, None when no rung fired
    fallback_reason: str | None = None
    #: processor-grid size the compiled program actually ran on
    grid_size: int | None = None

    # -- estimate mode -----------------------------------------------------
    total_time: float | None = None
    compute_time: float | None = None
    comm_time: float | None = None

    # -- simulate mode -----------------------------------------------------
    elapsed: float | None = None
    canonical_stats: dict | None = None
    slab_coverage: float | None = None
    messages: int | None = None
    fetches: int | None = None
    unexpected_fetches: int | None = None

    # -- compile mode ------------------------------------------------------
    report: str | None = None

    def as_dict(self) -> dict[str, Any]:
        """Flat JSON record in the shared :mod:`repro.records` schema
        (``kind="sweep-point"``; the virtual clock serializes as
        ``elapsed_s``, per-nest tier decisions surface as ``tiers``)."""
        from ..records import result_record, tiers_of

        record = result_record(
            "sweep-point",
            label=self.label,
            program=self.program,
            mode=self.mode,
            procs=self.procs,
            options=_describe_options(self.options) or "defaults",
            ok=self.ok,
            error=self.error,
            attempts=self.attempts,
            worker=self.worker,
            cache_hit=self.cache_hit,
            compile_dedup=self.compile_dedup,
            duration_s=self.duration_s,
            procs_lanes=self.procs_lanes,
            grid_size=self.grid_size,
        )
        if self.fallback_reason is not None:
            record["fallback_reason"] = self.fallback_reason
        if self.elapsed is not None:
            record["elapsed_s"] = self.elapsed
        tiers = tiers_of(self.canonical_stats)
        if tiers is not None:
            record["tiers"] = tiers
        for name in (
            "total_time",
            "compute_time",
            "comm_time",
            "canonical_stats",
            "slab_coverage",
            "messages",
            "fetches",
            "unexpected_fetches",
            "report",
        ):
            value = getattr(self, name)
            if value is not None:
                record[name] = value
        return record
