"""The sweep engine: fan a job grid out over a worker pool.

``run_sweep`` executes :class:`~repro.sweep.spec.SweepJob` records —
serially in-process, or on a pool of worker processes — and returns
one :class:`~repro.sweep.spec.SweepResult` per job, in job order.
Results also *stream*: an ``on_result`` callback fires as each point
completes, so long grids report progress instead of going dark.

The pool is supervised, not fire-and-forget:

* each worker runs **one job at a time** through its own task/result
  queue pair, so a dead or hung worker forfeits exactly one job;
* a worker that **crashes** (exits without reporting) or **times out**
  (``timeout`` seconds per job) is killed and respawned, and its job
  is requeued with exponential backoff, up to ``retries`` extra
  attempts;
* a job that exhausts its pool attempts **degrades to in-process
  serial execution** — a poisoned pool can slow a sweep down, but it
  cannot lose a grid point;
* a job that raises an ordinary exception (compile error, bad source)
  fails *fast*: deterministic errors are reported, not retried.

Every compile goes through the optional persistent
:class:`~repro.core.diskcache.CompileCache`, shared by path across
workers (stores are atomic), so a warm sweep skips the pass pipeline
at every point.  Pool activity and cache traffic land in a
:class:`repro.obs.Metrics` registry; per-job completion events land in
the :class:`repro.obs.Tracer`.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time
import traceback
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Sequence

from ..core.diskcache import CompileCache, as_compile_cache
from ..core.passes import PassManager
from ..obs import Metrics, NULL_TRACER, Tracer
from .batched import compile_with_memo, plan_batches, run_batched
from .spec import SweepJob, SweepResult, SweepSpec

#: execution modes of :func:`run_sweep` — how the grid is *run*, as
#: opposed to ``SweepSpec.mode`` which says what each point *measures*
EXEC_MODES = ("auto", "pool", "batched")

#: environment marker set inside pool workers; failure injection (the
#: engine's own crash/hang tests) only ever fires where it is set, so
#: the serial fallback path is immune by construction
_WORKER_ENV = "_REPRO_SWEEP_WORKER"


# ---------------------------------------------------------------------------
# In-process execution of one job
# ---------------------------------------------------------------------------


def _measure_payload(job: SweepJob, compiled) -> dict:
    """Run the job's measurement mode over the compiled program."""
    payload: dict = {"grid_size": compiled.grid.size}
    if job.mode == "estimate":
        from ..perf.estimator import PerfEstimator

        estimate = PerfEstimator(compiled).estimate()
        payload.update(
            total_time=estimate.total_time,
            compute_time=estimate.compute_time,
            comm_time=estimate.comm_time,
        )
    elif job.mode == "simulate":
        import numpy as np

        from ..machine.simulator import simulate

        rng = np.random.default_rng(job.seed)
        inputs = {}
        for symbol in compiled.proc.symbols.arrays():
            shape = tuple(symbol.extent(d) for d in range(symbol.rank))
            inputs[symbol.name] = rng.uniform(0.5, 1.5, shape)
        # tier="auto" matches Session.run and the batched fast path
        # (which the parity suite byte-compares against this payload)
        sim = simulate(compiled, inputs, tier="auto")
        payload.update(
            elapsed=sim.elapsed,
            canonical_stats=sim.canonical_stats(),
            slab_coverage=round(sim.slab_coverage, 6),
            messages=sim.stats.messages,
            fetches=sim.stats.fetches,
            unexpected_fetches=sim.stats.unexpected_fetches,
        )
    else:  # "compile"
        payload.update(report=compiled.report())
    return payload


def execute_job(
    job: SweepJob,
    *,
    manager: PassManager | None = None,
    cache: CompileCache | None = None,
    memo: dict | None = None,
) -> SweepResult:
    """Compile (through the cache when given) and measure one job
    in-process.  Never raises: failures come back as ``ok=False``
    records carrying the traceback.

    ``memo`` is an in-run compiled-program table keyed on ``(source,
    options signature)``: grid points that repeat a compile (duplicate
    points, points differing only in seed) reuse it instead of
    re-running the pass pipeline — pool workers keep one per process,
    the serial path one per sweep.  A memo hit sets
    ``result.compile_dedup``.
    """
    started = time.perf_counter()
    result = SweepResult(
        label=job.label,
        program=job.program,
        mode=job.mode,
        procs=job.procs,
        options=job.options,
    )
    try:
        manager = manager or PassManager()
        compiled, hit, deduped = compile_with_memo(
            job, manager=manager, cache=cache, memo=memo
        )
        result.cache_hit = hit
        result.compile_dedup = deduped
        for name, value in _measure_payload(job, compiled).items():
            setattr(result, name, value)
    except Exception:
        result.ok = False
        result.error = traceback.format_exc()
    result.duration_s = time.perf_counter() - started
    return result


# ---------------------------------------------------------------------------
# Pool worker
# ---------------------------------------------------------------------------


def _apply_injection(job: SweepJob, attempt: int) -> None:
    """Honour a job's failure-injection knobs (tests only; guarded by
    the worker environment marker)."""
    inject = dict(job.inject or {})
    if not inject or _WORKER_ENV not in os.environ:
        return
    if attempt <= int(inject.get("crash_attempts", 0)):
        os._exit(32)  # simulate a hard worker death (segfault/OOM kill)
    if attempt <= int(inject.get("hang_attempts", 0)):
        time.sleep(float(inject.get("hang_seconds", 3600.0)))
    if attempt <= int(inject.get("fail_attempts", 0)):
        raise RuntimeError(f"injected failure (attempt {attempt})")


def _worker_main(worker_id: int, task_q, result_q, cache_root: str | None):
    """One pool worker: executes one task at a time until poisoned.
    Keeps a process-lifetime PassManager so repeated points of the same
    program share parse + front-end analyses even on cache misses."""
    os.environ[_WORKER_ENV] = str(worker_id)
    cache = CompileCache(cache_root) if cache_root else None
    manager = PassManager()
    memo: dict = {}
    while True:
        task = task_q.get()
        if task is None:
            return
        index, attempt, job = task
        try:
            _apply_injection(job, attempt)
            result = execute_job(job, manager=manager, cache=cache, memo=memo)
        except Exception:
            result = SweepResult(
                label=job.label,
                program=job.program,
                mode=job.mode,
                procs=job.procs,
                options=job.options,
                ok=False,
                error=traceback.format_exc(),
            )
        result_q.put((index, attempt, result))


# ---------------------------------------------------------------------------
# The supervisor
# ---------------------------------------------------------------------------


@dataclass
class _Worker:
    id: int
    proc: multiprocessing.Process
    task_q: object
    result_q: object
    #: (job index, attempt, deadline or None) while busy
    current: tuple[int, int, float | None] | None = None


class _Supervisor:
    def __init__(
        self,
        jobs: Sequence[SweepJob],
        *,
        workers: int,
        timeout: float | None,
        retries: int,
        backoff: float,
        cache: CompileCache | None,
        tracer: Tracer,
        metrics: Metrics | None,
        on_result: Callable[[SweepResult], None] | None,
    ):
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.cache = cache
        self.tracer = tracer
        self.metrics = metrics
        self.on_result = on_result
        self.results: dict[int, SweepResult] = {}
        #: (job index, attempt, earliest dispatch time)
        self.pending: deque[tuple[int, int, float]] = deque(
            (index, 1, 0.0) for index in range(len(jobs))
        )
        self.ctx = multiprocessing.get_context()
        self.workers: list[_Worker] = []
        self.target_workers = workers
        self.next_worker_id = 0
        self.fallback_manager: PassManager | None = None
        self.fallback_memo: dict = {}

    # -- worker lifecycle --------------------------------------------------

    def _spawn_worker(self) -> _Worker | None:
        try:
            task_q = self.ctx.Queue()
            result_q = self.ctx.Queue()
            worker_id = self.next_worker_id
            self.next_worker_id += 1
            proc = self.ctx.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    task_q,
                    result_q,
                    str(self.cache.root) if self.cache else None,
                ),
                daemon=True,
                name=f"repro-sweep-{worker_id}",
            )
            proc.start()
        except Exception:
            return None
        worker = _Worker(id=worker_id, proc=proc, task_q=task_q, result_q=result_q)
        self.workers.append(worker)
        return worker

    def _discard_worker(self, worker: _Worker, *, kill: bool) -> None:
        self.workers.remove(worker)
        if kill and worker.proc.is_alive():
            worker.proc.terminate()
            worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():  # pragma: no cover - stubborn child
                worker.proc.kill()
                worker.proc.join(timeout=1.0)
        else:
            worker.proc.join(timeout=1.0)
        # the queues die with the worker: a process killed mid-put may
        # leave its own queue locked, so nothing shared is reused

    def _shutdown(self) -> None:
        for worker in list(self.workers):
            try:
                worker.task_q.put_nowait(None)
            except Exception:
                pass
        deadline = time.monotonic() + 2.0
        for worker in list(self.workers):
            worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=1.0)

    # -- bookkeeping -------------------------------------------------------

    def _inc(self, name: str, amount: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, amount)

    def _record(self, index: int, attempt: int, result: SweepResult) -> None:
        result.attempts = attempt
        self.results[index] = result
        self._inc("sweep.jobs_ok" if result.ok else "sweep.jobs_failed")
        if result.cache_hit:
            self._inc("sweep.cache_hits")
        if result.compile_dedup:
            self._inc("sweep.compile_dedup")
        self.tracer.instant(
            "sweep.job",
            cat="sweep",
            label=result.label,
            ok=result.ok,
            attempts=attempt,
            worker=result.worker,
            cache_hit=result.cache_hit,
            duration_s=round(result.duration_s, 6),
        )
        if self.on_result is not None:
            self.on_result(result)

    def _serial_fallback(self, index: int, attempt: int, reason: str) -> None:
        """The pool failed this job ``retries + 1`` times: run it here,
        in-process, so the grid point is never lost."""
        self._inc("sweep.serial_fallbacks")
        if self.fallback_manager is None:
            self.fallback_manager = PassManager()
        job = self.jobs[index]
        result = execute_job(
            job,
            manager=self.fallback_manager,
            cache=self.cache,
            memo=self.fallback_memo,
        )
        result.worker = "serial-fallback"
        if not result.ok and result.error is not None:
            result.error = f"{reason}; serial fallback also failed:\n{result.error}"
        self._record(index, attempt, result)

    def _requeue(self, index: int, attempt: int, reason: str) -> None:
        if attempt > self.retries:
            self._serial_fallback(index, attempt, reason)
            return
        self._inc("sweep.retries")
        delay = self.backoff * (2 ** (attempt - 1))
        self.pending.append((index, attempt + 1, time.monotonic() + delay))

    # -- the loop ----------------------------------------------------------

    def run(self) -> list[SweepResult]:
        total = len(self.jobs)
        try:
            while len(self.results) < total:
                progressed = self._drain_results()
                progressed |= self._reap_failures()
                progressed |= self._dispatch()
                if len(self.results) >= total:
                    break
                if not self.workers and self.pending:
                    # the pool cannot be (re)built: degrade fully
                    while self.pending:
                        index, attempt, _ = self.pending.popleft()
                        self._serial_fallback(
                            index, attempt, "worker pool unavailable"
                        )
                    break
                if not progressed:
                    # short poll: warm (cache-hit) jobs complete in
                    # single-digit milliseconds, so a coarse sleep here
                    # would dominate the whole sweep's wall clock
                    time.sleep(0.001)
        finally:
            self._shutdown()
        return [self.results[index] for index in range(total)]

    def _drain_results(self) -> bool:
        progressed = False
        for worker in list(self.workers):
            while True:
                try:
                    index, attempt, result = worker.result_q.get_nowait()
                except (queue_mod.Empty, OSError, EOFError):
                    break
                result.worker = f"worker-{worker.id}"
                worker.current = None
                self._record(index, attempt, result)
                progressed = True
        return progressed

    def _reap_failures(self) -> bool:
        progressed = False
        now = time.monotonic()
        for worker in list(self.workers):
            if worker.current is None:
                if not worker.proc.is_alive():
                    # idle worker died (startup failure): just drop it
                    self._discard_worker(worker, kill=False)
                    progressed = True
                continue
            index, attempt, deadline = worker.current
            if not worker.proc.is_alive():
                self._inc("sweep.worker_crashes")
                self._discard_worker(worker, kill=False)
                self._requeue(index, attempt, "worker crashed")
                progressed = True
            elif deadline is not None and now > deadline:
                self._inc("sweep.timeouts")
                self._discard_worker(worker, kill=True)
                self._requeue(
                    index, attempt, f"timed out after {self.timeout}s"
                )
                progressed = True
        return progressed

    def _dispatch(self) -> bool:
        progressed = False
        now = time.monotonic()
        remaining = len(self.jobs) - len(self.results)
        busy = sum(1 for w in self.workers if w.current is not None)
        while (
            len(self.workers) < min(self.target_workers, remaining)
            and len(self.workers) - busy == 0
            and self.pending
        ):
            if self._spawn_worker() is None:
                break
        for worker in self.workers:
            if worker.current is not None or not self.pending:
                continue
            index, attempt, ready = self.pending[0]
            if ready > now:
                continue
            self.pending.popleft()
            deadline = now + self.timeout if self.timeout else None
            try:
                worker.task_q.put((index, attempt, self.jobs[index]))
            except Exception:
                self._discard_worker(worker, kill=True)
                self._requeue(index, attempt, "task dispatch failed")
                continue
            worker.current = (index, attempt, deadline)
            progressed = True
        return progressed


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def _run_job_list(
    jobs: Sequence[SweepJob],
    *,
    workers: int,
    timeout: float | None,
    retries: int,
    backoff: float,
    cache: CompileCache | None,
    manager: PassManager | None,
    tracer: Tracer,
    metrics: Metrics | None,
    on_result: Callable[[SweepResult], None] | None,
) -> list[SweepResult]:
    """The per-job execution paths (serial in-process, or the
    supervised pool), shared by the pool mode and the batched mode's
    non-batchable remainder."""
    if workers <= 1 or len(jobs) == 1:
        shared = manager or PassManager(tracer=tracer)
        memo: dict = {}
        results = []
        for job in jobs:
            with tracer.span("sweep.job", cat="sweep", label=job.label):
                result = execute_job(
                    job, manager=shared, cache=cache, memo=memo
                )
            if metrics is not None:
                metrics.inc(
                    "sweep.jobs_ok" if result.ok else "sweep.jobs_failed"
                )
                if result.cache_hit:
                    metrics.inc("sweep.cache_hits")
                if result.compile_dedup:
                    metrics.inc("sweep.compile_dedup")
            if on_result is not None:
                on_result(result)
            results.append(result)
        return results
    supervisor = _Supervisor(
        jobs,
        workers=workers,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        cache=cache,
        tracer=tracer,
        metrics=metrics,
        on_result=on_result,
    )
    return supervisor.run()


def run_sweep(
    spec: SweepSpec | Iterable[SweepJob],
    *,
    workers: int | None = None,
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.1,
    cache: CompileCache | str | os.PathLike | bool | None = None,
    manager: PassManager | None = None,
    tracer: Tracer | None = None,
    metrics: Metrics | None = None,
    on_result: Callable[[SweepResult], None] | None = None,
    mode: str = "auto",
) -> list[SweepResult]:
    """Execute a sweep, returning one result per job in job order.

    ``workers``: None picks ``min(cpu_count, job count)``; 0 or 1
    forces in-process serial execution (sharing ``manager`` across
    points, so front-end analyses are reused like the table builders
    always did).  ``timeout`` is per job, in seconds; ``retries``
    bounds how often a crashed or timed-out job is redispatched
    (with ``backoff * 2**attempt`` delays) before the supervisor runs
    it serially itself.  ``cache`` enables the persistent compile
    cache (path, True for the default root, or a
    :class:`CompileCache`).

    ``mode`` picks the execution strategy: ``"pool"`` runs every job
    through the per-job paths above; ``"batched"`` routes
    simulate/estimate points through the vectorized batch evaluator
    (:mod:`repro.sweep.batched`) — points differing only in machine
    parameters share one simulation, points differing only in the
    processor count fuse into procs sub-groups of one batch (sharing
    compiles where the resolved grid agrees, and one fused procs-lane
    extraction/estimate), repeated compiles dedupe — with everything
    non-batchable falling back to the pool; ``"auto"`` (default) uses
    the batched path exactly when some batch has two or more lanes to
    fuse.  Results are identical across modes (the parity suite
    byte-compares them); only the wall clock differs.
    """
    jobs = list(spec.jobs() if isinstance(spec, SweepSpec) else spec)
    if mode not in EXEC_MODES:
        raise ValueError(
            f"mode must be one of {EXEC_MODES}, got {mode!r}"
        )
    tracer = tracer if tracer is not None else NULL_TRACER
    disk_cache = as_compile_cache(cache)
    if metrics is not None:
        metrics.inc("sweep.jobs", len(jobs))
    if workers is None:
        workers = min(os.cpu_count() or 1, len(jobs))
    if not jobs:
        return []

    batches: list = []
    leftover = list(range(len(jobs)))
    if mode != "pool":
        planned, rest = plan_batches(jobs)
        if mode == "batched" or any(len(b) > 1 for b in planned):
            batches, leftover = planned, rest

    with tracer.span(
        "sweep",
        cat="sweep",
        jobs=len(jobs),
        workers=max(workers, 1),
        batches=len(batches),
    ):
        merged: dict[int, SweepResult] = {}
        if batches:
            shared = manager or PassManager(tracer=tracer)
            merged.update(
                run_batched(
                    batches,
                    manager=shared,
                    cache=disk_cache,
                    memo={},
                    tracer=tracer,
                    metrics=metrics,
                    on_result=on_result,
                )
            )
        if leftover:
            rest_results = _run_job_list(
                [jobs[i] for i in leftover],
                workers=min(workers, len(leftover)),
                timeout=timeout,
                retries=retries,
                backoff=backoff,
                cache=disk_cache,
                manager=manager,
                tracer=tracer,
                metrics=metrics,
                on_result=on_result,
            )
            merged.update(zip(leftover, rest_results))
        results = [merged[i] for i in range(len(jobs))]

    if metrics is not None and disk_cache is not None:
        for name, value in disk_cache.stats.as_dict().items():
            metrics.gauge(f"sweep.disk_cache.{name}", value)
    return results
