"""Experiment-grid sweeps over the compiler and simulator.

Declare a grid with :class:`SweepSpec`, run it with
:func:`run_sweep`, consume ordered :class:`SweepResult` records.
"""

from .engine import execute_job, run_sweep
from .spec import MODES, SweepJob, SweepResult, SweepSpec

__all__ = [
    "MODES",
    "SweepJob",
    "SweepResult",
    "SweepSpec",
    "execute_job",
    "run_sweep",
]
