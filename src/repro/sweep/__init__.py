"""Experiment-grid sweeps over the compiler and simulator.

Declare a grid with :class:`SweepSpec`, run it with
:func:`run_sweep` (``mode="auto"|"pool"|"batched"`` picks the
execution strategy), consume ordered :class:`SweepResult` records.
"""

from .batched import Batch, plan_batches
from .engine import EXEC_MODES, execute_job, run_sweep
from .spec import MODES, SweepJob, SweepResult, SweepSpec

__all__ = [
    "Batch",
    "EXEC_MODES",
    "MODES",
    "SweepJob",
    "SweepResult",
    "SweepSpec",
    "execute_job",
    "plan_batches",
    "run_sweep",
]
