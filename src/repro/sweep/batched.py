"""The batched sweep fast path: one simulation per *batch* of points.

A sweep grid typically varies three kinds of axis:

* **machine parameters** (alpha/beta/flop rate ablations) — these
  never influence execution, only the ``dt`` values charged to the
  virtual clocks, so all such points share one instruction stream;
* **processor count / compiler options** — these change the compiled
  program and must re-simulate, but points repeated across the grid
  can share the compile;
* **measurement mode** — estimate-mode points are closed-form in the
  machine parameters and never need a simulation at all.

:func:`plan_batches` partitions a job list accordingly: jobs that
simulate (or estimate) the same ``(source, options-minus-machine,
seed)`` point form one *batch* whose lanes differ only in
``options.machine``.  :func:`run_batched` then compiles each batch
once and evaluates all lanes in a single pass — a
:class:`~repro.machine.batchexec.VectorMachine` simulation whose
lane-vector clocks charge every machine variant simultaneously, or one
vectorized :class:`~repro.perf.estimator.PerfEstimator` evaluation —
and stitches the lanes back into ordinary per-job
:class:`~repro.sweep.spec.SweepResult` records, byte-identical to what
a dedicated per-point run would have produced.

Jobs that cannot batch (compile-mode points, failure-injection test
jobs) are returned to the caller untouched; :func:`repro.sweep.engine.
run_sweep` sends them down the ordinary pool path.  A batch whose
vectorized evaluation fails for any reason degrades to per-lane
in-process execution — like the pool's serial fallback, the fast path
may lose speed but never a grid point.
"""

from __future__ import annotations

import copy
import dataclasses
import time
import traceback
from dataclasses import dataclass
from typing import Callable

from ..core.diskcache import CompileCache, options_signature
from ..core.driver import CompiledProgram, compile_source
from ..core.passes import PassManager
from ..model import SP2
from ..obs import Metrics, Tracer
from .spec import SweepJob, SweepResult

#: job modes the batched evaluator understands
BATCHABLE_MODES = ("simulate", "estimate")


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


@dataclass
class Batch:
    """One compile + one vectorized evaluation: jobs that differ only
    in ``options.machine`` (the *lanes*), with their positions in the
    original job list."""

    indices: list[int]
    jobs: list[SweepJob]

    def __len__(self) -> int:
        return len(self.jobs)


def batch_key(job: SweepJob) -> tuple:
    """The grouping key: everything that changes execution.  Machine
    parameters are normalized away (they become lanes); the options
    signature is the same canonical closure the compile cache keys
    on, so two jobs with equal keys compile identically."""
    neutral = dataclasses.replace(job.options, machine=SP2)
    return (job.source, job.seed, job.mode, options_signature(neutral))


def plan_batches(
    jobs: list[SweepJob],
) -> tuple[list[Batch], list[int]]:
    """Partition ``jobs`` into vectorizable batches and the indices of
    everything else (pool work).  Every job lands in exactly one place;
    batches preserve first-seen grid order."""
    batches: dict[tuple, Batch] = {}
    leftover: list[int] = []
    for index, job in enumerate(jobs):
        if job.mode not in BATCHABLE_MODES or job.inject:
            leftover.append(index)
            continue
        key = batch_key(job)
        batch = batches.get(key)
        if batch is None:
            batches[key] = Batch(indices=[index], jobs=[job])
        else:
            batch.indices.append(index)
            batch.jobs.append(job)
    return list(batches.values()), leftover


# ---------------------------------------------------------------------------
# Compilation (shared with the engine's dedup)
# ---------------------------------------------------------------------------


def compile_with_memo(
    job: SweepJob,
    *,
    manager: PassManager,
    cache: CompileCache | None,
    memo: dict | None,
) -> tuple[CompiledProgram, bool, bool]:
    """Compile ``job`` through the optional in-run memo table and the
    optional persistent cache.  Returns ``(compiled, cache_hit,
    deduped)`` — ``deduped`` means the memo already held this
    ``(source, options signature)`` and no compile work ran at all."""
    key = (job.source, options_signature(job.options))
    if memo is not None:
        hit = memo.get(key)
        if hit is not None:
            return hit, False, True
    if cache is not None:
        compiled, cache_hit = cache.get_or_compile(
            job.source,
            job.options,
            lambda: compile_source(job.source, job.options, manager=manager),
            pipeline=manager.pipeline,
        )
    else:
        compiled = compile_source(job.source, job.options, manager=manager)
        cache_hit = False
    if memo is not None:
        memo[key] = compiled
    return compiled, cache_hit, False


# ---------------------------------------------------------------------------
# Vectorized evaluation
# ---------------------------------------------------------------------------


def _simulate_lanes(batch: Batch, compiled: CompiledProgram) -> list[dict]:
    """One lane-vector simulation; per-lane simulate-mode payloads."""
    import numpy as np

    from ..machine.batchexec import VectorMachine
    from ..machine.simulator import simulate

    job = batch.jobs[0]
    machine = VectorMachine([j.options.machine for j in batch.jobs])
    rng = np.random.default_rng(job.seed)
    inputs = {}
    for symbol in compiled.proc.symbols.arrays():
        shape = tuple(symbol.extent(d) for d in range(symbol.rank))
        inputs[symbol.name] = rng.uniform(0.5, 1.5, shape)
    sim = simulate(compiled, inputs, machine=machine, tier="auto")
    base = sim.canonical_stats()  # lane-vector "clocks", shared rest
    shared = dict(
        slab_coverage=round(sim.slab_coverage, 6),
        messages=sim.stats.messages,
        fetches=sim.stats.fetches,
        unexpected_fetches=sim.stats.unexpected_fetches,
        grid_size=compiled.grid.size,
    )
    payloads = []
    for lane in range(len(batch)):
        stats = {
            "procs": base["procs"],
            "clocks": sim.clocks.lane_snapshot(lane),
            "stats": copy.deepcopy(base["stats"]),
            "tiers": dict(base["tiers"]),
        }
        payloads.append(
            dict(
                shared,
                elapsed=sim.clocks.lane_elapsed(lane),
                canonical_stats=stats,
            )
        )
    return payloads


def _lane_float(value, lane: int) -> float:
    """One lane of a vectorized cost — which stays a plain scalar when
    no machine-dependent term ever touched it (e.g. ``comm_time`` of a
    communication-free program), exactly like the scalar estimator."""
    import numpy as np

    arr = np.asarray(value, dtype=np.float64)
    return float(arr) if arr.ndim == 0 else float(arr[lane])


def _estimate_lanes(batch: Batch, compiled: CompiledProgram) -> list[dict]:
    """One vectorized estimator pass; per-lane estimate payloads."""
    from ..machine.batchexec import VectorMachine
    from ..perf.estimator import PerfEstimator

    machine = VectorMachine([j.options.machine for j in batch.jobs])
    estimate = PerfEstimator(compiled, machine).estimate()
    return [
        dict(
            total_time=_lane_float(estimate.total_time, lane),
            compute_time=_lane_float(estimate.compute_time, lane),
            comm_time=_lane_float(estimate.comm_time, lane),
            grid_size=compiled.grid.size,
        )
        for lane in range(len(batch))
    ]


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def run_batched(
    batches: list[Batch],
    *,
    manager: PassManager,
    cache: CompileCache | None,
    memo: dict | None,
    tracer: Tracer,
    metrics: Metrics | None,
    on_result: Callable[[SweepResult], None] | None = None,
) -> dict[int, SweepResult]:
    """Evaluate every batch, returning results keyed by original job
    index.  A batch whose vectorized evaluation raises falls back to
    per-lane in-process execution; nothing is ever dropped."""
    from .engine import execute_job

    def _inc(name: str, amount: float = 1) -> None:
        if metrics is not None:
            metrics.inc(name, amount)

    results: dict[int, SweepResult] = {}

    def _emit(index: int, result: SweepResult) -> None:
        results[index] = result
        _inc("sweep.jobs_ok" if result.ok else "sweep.jobs_failed")
        if result.cache_hit:
            _inc("sweep.cache_hits")
        if result.compile_dedup:
            _inc("sweep.compile_dedup")
        if on_result is not None:
            on_result(result)

    for batch in batches:
        with tracer.span(
            "sweep.batch",
            cat="sweep",
            label=batch.jobs[0].label,
            lanes=len(batch),
        ):
            started = time.perf_counter()
            try:
                job0 = batch.jobs[0]
                compiled, cache_hit, deduped = compile_with_memo(
                    job0, manager=manager, cache=cache, memo=memo
                )
                if job0.mode == "simulate":
                    payloads = _simulate_lanes(batch, compiled)
                else:
                    payloads = _estimate_lanes(batch, compiled)
            except Exception:
                # never lose a grid point: run each lane the ordinary
                # scalar way, in-process (mirrors the pool's serial
                # fallback ladder)
                _inc("sweep.batched_fallbacks")
                tracer.instant(
                    "sweep.batch_fallback",
                    cat="sweep",
                    label=batch.jobs[0].label,
                    error=traceback.format_exc(limit=1),
                )
                for index, job in zip(batch.indices, batch.jobs):
                    result = execute_job(
                        job, manager=manager, cache=cache, memo=memo
                    )
                    result.worker = "batched-fallback"
                    _emit(index, result)
                continue
            # the batch's wall clock, amortized over its lanes
            per_lane = (time.perf_counter() - started) / len(batch)
            _inc("sweep.batched_groups")
            _inc("sweep.batched_lanes", len(batch))
            for lane, (index, job) in enumerate(
                zip(batch.indices, batch.jobs)
            ):
                result = SweepResult(
                    label=job.label,
                    program=job.program,
                    mode=job.mode,
                    procs=job.procs,
                    options=job.options,
                    worker="batched",
                    cache_hit=cache_hit and lane == 0,
                    compile_dedup=deduped or lane > 0,
                    duration_s=per_lane,
                )
                for name, value in payloads[lane].items():
                    setattr(result, name, value)
                _emit(index, result)
    return results
