"""The batched sweep fast path: one evaluation per *batch* of points.

A sweep grid typically varies three kinds of axis:

* **machine parameters** (alpha/beta/flop rate ablations) — these
  never influence execution, only the ``dt`` values charged to the
  virtual clocks, so all such points share one instruction stream;
* **processor count** — this changes the compiled program (and hence
  the instruction stream), but the per-procs runs of one program are
  the *same experiment* at different widths: they become *procs
  sub-groups* of one batch, sharing planning, compile dedup, and
  fused procs-lane extraction;
* **other compiler options / measurement mode** — these change the
  experiment itself; compile-mode points never batch at all.

:func:`plan_batches` partitions a job list accordingly: jobs that
simulate (or estimate) the same ``(program, seed,
options-minus-machine-minus-procs)`` point form one *batch*.  Within a
batch, lanes split into procs sub-groups — runs sharing one compiled
program — whose lanes differ only in ``options.machine``.
:func:`run_batched` compiles each sub-group once (procs values that
resolve to the same processor grid share even that compile), evaluates
all its machine lanes in a single lane-vector simulation, adopts every
sub-group's clocks into one batch-wide
:class:`~repro.machine.batchexec.ProcsVectorClocks` laid out over the
widest rank count, and stitches per-lane
:class:`~repro.sweep.spec.SweepResult` records back in grid order —
byte-identical to what a dedicated per-point run would have produced.
Estimate-mode batches whose sub-groups share an estimate signature
collapse further: one :class:`~repro.perf.estimator.PerfEstimator`
pass over a :class:`~repro.machine.batchexec.ProcsVectorMachine`
prices the whole procs × machine grid in a single call.

Jobs that cannot batch (compile-mode points, failure-injection test
jobs) are returned to the caller untouched; :func:`repro.sweep.engine.
run_sweep` sends them down the ordinary pool path.  The degrade ladder
never loses a grid point: a sub-group whose compile or vectorized
evaluation fails runs its lanes per-lane in-process, and a fused
extraction that fails degrades to per-sub-group extraction (which is
byte-identical — adoption copies clock columns verbatim).
"""

from __future__ import annotations

import copy
import dataclasses
import time
import traceback
from dataclasses import dataclass
from typing import Callable

from ..core.diskcache import CompileCache, options_signature
from ..core.driver import CompiledProgram, compile_source
from ..core.passes import PassManager
from ..model import SP2
from ..obs import Metrics, Tracer
from .spec import SweepJob, SweepResult

#: job modes the batched evaluator understands
BATCHABLE_MODES = ("simulate", "estimate")


def _active_failure(rung: str) -> str:
    """``"<rung>: <exception summary> at <file:line>"`` for the
    exception currently being handled — the ``fallback_reason`` carried
    on every :class:`SweepResult` a degrade rung touches."""
    import sys

    etype, exc, tb = sys.exc_info()
    summary = traceback.format_exception_only(etype, exc)[-1].strip()
    frames = traceback.extract_tb(tb)
    where = ""
    if frames:
        last = frames[-1]
        where = f" at {last.filename.rsplit('/', 1)[-1]}:{last.lineno}"
    return f"{rung}: {summary}{where}"


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


@dataclass
class Batch:
    """One vectorized evaluation unit: jobs of one experiment whose
    lanes differ only in ``options.machine`` and the processor count,
    with their positions in the original job list."""

    indices: list[int]
    jobs: list[SweepJob]

    def __len__(self) -> int:
        return len(self.jobs)

    def subgroups(self) -> list[list[int]]:
        """Lane positions partitioned into procs sub-groups: lanes
        sharing one compiled program (same source, same options up to
        the machine), in first-seen lane order.  Each sub-group is one
        compile + one lane-vector simulation; a single-procs batch has
        exactly one."""
        groups: dict[tuple, list[int]] = {}
        for lane, job in enumerate(self.jobs):
            neutral = dataclasses.replace(job.options, machine=SP2)
            key = (job.source, options_signature(neutral))
            groups.setdefault(key, []).append(lane)
        return list(groups.values())


def batch_key(job: SweepJob) -> tuple:
    """The grouping key: everything that changes the *experiment*.
    Machine parameters are normalized away (they become lanes) and so
    is the processor count (per-procs runs become sub-groups of one
    batch); the options signature is the same canonical closure the
    compile cache keys on.  The program *name* stands in for the source
    because callable program specs re-emit source text per procs value
    — the per-procs sources regroup into sub-groups inside the batch."""
    neutral = dataclasses.replace(job.options, machine=SP2, num_procs=None)
    return (job.program, job.seed, job.mode, options_signature(neutral))


def plan_batches(
    jobs: list[SweepJob],
) -> tuple[list[Batch], list[int]]:
    """Partition ``jobs`` into vectorizable batches and the indices of
    everything else (pool work).  Every job lands in exactly one place;
    batches preserve first-seen grid order."""
    batches: dict[tuple, Batch] = {}
    leftover: list[int] = []
    for index, job in enumerate(jobs):
        if job.mode not in BATCHABLE_MODES or job.inject:
            leftover.append(index)
            continue
        key = batch_key(job)
        batch = batches.get(key)
        if batch is None:
            batches[key] = Batch(indices=[index], jobs=[job])
        else:
            batch.indices.append(index)
            batch.jobs.append(job)
    return list(batches.values()), leftover


def _sub_batch(batch: Batch, lanes: list[int]) -> Batch:
    """The view of one procs sub-group as a batch of its own."""
    return Batch(
        indices=[batch.indices[i] for i in lanes],
        jobs=[batch.jobs[i] for i in lanes],
    )


# ---------------------------------------------------------------------------
# Compilation (shared with the engine's dedup)
# ---------------------------------------------------------------------------


def compile_with_memo(
    job: SweepJob,
    *,
    manager: PassManager,
    cache: CompileCache | None,
    memo: dict | None,
    grid_memo: dict | None = None,
) -> tuple[CompiledProgram, bool, bool]:
    """Compile ``job`` through the optional in-run memo table and the
    optional persistent cache.  Returns ``(compiled, cache_hit,
    deduped)`` — ``deduped`` means no compile work ran at all.

    ``memo`` keys on the exact ``(source, options signature)``.
    ``grid_memo`` (the batched path) adds a second, *grid-normalized*
    level: ``num_procs`` influences compilation only through the
    resolved processor grid, so a prior compile of the same source
    under the same options-minus-``num_procs`` whose grid matches what
    this job's ``num_procs`` would resolve to is the identical program
    — a P-independent program (PROCESSORS directive pinned) compiles
    once for a whole procs vector."""
    key = (job.source, options_signature(job.options))
    if memo is not None:
        hit = memo.get(key)
        if hit is not None:
            return hit, False, True
    family: dict | None = None
    if grid_memo is not None:
        neutral = dataclasses.replace(job.options, num_procs=None)
        family = grid_memo.setdefault(
            (job.source, options_signature(neutral)), {}
        )
        if family:
            from ..core.context import resolve_grid

            # any prior compile of this family parsed the same source,
            # so its PROCESSORS directive predicts this job's grid
            prior = next(iter(family.values()))
            shape = resolve_grid(
                prior.proc, num_procs=job.options.num_procs
            ).shape
            hit = family.get(shape)
            if hit is not None:
                if memo is not None:
                    memo[key] = hit
                return hit, False, True
    if cache is not None:
        compiled, cache_hit = cache.get_or_compile(
            job.source,
            job.options,
            lambda: compile_source(job.source, job.options, manager=manager),
            pipeline=manager.pipeline,
        )
    else:
        compiled = compile_source(job.source, job.options, manager=manager)
        cache_hit = False
    if memo is not None:
        memo[key] = compiled
    if family is not None:
        family.setdefault(compiled.grid.shape, compiled)
    return compiled, cache_hit, False


# ---------------------------------------------------------------------------
# Vectorized evaluation
# ---------------------------------------------------------------------------


def _simulate_lanes(batch: Batch, compiled: CompiledProgram):
    """One lane-vector simulation of a procs sub-group: every machine
    lane charged in a single tier="auto" run.  Returns the sim; payload
    extraction happens at the batch level (fused across sub-groups)."""
    import numpy as np

    from ..machine.batchexec import VectorMachine
    from ..machine.simulator import simulate

    job = batch.jobs[0]
    machine = VectorMachine([j.options.machine for j in batch.jobs])
    rng = np.random.default_rng(job.seed)
    inputs = {}
    for symbol in compiled.proc.symbols.arrays():
        shape = tuple(symbol.extent(d) for d in range(symbol.rank))
        inputs[symbol.name] = rng.uniform(0.5, 1.5, shape)
    return simulate(compiled, inputs, machine=machine, tier="auto")


def _simulate_payloads(sim, compiled: CompiledProgram, clocks, lanes) -> list[dict]:
    """Per-lane simulate-mode payloads: the clock-derived fields come
    from lane ``m`` of ``clocks`` (the sub-run's own lane clocks, or
    the batch's fused procs-lane clocks — identical by adoption), the
    rest from the sub-simulation they all share."""
    base = sim.canonical_stats()  # lane-vector "clocks", shared rest
    shared = dict(
        slab_coverage=round(sim.slab_coverage, 6),
        messages=sim.stats.messages,
        fetches=sim.stats.fetches,
        unexpected_fetches=sim.stats.unexpected_fetches,
        grid_size=compiled.grid.size,
    )
    payloads = []
    for lane in lanes:
        stats = {
            "procs": base["procs"],
            "clocks": clocks.lane_snapshot(lane),
            "stats": copy.deepcopy(base["stats"]),
            "tiers": dict(base["tiers"]),
        }
        payloads.append(
            dict(
                shared,
                elapsed=clocks.lane_elapsed(lane),
                canonical_stats=stats,
            )
        )
    return payloads


def _fuse_simulations(groups) -> dict[int, dict]:
    """Fuse-at-extract: adopt every sub-simulation's lane clocks into
    one batch-wide :class:`ProcsVectorClocks` laid out over the widest
    rank count, then extract each batch lane's payload from the fused
    structure.  ``groups`` holds ``(lanes, sub, compiled, sim)`` per
    procs sub-group; returns payloads keyed by batch lane position."""
    from ..machine.batchexec import ProcsVectorClocks, ProcsVectorMachine

    models, procs, shapes = [], [], []
    for lanes, sub, compiled, _sim in groups:
        models.extend(j.options.machine for j in sub.jobs)
        procs.extend([compiled.grid.size] * len(lanes))
        shapes.extend([compiled.grid.shape] * len(lanes))
    fused = ProcsVectorClocks(
        ProcsVectorMachine(models, procs, grid_shapes=shapes)
    )
    payloads: dict[int, dict] = {}
    offset = 0
    for lanes, _sub, compiled, sim in groups:
        fused.adopt(offset, sim.clocks)
        extracted = _simulate_payloads(
            sim, compiled, fused, range(offset, offset + len(lanes))
        )
        payloads.update(zip(lanes, extracted))
        offset += len(lanes)
    return payloads


def _lane_float(value, lane: int) -> float:
    """One lane of a vectorized cost — which stays a plain scalar when
    no machine-dependent term ever touched it (e.g. ``comm_time`` of a
    communication-free program), exactly like the scalar estimator."""
    import numpy as np

    arr = np.asarray(value, dtype=np.float64)
    return float(arr) if arr.ndim == 0 else float(arr[lane])


def _estimate_lanes(batch: Batch, compiled: CompiledProgram) -> list[dict]:
    """One vectorized estimator pass; per-lane estimate payloads."""
    from ..machine.batchexec import VectorMachine
    from ..perf.estimator import PerfEstimator

    machine = VectorMachine([j.options.machine for j in batch.jobs])
    estimate = PerfEstimator(compiled, machine).estimate()
    return [
        dict(
            total_time=_lane_float(estimate.total_time, lane),
            compute_time=_lane_float(estimate.compute_time, lane),
            comm_time=_lane_float(estimate.comm_time, lane),
            grid_size=compiled.grid.size,
        )
        for lane in range(len(batch))
    ]


def _estimate_procs_lanes(groups) -> dict[int, dict]:
    """One procs-lane estimator pass pricing every (procs, machine)
    cell of a batch in a single call.  The caller guarantees the
    sub-groups share an estimate signature, so any one compiled
    program describes the common cost structure; the per-lane grid
    shapes ride on the :class:`ProcsVectorMachine`."""
    from ..machine.batchexec import ProcsVectorMachine
    from ..perf.estimator import PerfEstimator

    models, procs, shapes, order, sizes = [], [], [], [], []
    for lanes, sub, compiled, _sim in groups:
        models.extend(j.options.machine for j in sub.jobs)
        procs.extend([compiled.grid.size] * len(lanes))
        shapes.extend([compiled.grid.shape] * len(lanes))
        sizes.extend([compiled.grid.size] * len(lanes))
        order.extend(lanes)
    machine = ProcsVectorMachine(models, procs, grid_shapes=shapes)
    estimate = PerfEstimator(groups[0][2], machine).estimate()
    payloads: dict[int, dict] = {}
    for fused_lane, batch_lane in enumerate(order):
        payloads[batch_lane] = dict(
            total_time=_lane_float(estimate.total_time, fused_lane),
            compute_time=_lane_float(estimate.compute_time, fused_lane),
            comm_time=_lane_float(estimate.comm_time, fused_lane),
            grid_size=sizes[fused_lane],
        )
    return payloads


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def run_batched(
    batches: list[Batch],
    *,
    manager: PassManager,
    cache: CompileCache | None,
    memo: dict | None,
    tracer: Tracer,
    metrics: Metrics | None,
    on_result: Callable[[SweepResult], None] | None = None,
) -> dict[int, SweepResult]:
    """Evaluate every batch, returning results keyed by original job
    index.  A procs sub-group whose compile or vectorized evaluation
    raises falls back to per-lane in-process execution; nothing is
    ever dropped."""
    from .engine import execute_job

    def _inc(name: str, amount: float = 1) -> None:
        if metrics is not None:
            metrics.inc(name, amount)

    results: dict[int, SweepResult] = {}
    #: grid-normalized compile memo (see :func:`compile_with_memo`),
    #: scoped to this run like the exact-signature memo
    grid_memo: dict = {}

    def _emit(index: int, result: SweepResult) -> None:
        results[index] = result
        _inc("sweep.jobs_ok" if result.ok else "sweep.jobs_failed")
        if result.cache_hit:
            _inc("sweep.cache_hits")
        if result.compile_dedup:
            _inc("sweep.compile_dedup")
        if on_result is not None:
            on_result(result)

    def _fall_back(sub: Batch, rung: str) -> None:
        """A rung of the degrade ladder: run each of the sub-batch's
        lanes the ordinary scalar way, in-process (mirrors the pool's
        serial fallback — the fast path may lose speed, never a
        point).  Every result carries why its batch evaluation failed
        (``fallback_reason``), and the per-rung lane counter makes
        silent degradation visible in metrics."""
        reason = _active_failure(rung)
        _inc("sweep.batched_fallbacks")
        _inc(f"sweep.lane_fallback[reason={rung}]", len(sub.jobs))
        tracer.instant(
            "sweep.batch_fallback",
            cat="sweep",
            label=sub.jobs[0].label,
            rung=rung,
            error=traceback.format_exc(limit=1),
        )
        for index, job in zip(sub.indices, sub.jobs):
            result = execute_job(job, manager=manager, cache=cache, memo=memo)
            result.worker = "batched-fallback"
            result.fallback_reason = reason
            _emit(index, result)

    for batch in batches:
        groups = batch.subgroups()
        with tracer.span(
            "sweep.batch",
            cat="sweep",
            label=batch.jobs[0].label,
            lanes=len(batch),
            procs_groups=len(groups),
        ):
            started = time.perf_counter()
            #: batch lane -> measurement payload / (cache_hit, dedup)
            payloads: dict[int, dict] = {}
            flags: dict[int, tuple[bool, bool]] = {}
            #: batch lane -> why a degrade rung touched it (the lanes
            #: stayed batched but not on the rung first attempted)
            reasons: dict[int, str] = {}
            try:
                evaluated = []  # (lanes, sub, compiled, sim|None)
                for lanes in groups:
                    sub = _sub_batch(batch, lanes)
                    try:
                        compiled, cache_hit, deduped = compile_with_memo(
                            sub.jobs[0],
                            manager=manager,
                            cache=cache,
                            memo=memo,
                            grid_memo=grid_memo,
                        )
                        sim = (
                            _simulate_lanes(sub, compiled)
                            if sub.jobs[0].mode == "simulate"
                            else None
                        )
                    except Exception:
                        _fall_back(sub, "lane-eval")
                        continue
                    evaluated.append((lanes, sub, compiled, sim))
                    for pos, lane in enumerate(lanes):
                        flags[lane] = (
                            cache_hit and pos == 0,
                            deduped or pos > 0,
                        )
                if evaluated and batch.jobs[0].mode == "simulate":
                    try:
                        payloads = _fuse_simulations(evaluated)
                    except Exception:
                        # byte-identical either way: adoption copies
                        # columns, so per-sub-group extraction is a
                        # safe rung below the fused one
                        reason = _active_failure("fuse")
                        payloads = {}
                        for lanes, _sub, compiled, sim in evaluated:
                            extracted = _simulate_payloads(
                                sim, compiled, sim.clocks, range(len(lanes))
                            )
                            payloads.update(zip(lanes, extracted))
                            reasons.update((lane, reason) for lane in lanes)
                        _inc(
                            "sweep.lane_fallback[reason=fuse]",
                            len(reasons),
                        )
                elif evaluated:
                    payloads = _try_estimates(
                        evaluated, flags, _fall_back, reasons, _inc
                    )
            except Exception:
                # last-resort rung: planning/extraction bugs degrade
                # whatever has not been emitted yet to per-lane runs
                pending = [
                    i
                    for i in range(len(batch))
                    if batch.indices[i] not in results
                ]
                if pending:
                    _fall_back(_sub_batch(batch, pending), "batch")
                continue
            # the batch's wall clock, amortized over its lanes
            per_lane = (time.perf_counter() - started) / len(batch)
            if payloads:
                _inc("sweep.batched_groups")
                _inc("sweep.batched_lanes", len(payloads))
                if len(groups) > 1:
                    _inc("sweep.procs_fused", len(payloads))
            for lane, (index, job) in enumerate(
                zip(batch.indices, batch.jobs)
            ):
                if lane not in payloads:
                    continue  # emitted by a fallback rung
                cache_hit, deduped = flags.get(lane, (False, False))
                result = SweepResult(
                    label=job.label,
                    program=job.program,
                    mode=job.mode,
                    procs=job.procs,
                    options=job.options,
                    worker="batched",
                    cache_hit=cache_hit,
                    compile_dedup=deduped,
                    duration_s=per_lane,
                    procs_lanes=len(groups),
                    fallback_reason=reasons.get(lane),
                )
                for name, value in payloads[lane].items():
                    setattr(result, name, value)
                _emit(index, result)
    return results


def _try_estimates(evaluated, flags, fall_back, reasons, inc) -> dict[int, dict]:
    """The estimate-mode ladder: one fused procs-lane estimator call
    when every sub-group shares an estimate signature, per-sub-group
    vectorized estimates otherwise (or when fusing fails), per-lane
    fallback for a sub-group whose estimator itself raises.  Degrades
    record why: ``reasons`` (batch lane -> reason) feeds the
    ``fallback_reason`` of results that stayed batched on a lower rung,
    and each rung bumps its ``sweep.lane_fallback[reason=...]`` lanes."""
    if len(evaluated) > 1:
        from ..perf.estimator import estimate_signature

        try:
            signatures = {
                estimate_signature(compiled)
                for _lanes, _sub, compiled, _sim in evaluated
            }
            if len(signatures) == 1:
                return _estimate_procs_lanes(evaluated)
        except Exception:
            # fall through to per-sub-group estimates
            reason = _active_failure("estimate-fuse")
            affected = [
                lane for lanes, _sub, _c, _s in evaluated for lane in lanes
            ]
            reasons.update((lane, reason) for lane in affected)
            inc("sweep.lane_fallback[reason=estimate-fuse]", len(affected))
    payloads: dict[int, dict] = {}
    for lanes, sub, compiled, _sim in evaluated:
        try:
            extracted = _estimate_lanes(sub, compiled)
        except Exception:
            for lane in lanes:
                flags.pop(lane, None)
                reasons.pop(lane, None)
            fall_back(sub, "estimate")
            continue
        payloads.update(zip(lanes, extracted))
    return payloads
