"""The shared result-record schema.

Every measurement the package reports — a single simulated execution
(:class:`repro.api.RunResult`), one sweep grid point
(:class:`repro.sweep.SweepResult`), or a service job
(:class:`repro.service.JobStatus`) — serializes through one flat JSON
shape so artifacts, CLI ``--json`` output, and the catalog all speak
the same dialect:

* ``schema`` — the versioned schema tag (:data:`RESULT_SCHEMA`), so a
  consumer can reject records written by an incompatible release;
* ``kind`` — what the record describes (``"run"``, ``"sweep-point"``,
  ``"job"``);
* shared measurement names — ``elapsed_s`` (virtual seconds on the
  simulated machine), ``canonical_stats`` (the deterministic clocks +
  traffic payload the determinism gates byte-compare), ``tiers``
  (per-nest tier decisions, surfaced out of the canonical stats), and
  ``fallback_reason`` (why a fast path degraded, present only when one
  fired).

:func:`comparable` strips the execution bookkeeping (worker tags,
wall-clock durations, cache/dedup provenance) that legitimately
differs between two runs of the same experiment, leaving exactly the
fields byte-parity gates may compare.
"""

from __future__ import annotations

from typing import Any, Mapping

#: versioned schema tag carried by every record; bump the trailing
#: integer whenever a field is renamed, removed, or changes meaning
RESULT_SCHEMA = "repro.result/2"

#: record kinds emitted by the package
RECORD_KINDS = ("run", "sweep-point", "job")

#: execution bookkeeping that two byte-identical experiments may
#: legitimately disagree on (worker placement, wall clock, cache luck)
VOLATILE_FIELDS = (
    "worker",
    "duration_s",
    "cache_hit",
    "compile_dedup",
    "attempts",
    "procs_lanes",
    "fallback_reason",
    "reused",
)


def result_record(kind: str, **fields: Any) -> dict[str, Any]:
    """A schema-tagged record: ``{"schema": ..., "kind": kind}`` plus
    ``fields`` in the order given.  Fields with value ``None`` are
    kept — callers decide what to omit before the call."""
    if kind not in RECORD_KINDS:
        raise ValueError(
            f"record kind must be one of {RECORD_KINDS}, got {kind!r}"
        )
    record: dict[str, Any] = {"schema": RESULT_SCHEMA, "kind": kind}
    record.update(fields)
    return record


def tiers_of(canonical_stats: Mapping[str, Any] | None) -> Any:
    """The per-nest tier decisions embedded in a canonical-stats
    payload, or None when the run carried none (estimate/compile
    modes, legacy payloads)."""
    if not canonical_stats:
        return None
    return canonical_stats.get("tiers")


def comparable(record: Mapping[str, Any]) -> dict[str, Any]:
    """``record`` minus :data:`VOLATILE_FIELDS` — the deterministic
    core that byte-parity gates (cold vs warm cache, pool vs batched,
    direct vs service) are allowed to compare."""
    return {
        name: value
        for name, value in record.items()
        if name not in VOLATILE_FIELDS
    }
