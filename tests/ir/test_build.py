"""AST → IR lowering tests."""

import pytest

from repro.errors import DirectiveError, SemanticError
from repro.ir import (
    ArrayElemRef,
    AssignStmt,
    Const,
    IfStmt,
    IntrinsicCall,
    LoopStmt,
    ScalarType,
    parse_and_build,
)


def build(body, decls="  REAL A(10), B(10)\n"):
    return parse_and_build(f"PROGRAM T\n{decls}{body}\nEND PROGRAM\n")


class TestDeclarations:
    def test_parameters_folded(self):
        proc = build("  A(1) = 0.0", decls="  PARAMETER (n = 10)\n  REAL A(n)\n")
        a = proc.symbols.require("A")
        assert a.dims == ((1, 10),)

    def test_parameter_expression(self):
        proc = build("  A(1) = 0.0", decls="  PARAMETER (n = 4, m = n*2+1)\n  REAL A(m)\n")
        assert proc.symbols.require("A").extent(0) == 9

    def test_parameter_used_in_expr_becomes_const(self):
        proc = build("  x = n + 1", decls="  PARAMETER (n = 5)\n  REAL x\n")
        stmt = next(proc.assignments())
        # n folded: rhs has no refs to N
        assert all(r.symbol.name != "N" for r in stmt.rhs.refs())

    def test_empty_array_bounds_rejected(self):
        with pytest.raises(SemanticError):
            build("  A(1) = 0.0", decls="  REAL A(5:2)\n")

    def test_implicit_scalar_declaration(self):
        proc = build("  zz = 1.0")
        assert proc.symbols.lookup("ZZ").type is ScalarType.REAL


class TestExpressions:
    def test_intrinsic_call_lowered(self):
        proc = build("  x = MAX(A(1), B(1))")
        stmt = next(proc.assignments())
        assert isinstance(stmt.rhs, IntrinsicCall)
        assert stmt.rhs.name == "MAX"

    def test_array_vs_intrinsic_disambiguation(self):
        # MAX declared as an array shadows the intrinsic.
        proc = build("  x = MAX(1)", decls="  REAL MAX(5)\n")
        stmt = next(proc.assignments())
        assert isinstance(stmt.rhs, ArrayElemRef)

    def test_unknown_call_rejected(self):
        with pytest.raises(SemanticError):
            build("  x = NOSUCH(1)")

    def test_rank_mismatch_rejected(self):
        with pytest.raises(SemanticError):
            build("  x = A(1, 2)")

    def test_scalar_with_subscript_rejected(self):
        with pytest.raises(SemanticError):
            build("  y = 1.0\n  x = y(1)")

    def test_array_without_subscript_rejected(self):
        with pytest.raises(SemanticError):
            build("  x = A")


class TestStatements:
    def test_loop_var_marked(self):
        proc = build("  DO i = 1, 10\n    A(i) = 0.0\n  END DO")
        assert proc.symbols.require("I").is_loop_var

    def test_non_integer_loop_var_rejected(self):
        with pytest.raises(SemanticError):
            build("  DO x = 1, 10\n  END DO", decls="  REAL x\n")

    def test_loop_levels(self):
        proc = build(
            "  DO i = 1, 2\n    DO j = 1, 2\n      A(i) = B(j)\n    END DO\n  END DO"
        )
        loops = list(proc.loops())
        assert [l.level for l in loops] == [1, 2]

    def test_nesting_level_of_stmt(self):
        proc = build(
            "  DO i = 1, 2\n    DO j = 1, 2\n      A(i) = B(j)\n    END DO\n  END DO"
        )
        stmt = next(proc.assignments())
        assert stmt.nesting_level == 2

    def test_independent_clauses_on_loop(self):
        src = (
            "PROGRAM t\nREAL C(4)\n"
            "!HPF$ INDEPENDENT, NEW(C), REDUCTION(S)\n"
            "DO k = 1, 4\n  C(k) = 0.0\nEND DO\nEND\n"
        )
        proc = parse_and_build(src)
        loop = next(proc.loops())
        assert loop.independent
        assert loop.new_vars == ("C",)
        assert loop.reduction_vars == ("S",)

    def test_goto_target_validated(self):
        with pytest.raises(SemanticError):
            build("  GO TO 99")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(SemanticError):
            build("10 CONTINUE\n10 CONTINUE")


class TestDirectiveResolution:
    def test_processors_spec(self):
        src = "PROGRAM t\nREAL A(8)\n!HPF$ PROCESSORS P(2, 4)\n!HPF$ DISTRIBUTE (BLOCK, *) :: A\nEND\n"
        with pytest.raises(DirectiveError):
            # rank mismatch: A is 1-D but 2 formats given
            parse_and_build(src)

    def test_distribute_resolved(self):
        src = "PROGRAM t\nREAL A(8)\n!HPF$ DISTRIBUTE (CYCLIC(2)) :: A\nEND\n"
        proc = parse_and_build(src)
        spec = proc.distribute_of(proc.symbols.require("A"))
        assert spec.formats == (("CYCLIC", 2),)

    def test_align_axis_map(self):
        src = (
            "PROGRAM t\nREAL A(8, 8), B(8)\n"
            "!HPF$ ALIGN B(i) WITH A(i + 1, *)\n"
            "!HPF$ DISTRIBUTE (BLOCK, BLOCK) :: A\nEND\n"
        )
        proc = parse_and_build(src)
        spec = proc.align_of(proc.symbols.require("B"))
        assert spec.axis_map == ((0, 1, 1),)
        assert spec.replicated_target_dims == (1,)

    def test_align_stride(self):
        src = (
            "PROGRAM t\nREAL A(16), B(8)\n"
            "!HPF$ ALIGN B(i) WITH A(2 * i)\n"
            "!HPF$ DISTRIBUTE (BLOCK) :: A\nEND\n"
        )
        proc = parse_and_build(src)
        spec = proc.align_of(proc.symbols.require("B"))
        assert spec.axis_map == ((0, 2, 0),)

    def test_align_rank_mismatch_rejected(self):
        src = (
            "PROGRAM t\nREAL A(8, 8), B(8)\n"
            "!HPF$ ALIGN B(i, j) WITH A(i, j)\nEND\n"
        )
        with pytest.raises(DirectiveError):
            parse_and_build(src)

    def test_distribute_non_array_rejected(self):
        src = "PROGRAM t\nREAL x\n!HPF$ DISTRIBUTE (BLOCK) :: x\nEND\n"
        with pytest.raises(DirectiveError):
            parse_and_build(src)


class TestProcedureNavigation:
    def test_common_loops(self):
        proc = build(
            "  DO i = 1, 2\n    A(i) = 0.0\n    DO j = 1, 2\n      B(j) = 1.0\n"
            "    END DO\n  END DO"
        )
        stmts = list(proc.assignments())
        common = proc.common_loops(stmts[0], stmts[1])
        assert [l.var.name for l in common] == ["I"]

    def test_stmt_of_ref(self):
        proc = build("  A(1) = B(2)")
        stmt = next(proc.assignments())
        ref = next(iter(stmt.rhs.refs()))
        assert proc.stmt_of_ref(ref) is stmt

    def test_dump_contains_statements(self):
        proc = build("  A(1) = B(2)")
        assert "A(1)" in proc.dump()
