"""IR expression and affine-form tests."""

from repro.ir import (
    ArrayElemRef,
    BinOp,
    Const,
    ScalarRef,
    Symbol,
    SymbolKind,
    ScalarType,
    UnOp,
    affine_form,
    clone_expr,
    substitute_scalar,
)


def int_scalar(name):
    return Symbol(name=name, kind=SymbolKind.SCALAR, type=ScalarType.INT)


def real_scalar(name):
    return Symbol(name=name, kind=SymbolKind.SCALAR, type=ScalarType.REAL)


I = int_scalar("I")
J = int_scalar("J")


def ref(sym):
    return ScalarRef(symbol=sym)


class TestAffineForm:
    def test_constant(self):
        form = affine_form(Const(value=7))
        assert form.is_constant and form.const == 7

    def test_single_variable(self):
        form = affine_form(ref(I))
        assert form.coeff(I) == 1 and form.const == 0

    def test_sum_with_constant(self):
        form = affine_form(BinOp(op="+", left=ref(I), right=Const(value=3)))
        assert form.coeff(I) == 1 and form.const == 3

    def test_subtraction(self):
        expr = BinOp(op="-", left=ref(I), right=ref(J))
        form = affine_form(expr)
        assert form.coeff(I) == 1 and form.coeff(J) == -1

    def test_scaling(self):
        expr = BinOp(op="*", left=Const(value=2), right=ref(I))
        form = affine_form(expr)
        assert form.coeff(I) == 2

    def test_nested_affine(self):
        # 2*(i + 1) - j  ==  2i - j + 2
        inner = BinOp(op="+", left=ref(I), right=Const(value=1))
        expr = BinOp(op="-", left=BinOp(op="*", left=Const(value=2), right=inner), right=ref(J))
        form = affine_form(expr)
        assert form.coeff(I) == 2 and form.coeff(J) == -1 and form.const == 2

    def test_unary_minus(self):
        form = affine_form(UnOp(op="-", operand=ref(I)))
        assert form.coeff(I) == -1

    def test_bilinear_rejected(self):
        expr = BinOp(op="*", left=ref(I), right=ref(J))
        assert affine_form(expr) is None

    def test_real_scalar_rejected(self):
        expr = ref(real_scalar("X"))
        assert affine_form(expr) is None

    def test_real_constant_rejected(self):
        assert affine_form(Const(value=1.5)) is None

    def test_array_ref_rejected(self):
        arr = Symbol(name="A", kind=SymbolKind.ARRAY, type=ScalarType.INT, dims=((1, 4),))
        expr = ArrayElemRef(symbol=arr, subscripts=[Const(value=1)])
        assert affine_form(expr) is None

    def test_exact_integer_division(self):
        # (4*i + 8) / 4 == i + 2
        num = BinOp(op="+", left=BinOp(op="*", left=Const(value=4), right=ref(I)), right=Const(value=8))
        expr = BinOp(op="/", left=num, right=Const(value=4))
        form = affine_form(expr)
        assert form.coeff(I) == 1 and form.const == 2

    def test_inexact_division_rejected(self):
        expr = BinOp(op="/", left=ref(I), right=Const(value=2))
        assert affine_form(expr) is None

    def test_zero_coefficients_dropped(self):
        # i - i == 0
        expr = BinOp(op="-", left=ref(I), right=ref(I))
        form = affine_form(expr)
        assert form.is_constant and form.const == 0

    def test_coeff_of_absent_symbol(self):
        form = affine_form(ref(I))
        assert form.coeff(J) == 0


class TestRefIdentity:
    def test_unique_ref_ids(self):
        a, b = ref(I), ref(I)
        assert a.ref_id != b.ref_id

    def test_refs_iteration_includes_subscript_refs(self):
        arr = Symbol(name="A", kind=SymbolKind.ARRAY, type=ScalarType.REAL, dims=((1, 4),))
        inner = ref(I)
        expr = ArrayElemRef(symbol=arr, subscripts=[inner])
        refs = list(expr.refs())
        assert refs[0] is expr
        assert refs[1] is inner


class TestSubstitution:
    def test_substitute_scalar(self):
        target = BinOp(op="+", left=ref(I), right=ref(J))
        replacement = BinOp(op="+", left=ref(J), right=Const(value=1))
        out = substitute_scalar(target, I, replacement)
        form = affine_form(out)
        assert form.coeff(J) == 2 and form.const == 1

    def test_substitute_fresh_ref_ids(self):
        replacement = ref(J)
        out1 = substitute_scalar(ref(I), I, replacement)
        out2 = substitute_scalar(ref(I), I, replacement)
        assert out1.ref_id != out2.ref_id

    def test_substitute_inside_subscripts(self):
        arr = Symbol(name="A", kind=SymbolKind.ARRAY, type=ScalarType.REAL, dims=((1, 4),))
        expr = ArrayElemRef(symbol=arr, subscripts=[ref(I)])
        out = substitute_scalar(expr, I, Const(value=3))
        assert isinstance(out.subscripts[0], Const)

    def test_clone_deep(self):
        expr = BinOp(op="*", left=ref(I), right=ref(J))
        cloned = clone_expr(expr)
        assert cloned is not expr
        assert cloned.left.ref_id != expr.left.ref_id
        assert str(cloned) == str(expr)
