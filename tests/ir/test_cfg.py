"""CFG construction tests."""

from repro.ir import AssignStmt, GotoStmt, IfStmt, LoopStmt, build_cfg, parse_and_build


def build(body, decls="  REAL A(10), B(10)\n"):
    proc = parse_and_build(f"PROGRAM T\n{decls}{body}\nEND PROGRAM\n")
    return proc, build_cfg(proc)


class TestStraightLine:
    def test_entry_to_exit_chain(self):
        proc, cfg = build("  A(1) = 0.0\n  A(2) = 1.0")
        assert cfg.entry.succs[0].stmt is proc.body[0]
        last = cfg.node_of(proc.body[1])
        assert cfg.exit in last.succs

    def test_all_statements_have_nodes(self):
        proc, cfg = build("  A(1) = 0.0\n  A(2) = 1.0\n  A(3) = 2.0")
        for stmt in proc.all_stmts():
            assert cfg.node_of(stmt) is not None


class TestLoops:
    def test_loop_back_edge(self):
        proc, cfg = build("  DO i = 1, 3\n    A(i) = 0.0\n  END DO")
        loop = proc.body[0]
        header = cfg.node_of(loop)
        body_node = cfg.node_of(loop.body[0])
        assert body_node in header.succs
        assert header in body_node.succs  # back edge

    def test_loop_exit_edge(self):
        proc, cfg = build("  DO i = 1, 3\n    A(i) = 0.0\n  END DO\n  A(1) = 9.0")
        header = cfg.node_of(proc.body[0])
        after = cfg.node_of(proc.body[1])
        assert after in header.succs

    def test_empty_loop_self_edge(self):
        proc, cfg = build("  DO i = 1, 3\n  END DO")
        header = cfg.node_of(proc.body[0])
        assert header in header.succs

    def test_nested_loop_structure(self):
        proc, cfg = build(
            "  DO i = 1, 2\n    DO j = 1, 2\n      A(i) = 0.0\n    END DO\n  END DO"
        )
        outer, inner = list(proc.loops())
        inner_node = cfg.node_of(inner)
        body_node = cfg.node_of(inner.body[0])
        assert body_node in inner_node.succs
        # inner exit returns to outer header
        assert cfg.node_of(outer) in inner_node.succs


class TestBranches:
    def test_if_two_successors(self):
        proc, cfg = build(
            "  IF (A(1) > 0.0) THEN\n    A(1) = 1.0\n  ELSE\n    A(2) = 2.0\n  END IF"
        )
        node = cfg.node_of(proc.body[0])
        assert len(node.succs) == 2

    def test_if_join(self):
        proc, cfg = build(
            "  IF (A(1) > 0.0) THEN\n    A(1) = 1.0\n  END IF\n  A(3) = 3.0"
        )
        if_stmt = proc.body[0]
        join = cfg.node_of(proc.body[1])
        then_node = cfg.node_of(if_stmt.then_body[0])
        assert join in then_node.succs
        assert join in cfg.node_of(if_stmt).succs  # empty else goes direct

    def test_goto_edge(self):
        proc, cfg = build("  DO i = 1, 3\n    GO TO 10\n    A(i) = 0.0\n10 CONTINUE\n  END DO")
        loop = proc.body[0]
        goto = loop.body[0]
        target = loop.body[2]
        assert cfg.node_of(target) in cfg.node_of(goto).succs

    def test_stop_goes_to_exit(self):
        proc, cfg = build("  STOP\n  A(1) = 1.0")
        stop_node = cfg.node_of(proc.body[0])
        assert cfg.exit in stop_node.succs

    def test_unreachable_after_goto(self):
        proc, cfg = build("  DO i = 1, 3\n    GO TO 10\n    A(i) = 0.0\n10 CONTINUE\n  END DO")
        loop = proc.body[0]
        dead = cfg.node_of(loop.body[1])
        assert dead.index not in cfg.reachable()


class TestOrdering:
    def test_reverse_postorder_starts_at_entry(self):
        proc, cfg = build("  DO i = 1, 3\n    A(i) = 0.0\n  END DO")
        order = cfg.reverse_postorder()
        assert order[0] is cfg.entry

    def test_rpo_headers_before_bodies(self):
        proc, cfg = build("  DO i = 1, 3\n    A(i) = 0.0\n  END DO")
        order = cfg.reverse_postorder()
        loop = proc.body[0]
        assert order.index(cfg.node_of(loop)) < order.index(cfg.node_of(loop.body[0]))

    def test_dump_mentions_all_nodes(self):
        proc, cfg = build("  A(1) = 1.0")
        text = cfg.dump()
        assert "ENTRY" in text and "EXIT" in text
