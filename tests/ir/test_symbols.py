"""Symbol table tests."""

import pytest

from repro.errors import SemanticError
from repro.ir import ScalarType, Symbol, SymbolKind, SymbolTable, implicit_type


class TestImplicitTyping:
    @pytest.mark.parametrize("name", ["i", "J", "k", "l", "M", "n", "idx", "nmax"])
    def test_integer_names(self, name):
        assert implicit_type(name) is ScalarType.INT

    @pytest.mark.parametrize("name", ["a", "x", "Y", "h2o", "omega", "t"])
    def test_real_names(self, name):
        assert implicit_type(name) is ScalarType.REAL


class TestSymbol:
    def test_array_extent_and_size(self):
        s = Symbol(name="A", kind=SymbolKind.ARRAY, type=ScalarType.REAL,
                   dims=((1, 10), (0, 4)))
        assert s.rank == 2
        assert s.extent(0) == 10
        assert s.extent(1) == 5
        assert s.size() == 50

    def test_scalar_properties(self):
        s = Symbol(name="X", kind=SymbolKind.SCALAR, type=ScalarType.REAL)
        assert s.is_scalar and not s.is_array
        assert s.rank == 0


class TestSymbolTable:
    def test_declare_and_lookup(self):
        table = SymbolTable()
        s = table.declare(Symbol(name="A", kind=SymbolKind.ARRAY,
                                 type=ScalarType.REAL, dims=((1, 4),)))
        assert table.lookup("a") is s
        assert table.lookup("A") is s

    def test_duplicate_rejected(self):
        table = SymbolTable()
        table.declare(Symbol(name="X", kind=SymbolKind.SCALAR, type=ScalarType.REAL))
        with pytest.raises(SemanticError):
            table.declare(Symbol(name="x", kind=SymbolKind.SCALAR, type=ScalarType.REAL))

    def test_resolve_scalar_implicit(self):
        table = SymbolTable()
        s = table.resolve_scalar("count")
        assert s.type is ScalarType.REAL  # 'c' is not in I-N
        i = table.resolve_scalar("i")
        assert i.type is ScalarType.INT

    def test_resolve_scalar_idempotent(self):
        table = SymbolTable()
        assert table.resolve_scalar("q") is table.resolve_scalar("Q")

    def test_require_missing(self):
        table = SymbolTable()
        with pytest.raises(SemanticError):
            table.require("nope")

    def test_arrays_and_scalars_listing(self):
        table = SymbolTable()
        table.declare(Symbol(name="A", kind=SymbolKind.ARRAY,
                             type=ScalarType.REAL, dims=((1, 2),)))
        table.resolve_scalar("x")
        assert [s.name for s in table.arrays()] == ["A"]
        assert [s.name for s in table.scalars()] == ["X"]

    def test_contains_and_len(self):
        table = SymbolTable()
        table.resolve_scalar("v")
        assert "V" in table and "v" in table
        assert len(table) == 1
