"""Message combining (the paper's other future-work item) tests."""

import numpy as np
import pytest

from repro.codegen import run_sequential
from repro.comm import combining_stats
from repro.core import CompilerOptions, compile_source
from repro.ir import parse_and_build
from repro.machine import simulate
from repro.perf import PerfEstimator
from repro.programs import tomcatv_inputs, tomcatv_source


STENCIL = """
PROGRAM S
  PARAMETER (n = 32, m = 4)
  REAL A(n), B(n), C(n)
!HPF$ ALIGN (i) WITH A(i) :: B, C
!HPF$ DISTRIBUTE (BLOCK) :: A
  DO i = 2, n - 1
    A(i) = B(i - 1) + B(i - 1) + C(i - 1)
  END DO
END PROGRAM
"""


class TestDedupe:
    def test_duplicate_refs_merged(self):
        plain = compile_source(STENCIL, CompilerOptions(num_procs=4))
        combined = compile_source(
            STENCIL, CompilerOptions(num_procs=4, combine_messages=True)
        )
        # B(i-1) twice + C(i-1): 3 events -> 1 after dedupe+merge
        assert len(plain.comm.events) == 3
        assert len(combined.comm.events) < len(plain.comm.events)

    def test_dedupe_is_free_in_cost(self):
        plain = compile_source(STENCIL, CompilerOptions(num_procs=4))
        combined = compile_source(
            STENCIL, CompilerOptions(num_procs=4, combine_messages=True)
        )
        t_plain = PerfEstimator(plain).estimate().comm_time
        t_combined = PerfEstimator(combined).estimate().comm_time
        assert t_combined < t_plain


class TestTomcatvCombining:
    def test_halo_exchanges_collapse(self):
        src = tomcatv_source(n=64, niter=2, procs=4)
        plain = compile_source(src, CompilerOptions())
        combined = compile_source(src, CompilerOptions(combine_messages=True))
        # 16 per-reference shifts collapse to the 4 halo transfers
        # (X/Y x j±1).
        assert len(plain.comm.events) == 16
        assert len(combined.comm.events) == 4

    def test_stats(self):
        src = tomcatv_source(n=64, niter=2, procs=4)
        plain = compile_source(src, CompilerOptions())
        combined = compile_source(src, CompilerOptions(combine_messages=True))
        stats = combining_stats(plain.comm, combined.comm)
        assert stats["events_before"] == 16
        assert stats["events_after"] == 4
        assert stats["duplicates_removed"] > 0

    def test_comm_time_improves(self):
        src = tomcatv_source(n=513, niter=5, procs=16)
        t_plain = PerfEstimator(
            compile_source(src, CompilerOptions())
        ).estimate().comm_time
        t_combined = PerfEstimator(
            compile_source(src, CompilerOptions(combine_messages=True))
        ).estimate().comm_time
        assert t_combined < 0.5 * t_plain

    def test_compute_unchanged(self):
        src = tomcatv_source(n=257, niter=2, procs=16)
        c_plain = PerfEstimator(
            compile_source(src, CompilerOptions())
        ).estimate().compute_time
        c_combined = PerfEstimator(
            compile_source(src, CompilerOptions(combine_messages=True))
        ).estimate().compute_time
        assert c_plain == pytest.approx(c_combined)


class TestSemantics:
    def test_simulation_unchanged(self):
        src = tomcatv_source(n=8, niter=2, procs=4)
        inputs = tomcatv_inputs(8)
        seq = run_sequential(parse_and_build(src), inputs)
        sim = simulate(
            compile_source(src, CompilerOptions(combine_messages=True)), inputs
        )
        assert np.allclose(sim.gather("X"), seq.get_array("X"))
        assert np.allclose(sim.gather("Y"), seq.get_array("Y"))
        assert sim.stats.unexpected_fetches == 0

    def test_simulator_pays_fewer_startups(self):
        src = tomcatv_source(n=12, niter=2, procs=4)
        inputs = tomcatv_inputs(12)
        plain = simulate(compile_source(src, CompilerOptions()), inputs)
        combined = simulate(
            compile_source(src, CompilerOptions(combine_messages=True)), inputs
        )
        assert combined.stats.messages <= plain.stats.messages


class TestNeutrality:
    def test_no_events_no_change(self):
        src = (
            "PROGRAM T\n  PARAMETER (n = 16)\n  REAL A(n), B(n)\n"
            "!HPF$ ALIGN B(i) WITH A(i)\n"
            "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
            "  DO i = 1, n\n    A(i) = B(i)\n  END DO\nEND PROGRAM\n"
        )
        combined = compile_source(
            src, CompilerOptions(num_procs=4, combine_messages=True)
        )
        assert not combined.comm.events

    def test_different_patterns_not_merged(self):
        src = (
            "PROGRAM T\n  PARAMETER (n = 16)\n  REAL A(n), B(n), E(n)\n"
            "!HPF$ ALIGN B(i) WITH A(i)\n"
            "!HPF$ ALIGN E(i) WITH A(*)\n"
            "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
            "  DO i = 2, n\n"
            "    A(i) = B(i - 1)\n"  # shift
            "    E(i) = B(i)\n"      # broadcast
            "  END DO\nEND PROGRAM\n"
        )
        combined = compile_source(
            src, CompilerOptions(num_procs=4, combine_messages=True)
        )
        kinds = {e.pattern.kind for e in combined.comm.events}
        assert kinds == {"shift", "broadcast"}
        assert len(combined.comm.events) == 2
