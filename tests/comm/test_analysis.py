"""Communication analysis tests: event extraction, patterns, placement,
and the message-vectorization ablation."""

import pytest

from repro.core import CompilerOptions, compile_source
from repro.ir import ScalarRef


def compile_body(body, decls="", procs=4, **opts):
    src = (
        "PROGRAM T\n  PARAMETER (n = 32, m = 4)\n"
        "  REAL A(n), B(n), C(n), E(n), W(n, n)\n" + decls +
        "!HPF$ ALIGN (i) WITH A(i) :: B, C\n"
        "!HPF$ ALIGN (i) WITH A(*) :: E\n"
        "!HPF$ ALIGN W(i, j) WITH A(i)\n"
        "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
        + body + "\nEND PROGRAM\n"
    )
    return compile_source(src, CompilerOptions(num_procs=procs, **opts))


class TestEventExtraction:
    def test_local_access_no_event(self):
        compiled = compile_body("  DO i = 1, n\n    A(i) = B(i)\n  END DO")
        assert not compiled.comm.events

    def test_shift_event(self):
        compiled = compile_body("  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO")
        events = compiled.comm.events
        assert len(events) == 1
        assert events[0].pattern.kind == "shift"
        assert events[0].pattern.offsets == (-1,)

    def test_replicated_write_broadcasts_rhs(self):
        compiled = compile_body("  DO i = 1, n\n    E(i) = B(i)\n  END DO")
        events = compiled.comm.events
        assert len(events) == 1
        assert events[0].pattern.kind == "broadcast"

    def test_loop_bound_data_broadcast(self):
        """A partitioned array read directly in a loop bound must reach
        every processor."""
        compiled = compile_body(
            "  DO i = 1, INT(B(1))\n    A(i) = E(i)\n  END DO",
        )
        bound_events = [e for e in compiled.comm.events if e.note == "loop bound"]
        assert bound_events
        assert bound_events[0].pattern.kind == "broadcast"

    def test_lhs_subscript_broadcast(self):
        """A partitioned array read inside an lhs subscript is needed by
        every processor (ownership guard evaluation)."""
        compiled = compile_body(
            "  DO i = 1, n\n    A(INT(C(i))) = E(i)\n  END DO",
        )
        sub_events = [e for e in compiled.comm.events if e.note == "lhs subscript"]
        assert sub_events
        assert sub_events[0].ref.symbol.name == "C"

    def test_subscript_scalar_forced_replicated_pushes_broadcast(self):
        """A *scalar* lhs subscript gets the dummy replicated consumer:
        the scalar stays replicated and its producer statement
        broadcasts the partitioned inputs instead."""
        compiled = compile_body(
            "  DO i = 1, n\n    l = INT(B(i)) + 1\n    A(l) = E(i)\n  END DO",
            decls="  INTEGER l\n",
        )
        from repro.core import Replicated

        stmts = [
            s for s in compiled.proc.assignments()
            if isinstance(s.lhs, ScalarRef) and s.lhs.symbol.name == "L"
        ]
        assert isinstance(compiled.scalar_mapping_of(stmts[0].stmt_id), Replicated)
        b_events = [e for e in compiled.comm.events if e.ref.symbol.name == "B"]
        assert b_events and b_events[0].pattern.kind == "broadcast"


class TestPlacement:
    def test_unwritten_data_hoisted_fully(self):
        compiled = compile_body("  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO")
        assert compiled.comm.events[0].placement_level == 0

    def test_written_data_stays_in_loop(self):
        compiled = compile_body(
            "  DO it = 1, m\n    DO i = 2, n - 1\n      A(i) = A(i - 1) + A(i + 1)\n"
            "    END DO\n  END DO"
        )
        for event in compiled.comm.events:
            # A is rewritten inside both loops: no hoisting at all.
            assert event.placement_level == 2
            assert event.is_inner_loop

    def test_outer_written_data_hoisted_to_outer(self):
        compiled = compile_body(
            "  DO it = 1, m\n"
            "    DO i = 2, n - 1\n      C(i) = B(i - 1) + B(i + 1)\n    END DO\n"
            "    DO i = 2, n - 1\n      B(i) = C(i)\n    END DO\n"
            "  END DO"
        )
        b_events = [e for e in compiled.comm.events if e.ref.symbol.name == "B"]
        assert b_events
        for event in b_events:
            assert event.placement_level == 1  # once per it iteration

    def test_vectorization_ablation(self):
        compiled = compile_body(
            "  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO",
            message_vectorization=False,
        )
        assert compiled.comm.events[0].placement_level == 1
        assert compiled.comm.events[0].is_inner_loop


class TestScalarTransfers:
    def test_partitioned_scalar_transfer(self):
        compiled = compile_body(
            "  DO i = 2, n - 1\n    y = A(i) + B(i)\n    A(i + 1) = y\n  END DO"
        )
        y_events = [
            e
            for e in compiled.comm.events
            if isinstance(e.ref, ScalarRef) and e.ref.symbol.name == "Y"
        ]
        assert len(y_events) == 1
        assert y_events[0].is_inner_loop

    def test_private_noalign_scalar_free(self):
        compiled = compile_body(
            "  DO i = 1, n\n    z = E(i)\n    A(i) = z\n  END DO"
        )
        assert not compiled.comm.events


class TestReport:
    def test_summary_counts(self):
        compiled = compile_body(
            "  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO"
        )
        text = compiled.comm.summary()
        assert "1 transfer(s)" in text

    def test_events_for_stmt(self):
        compiled = compile_body("  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO")
        event = compiled.comm.events[0]
        assert compiled.comm.events_for_stmt(event.stmt.stmt_id) == [event]

    def test_inner_vs_vectorized_split(self):
        compiled = compile_body(
            "  DO i = 2, n - 1\n"
            "    y = A(i) + B(i)\n"
            "    A(i + 1) = y\n"
            "    C(i) = B(i - 1)\n"
            "  END DO"
        )
        assert compiled.comm.inner_loop_events()
        assert compiled.comm.vectorized_events()
