"""Machine cost model tests."""

import pytest

from repro.core import TransferPattern
from repro.model import SP2, MachineModel, flops_of_expr
from repro.lang import parse_expression
from repro.ir.build import IRBuilder


def lowered(text):
    builder = IRBuilder()
    builder.symbols.resolve_scalar("A")
    return builder.lower_expr(parse_expression(text))


class TestMessageCosts:
    def test_message_time_components(self):
        m = MachineModel(alpha=1e-5, beta=1e-8, element_bytes=8)
        assert m.message_time(0) == pytest.approx(1e-5)
        assert m.message_time(100) == pytest.approx(1e-5 + 100 * 8 * 1e-8)

    def test_latency_dominates_small_messages(self):
        assert SP2.message_time(1) < 2 * SP2.alpha

    def test_bandwidth_dominates_large_messages(self):
        big = SP2.message_time(10**6)
        assert big > 100 * SP2.alpha

    def test_monotone_in_size(self):
        times = [SP2.message_time(n) for n in (0, 1, 10, 100, 1000)]
        assert times == sorted(times)


class TestCollectives:
    def test_broadcast_log_rounds(self):
        t4 = SP2.broadcast_time(10, 4)
        t16 = SP2.broadcast_time(10, 16)
        assert t16 == pytest.approx(2 * t4)

    def test_broadcast_single_proc_free(self):
        assert SP2.broadcast_time(1000, 1) == 0.0

    def test_reduce_matches_broadcast_shape(self):
        assert SP2.reduce_time(1, 8) == pytest.approx(SP2.broadcast_time(1, 8))

    def test_shift_is_one_message(self):
        assert SP2.shift_time(5) == pytest.approx(SP2.message_time(5))

    def test_gather_more_expensive_than_broadcast(self):
        assert SP2.gather_time(100, 8) > SP2.broadcast_time(100, 8)


class TestTransferDispatch:
    def test_none_pattern_free(self):
        assert SP2.transfer_time(TransferPattern(kind="none"), 100, 4) == 0.0

    def test_shift_pattern(self):
        p = TransferPattern(kind="shift", offsets=(1,))
        assert SP2.transfer_time(p, 10, 4) == pytest.approx(SP2.shift_time(10))

    def test_broadcast_pattern(self):
        p = TransferPattern(kind="broadcast", bcast_dims=(0,))
        assert SP2.transfer_time(p, 10, 8) == pytest.approx(SP2.broadcast_time(10, 8))

    def test_general_pattern(self):
        p = TransferPattern(kind="general")
        assert SP2.transfer_time(p, 10, 8) == pytest.approx(SP2.gather_time(10, 8))


class TestComputeCosts:
    def test_compute_time_scales_with_instances(self):
        assert SP2.compute_time(10, 100) == pytest.approx(100 * SP2.compute_time(10, 1))

    def test_statement_overhead_floor(self):
        assert SP2.compute_time(0, 1) > 0.0


class TestFlopCounting:
    def test_add(self):
        assert flops_of_expr(lowered("a + a")) == 1

    def test_divide_heavier(self):
        assert flops_of_expr(lowered("a / a")) > flops_of_expr(lowered("a * a"))

    def test_sqrt_heavy(self):
        assert flops_of_expr(lowered("SQRT(a)")) >= 10

    def test_nested_expression(self):
        # a*a + a*a: 2 muls + 1 add
        assert flops_of_expr(lowered("a * a + a * a")) == 3

    def test_constants_free(self):
        assert flops_of_expr(lowered("a")) == 0
