"""HPF directive parsing tests."""

import pytest

from repro.errors import DirectiveError
from repro.lang import ast_nodes as ast
from repro.lang import parse_directive


class TestProcessors:
    def test_one_dim(self):
        d = parse_directive("PROCESSORS P(16)")
        assert isinstance(d, ast.ProcessorsDirective)
        assert d.name == "P"
        assert len(d.shape) == 1

    def test_two_dim(self):
        d = parse_directive("PROCESSORS GRID(4, 4)")
        assert len(d.shape) == 2


class TestDistribute:
    def test_colon_list_form(self):
        d = parse_directive("DISTRIBUTE (BLOCK, *) :: A, B")
        assert isinstance(d, ast.DistributeDirective)
        assert [f.kind for f in d.formats] == ["BLOCK", "*"]
        assert d.targets == ["A", "B"]

    def test_attributed_form(self):
        d = parse_directive("DISTRIBUTE H(BLOCK, CYCLIC)")
        assert d.targets == ["H"]
        assert [f.kind for f in d.formats] == ["BLOCK", "CYCLIC"]

    def test_cyclic_with_chunk(self):
        d = parse_directive("DISTRIBUTE (CYCLIC(4)) :: A")
        assert d.formats[0].arg.value == 4

    def test_onto_clause(self):
        d = parse_directive("DISTRIBUTE (BLOCK) ONTO P :: A")
        assert d.onto == "P"

    def test_bad_format_rejected(self):
        with pytest.raises(DirectiveError):
            parse_directive("DISTRIBUTE (WEIRD) :: A")

    def test_no_targets_rejected(self):
        with pytest.raises(DirectiveError):
            parse_directive("DISTRIBUTE (BLOCK)")


class TestAlign:
    def test_named_source(self):
        d = parse_directive("ALIGN B(i) WITH A(i)")
        assert isinstance(d, ast.AlignDirective)
        assert d.source_name == "B"
        assert d.target_name == "A"
        assert d.source_subs[0].dummy == "I"

    def test_star_target_sub(self):
        d = parse_directive("ALIGN B(i) WITH A(i, *)")
        assert d.target_subs[1] is None

    def test_dummy_list_form(self):
        d = parse_directive("ALIGN (i) WITH A(i) :: B, C, D")
        assert d.source_name is None
        assert d.extra_targets == ["B", "C", "D"]

    def test_dummy_list_without_targets_rejected(self):
        with pytest.raises(DirectiveError):
            parse_directive("ALIGN (i) WITH A(i)")

    def test_affine_target_sub(self):
        d = parse_directive("ALIGN B(i) WITH A(2*i + 1)")
        expr = d.target_subs[0]
        assert isinstance(expr, ast.BinOp)

    def test_colon_subscripts(self):
        d = parse_directive("ALIGN (:) WITH A(:) :: B")
        assert d.source_subs[0].dummy == ":"

    def test_multi_dim(self):
        d = parse_directive("ALIGN G(i, j) WITH H(i, j)")
        assert len(d.source_subs) == 2
        assert len(d.target_subs) == 2

    def test_missing_with_rejected(self):
        with pytest.raises(DirectiveError):
            parse_directive("ALIGN B(i) A(i)")


class TestIndependent:
    def test_bare(self):
        d = parse_directive("INDEPENDENT")
        assert isinstance(d, ast.IndependentDirective)
        assert not d.new_vars

    def test_new_clause(self):
        d = parse_directive("INDEPENDENT, NEW(C, D)")
        assert d.new_vars == ["C", "D"]

    def test_reduction_clause(self):
        d = parse_directive("INDEPENDENT, REDUCTION(S)")
        assert d.reduction_vars == ["S"]

    def test_both_clauses(self):
        d = parse_directive("INDEPENDENT, NEW(C), REDUCTION(S)")
        assert d.new_vars == ["C"] and d.reduction_vars == ["S"]

    def test_unknown_clause_rejected(self):
        with pytest.raises(DirectiveError):
            parse_directive("INDEPENDENT, BOGUS(X)")


def test_unknown_directive_rejected():
    with pytest.raises(DirectiveError):
        parse_directive("TEMPLATE T(100)")
