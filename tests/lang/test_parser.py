"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang import parse_expression, parse_program


def parse_body(body, decls="  REAL A(10), B(10)\n  INTEGER i, j, k"):
    src = f"PROGRAM T\n{decls}\n{body}\nEND PROGRAM\n"
    return parse_program(src).body


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expression("a + b * c")
        assert isinstance(e, ast.BinOp) and e.op == "+"
        assert isinstance(e.right, ast.BinOp) and e.right.op == "*"

    def test_precedence_power_over_mul(self):
        e = parse_expression("a * b ** c")
        assert e.op == "*"
        assert isinstance(e.right, ast.BinOp) and e.right.op == "**"

    def test_power_right_associative(self):
        e = parse_expression("a ** b ** c")
        assert e.op == "**"
        assert isinstance(e.right, ast.BinOp) and e.right.op == "**"

    def test_unary_minus(self):
        e = parse_expression("-a + b")
        assert e.op == "+"
        assert isinstance(e.left, ast.UnOp)

    def test_unary_plus_dropped(self):
        e = parse_expression("+a")
        assert isinstance(e, ast.Name)

    def test_parentheses(self):
        e = parse_expression("(a + b) * c")
        assert e.op == "*"
        assert isinstance(e.left, ast.BinOp) and e.left.op == "+"

    def test_relational(self):
        e = parse_expression("a + 1 .GE. b")
        assert e.op == ">="
        assert isinstance(e.left, ast.BinOp)

    def test_logical_precedence(self):
        e = parse_expression("a < b .AND. c > d .OR. e == f")
        assert e.op == ".OR."
        assert e.left.op == ".AND."

    def test_not(self):
        e = parse_expression(".NOT. a .AND. b")
        assert e.op == ".AND."
        assert isinstance(e.left, ast.UnOp) and e.left.op == ".NOT."

    def test_array_reference(self):
        e = parse_expression("A(i + 1, 2 * j)")
        assert isinstance(e, ast.ArrayRef)
        assert len(e.subscripts) == 2

    def test_logical_literals(self):
        assert parse_expression(".TRUE.").value is True
        assert parse_expression(".FALSE.").value is False

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a + b )")


class TestDeclarations:
    def test_program_name(self):
        p = parse_program("PROGRAM myname\nEND PROGRAM myname\n")
        assert p.name == "MYNAME"

    def test_end_name_mismatch(self):
        with pytest.raises(ParseError):
            parse_program("PROGRAM a\nEND PROGRAM b\n")

    def test_type_decl_entities(self):
        p = parse_program("PROGRAM t\nREAL A(5), x\nINTEGER :: n\nEND\n")
        real = p.decls[0]
        assert real.type_name == "REAL"
        assert [e.name for e in real.entities] == ["A", "X"]
        assert len(real.entities[0].dims) == 1

    def test_dim_spec_bounds(self):
        p = parse_program("PROGRAM t\nREAL A(0:9, 5)\nEND\n")
        dims = p.decls[0].entities[0].dims
        assert dims[0].low.value == 0 and dims[0].high.value == 9
        assert dims[1].low.value == 1 and dims[1].high.value == 5

    def test_parameter_decl(self):
        p = parse_program("PROGRAM t\nPARAMETER (n = 10, m = n * 2)\nEND\n")
        names = [b[0] for b in p.decls[0].bindings]
        assert names == ["N", "M"]

    def test_dimension_decl(self):
        p = parse_program("PROGRAM t\nDIMENSION A(4)\nEND\n")
        assert p.decls[0].type_name == "REAL"


class TestStatements:
    def test_assignment(self):
        body = parse_body("  A(i) = B(i) + 1.0")
        assert isinstance(body[0], ast.Assign)

    def test_do_loop(self):
        body = parse_body("  DO i = 1, 10\n    A(i) = 0.0\n  END DO")
        loop = body[0]
        assert isinstance(loop, ast.Do)
        assert loop.var == "I"
        assert len(loop.body) == 1

    def test_do_loop_with_step(self):
        body = parse_body("  DO i = 10, 1, -1\n  END DO")
        assert body[0].step is not None

    def test_enddo_spelling(self):
        body = parse_body("  DO i = 1, 2\n  ENDDO")
        assert isinstance(body[0], ast.Do)

    def test_labeled_do(self):
        body = parse_body("  DO 10 i = 1, 3\n    A(i) = 1.0\n10 CONTINUE")
        loop = body[0]
        assert isinstance(loop, ast.Do)
        assert isinstance(loop.body[-1], ast.Continue)
        assert loop.body[-1].label == 10

    def test_unterminated_do(self):
        with pytest.raises(ParseError):
            parse_body("  DO i = 1, 2\n    A(i) = 0.0")

    def test_if_block(self):
        body = parse_body(
            "  IF (A(1) > 0.0) THEN\n    B(1) = 1.0\n  ELSE\n    B(1) = 2.0\n  END IF"
        )
        node = body[0]
        assert isinstance(node, ast.If)
        assert len(node.then_body) == 1 and len(node.else_body) == 1

    def test_if_one_liner(self):
        body = parse_body("  IF (A(1) > 0.0) B(1) = 1.0")
        node = body[0]
        assert isinstance(node, ast.If)
        assert isinstance(node.then_body[0], ast.Assign)
        assert not node.else_body

    def test_else_if_chain(self):
        body = parse_body(
            "  IF (i == 1) THEN\n    A(1) = 1.0\n"
            "  ELSE IF (i == 2) THEN\n    A(2) = 2.0\n"
            "  ELSE\n    A(3) = 3.0\n  END IF"
        )
        node = body[0]
        inner = node.else_body[0]
        assert isinstance(inner, ast.If)
        assert inner.else_body

    def test_goto_forms(self):
        body = parse_body("  GO TO 10\n  GOTO 10\n10 CONTINUE")
        assert isinstance(body[0], ast.Goto)
        assert isinstance(body[1], ast.Goto)
        assert body[0].target_label == 10

    def test_stop(self):
        body = parse_body("  STOP")
        assert isinstance(body[0], ast.Stop)

    def test_call(self):
        body = parse_body("  CALL foo(A(1), 2)")
        node = body[0]
        assert isinstance(node, ast.Call)
        assert node.name == "FOO"
        assert len(node.args) == 2

    def test_nested_loops(self):
        body = parse_body(
            "  DO i = 1, 2\n    DO j = 1, 2\n      A(i) = B(j)\n    END DO\n  END DO"
        )
        assert isinstance(body[0].body[0], ast.Do)


class TestDirectiveAttachment:
    def test_independent_attaches_to_loop(self):
        src = (
            "PROGRAM t\nREAL C(4)\n"
            "!HPF$ INDEPENDENT, NEW(C)\n"
            "DO k = 1, 4\n  C(k) = 0.0\nEND DO\nEND\n"
        )
        loop = parse_program(src).body[0]
        assert loop.directive is not None
        assert loop.directive.new_vars == ["C"]

    def test_independent_without_loop_rejected(self):
        src = "PROGRAM t\nREAL C(4)\n!HPF$ INDEPENDENT\nC(1) = 0.0\nEND\n"
        with pytest.raises(ParseError):
            parse_program(src)

    def test_mapping_directives_collected(self):
        src = (
            "PROGRAM t\nREAL A(8)\n"
            "!HPF$ PROCESSORS P(4)\n"
            "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
            "END\n"
        )
        p = parse_program(src)
        assert len(p.directives) == 2


class TestWalkHelpers:
    def test_walk_exprs(self):
        e = parse_expression("A(i+1) * (b - c)")
        names = {n.ident for n in ast.walk_exprs(e) if isinstance(n, ast.Name)}
        assert names == {"I", "B", "C"}

    def test_walk_stmts(self):
        body = parse_body(
            "  DO i = 1, 2\n    IF (A(i) > 0.0) THEN\n      B(i) = 1.0\n"
            "    END IF\n  END DO"
        )
        stmts = list(ast.walk_stmts(body))
        assert any(isinstance(s, ast.Assign) for s in stmts)
        assert any(isinstance(s, ast.If) for s in stmts)
