"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.lang import TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind is not TokenKind.EOF]


def values(source):
    return [t.value for t in tokenize(source) if t.kind is not TokenKind.EOF]


class TestBasicTokens:
    def test_identifiers_uppercased(self):
        toks = tokenize("abc Xy_9")
        assert toks[0].value == "ABC"
        assert toks[1].value == "XY_9"

    def test_integer_literal(self):
        tok = tokenize("12345")[0]
        assert tok.kind is TokenKind.INT
        assert tok.value == "12345"

    def test_real_literal_simple(self):
        tok = tokenize("3.25")[0]
        assert tok.kind is TokenKind.REAL

    def test_real_literal_exponent(self):
        tok = tokenize("1.5e-3")[0]
        assert tok.kind is TokenKind.REAL
        assert tok.value == "1.5E-3"

    def test_real_literal_d_exponent(self):
        tok = tokenize("2.0d0")[0]
        assert tok.kind is TokenKind.REAL
        assert tok.value == "2.0E0"

    def test_integer_then_exponent_form(self):
        tok = tokenize("2e3")[0]
        assert tok.kind is TokenKind.REAL

    def test_real_starting_with_dot(self):
        tok = tokenize(".5")[0]
        assert tok.kind is TokenKind.REAL
        assert float(tok.value) == 0.5

    def test_string_literal(self):
        toks = tokenize("'hello'")
        assert toks[0].kind is TokenKind.STRING
        assert toks[0].value == "hello"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'oops")


class TestOperators:
    @pytest.mark.parametrize(
        "text,kind",
        [
            ("**", TokenKind.POWER),
            ("::", TokenKind.DCOLON),
            ("==", TokenKind.EQ),
            ("/=", TokenKind.NE),
            ("<=", TokenKind.LE),
            (">=", TokenKind.GE),
            ("<", TokenKind.LT),
            (">", TokenKind.GT),
            ("+", TokenKind.PLUS),
            ("-", TokenKind.MINUS),
            ("*", TokenKind.STAR),
            ("/", TokenKind.SLASH),
            ("(", TokenKind.LPAREN),
            (")", TokenKind.RPAREN),
            (",", TokenKind.COMMA),
            ("=", TokenKind.ASSIGN),
            (":", TokenKind.COLON),
        ],
    )
    def test_symbolic_operator(self, text, kind):
        assert kinds(text) == [kind]

    @pytest.mark.parametrize(
        "text,kind",
        [
            (".EQ.", TokenKind.EQ),
            (".ne.", TokenKind.NE),
            (".Lt.", TokenKind.LT),
            (".LE.", TokenKind.LE),
            (".GT.", TokenKind.GT),
            (".GE.", TokenKind.GE),
            (".AND.", TokenKind.AND),
            (".or.", TokenKind.OR),
            (".NOT.", TokenKind.NOT),
            (".TRUE.", TokenKind.TRUE),
            (".false.", TokenKind.FALSE),
        ],
    )
    def test_dot_operator(self, text, kind):
        assert kinds(text) == [kind]

    def test_dot_operator_after_integer(self):
        # '1.EQ.2' must lex as INT EQ INT, not REAL.
        assert kinds("1.EQ.2") == [TokenKind.INT, TokenKind.EQ, TokenKind.INT]

    def test_malformed_dot_operator(self):
        with pytest.raises(LexError):
            tokenize(".BOGUS.")

    def test_power_vs_star_star_spaced(self):
        assert kinds("a ** b") == [TokenKind.IDENT, TokenKind.POWER, TokenKind.IDENT]


class TestLinesAndComments:
    def test_newline_token(self):
        assert TokenKind.NEWLINE in kinds("a\nb")

    def test_consecutive_newlines_collapse(self):
        ks = kinds("a\n\n\nb")
        assert ks.count(TokenKind.NEWLINE) == 1

    def test_comment_stripped(self):
        assert kinds("a ! a comment\nb") == [
            TokenKind.IDENT,
            TokenKind.NEWLINE,
            TokenKind.IDENT,
        ]

    def test_directive_token(self):
        toks = tokenize("!HPF$ DISTRIBUTE (BLOCK) :: A\n")
        assert toks[0].kind is TokenKind.DIRECTIVE
        assert toks[0].value == "DISTRIBUTE (BLOCK) :: A"

    def test_directive_case_insensitive_sentinel(self):
        toks = tokenize("!hpf$ PROCESSORS P(4)")
        assert toks[0].kind is TokenKind.DIRECTIVE

    def test_continuation(self):
        ks = kinds("a = b + &\n    c")
        assert TokenKind.NEWLINE not in ks

    def test_continuation_must_end_line(self):
        with pytest.raises(LexError):
            tokenize("a = b & c")

    def test_line_numbers(self):
        toks = tokenize("a\nbb\nccc")
        assert [t.line for t in toks[:5]] == [1, 1, 2, 2, 3]


class TestDirectiveMode:
    def test_no_newline_tokens(self):
        from repro.lang import Lexer

        toks = Lexer("A (BLOCK)\n", directive_mode=True).tokenize()
        assert all(t.kind is not TokenKind.NEWLINE for t in toks)

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")
