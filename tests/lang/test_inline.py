"""Automatic procedure inlining tests (paper: "procedure-inlining by
hand" — automated here)."""

import numpy as np
import pytest

from repro.codegen import run_sequential
from repro.errors import ParseError, SemanticError
from repro.ir import parse_and_build
from repro.lang import parse_program
from repro.lang.inline import inline_calls


BASIC = """
PROGRAM MAIN
  PARAMETER (n = 8)
  REAL A(n), B(n)
  DO i = 1, n
    A(i) = i
  END DO
  CALL SCALE(A, B)
END PROGRAM

SUBROUTINE SCALE(X, Y)
  PARAMETER (n = 8)
  REAL X(n), Y(n)
  REAL f
  f = 2.0
  DO j = 1, n
    Y(j) = X(j) * f
  END DO
END SUBROUTINE
"""


class TestParsing:
    def test_subroutine_parsed(self):
        program = parse_program(BASIC)
        assert len(program.subroutines) == 1
        sub = program.subroutines[0]
        assert sub.name == "SCALE"
        assert sub.params == ["X", "Y"]

    def test_multiple_subroutines(self):
        src = BASIC + "\nSUBROUTINE NOOP()\n  CONTINUE\nEND SUBROUTINE\n"
        program = parse_program(src)
        assert [s.name for s in program.subroutines] == ["SCALE", "NOOP"]

    def test_directives_in_subroutine_rejected(self):
        src = (
            "PROGRAM M\n  REAL A(4)\nEND PROGRAM\n"
            "SUBROUTINE S(X)\n  REAL X(4)\n"
            "!HPF$ DISTRIBUTE (BLOCK) :: X\n"
            "  X(1) = 0.0\nEND SUBROUTINE\n"
        )
        with pytest.raises(ParseError):
            parse_program(src)


class TestInlining:
    def test_call_replaced_by_body(self):
        program = inline_calls(parse_program(BASIC))
        assert not program.subroutines
        from repro.lang import ast_nodes as ast

        assert not any(
            isinstance(s, ast.Call) for s in ast.walk_stmts(program.body)
        )

    def test_formals_substituted(self):
        program = inline_calls(parse_program(BASIC))
        text = "\n".join(str(s) for s in program.body)
        proc = parse_and_build(BASIC)
        names = {s.name for s in proc.symbols}
        assert "A" in names and "B" in names
        assert "X" not in names and "Y" not in names

    def test_locals_renamed_with_implicit_type_preserved(self):
        proc = parse_and_build(BASIC)
        f_local = proc.symbols.lookup("F__SCALE")
        j_local = proc.symbols.lookup("J__SCALE")
        assert f_local is not None and j_local is not None
        from repro.ir import ScalarType

        assert f_local.type is ScalarType.REAL
        assert j_local.type is ScalarType.INT

    def test_semantics(self):
        store = run_sequential(parse_and_build(BASIC), {})
        assert list(store.get_array("B")) == [2.0 * i for i in range(1, 9)]

    def test_two_calls_no_collision(self):
        src = BASIC.replace("  CALL SCALE(A, B)", "  CALL SCALE(A, B)\n  CALL SCALE(B, A)")
        store = run_sequential(parse_and_build(src), {})
        assert list(store.get_array("A")) == [4.0 * i for i in range(1, 9)]

    def test_nested_calls(self):
        src = (
            "PROGRAM M\n  PARAMETER (n = 4)\n  REAL A(n)\n"
            "  CALL OUTER(A)\nEND PROGRAM\n"
            "SUBROUTINE OUTER(X)\n  PARAMETER (n = 4)\n  REAL X(n)\n"
            "  CALL INNER(X)\n  X(1) = X(1) + 1.0\nEND SUBROUTINE\n"
            "SUBROUTINE INNER(Y)\n  PARAMETER (n = 4)\n  REAL Y(n)\n"
            "  DO i = 1, n\n    Y(i) = 5.0\n  END DO\nEND SUBROUTINE\n"
        )
        store = run_sequential(parse_and_build(src), {})
        assert store.get_array("A")[0] == 6.0
        assert store.get_array("A")[1] == 5.0

    def test_labels_renumbered(self):
        src = (
            "PROGRAM M\n  PARAMETER (n = 4)\n  REAL A(n)\n"
            "  GO TO 10\n10 CONTINUE\n"
            "  CALL S(A)\n  CALL S(A)\nEND PROGRAM\n"
            "SUBROUTINE S(X)\n  PARAMETER (n = 4)\n  REAL X(n)\n"
            "  DO i = 1, n\n    IF (X(i) > 1.0) GO TO 10\n"
            "    X(i) = X(i) + 1.0\n10 CONTINUE\n  END DO\nEND SUBROUTINE\n"
        )
        # duplicate labels would make build_procedure raise
        store = run_sequential(parse_and_build(src), {})
        assert store.get_array("A")[0] == 2.0

    def test_recursion_rejected(self):
        src = (
            "PROGRAM M\n  REAL A(4)\n  CALL S(A)\nEND PROGRAM\n"
            "SUBROUTINE S(X)\n  REAL X(4)\n  CALL S(X)\nEND SUBROUTINE\n"
        )
        with pytest.raises(SemanticError):
            parse_and_build(src)

    def test_argument_count_checked(self):
        src = (
            "PROGRAM M\n  REAL A(4)\n  CALL S(A, A)\nEND PROGRAM\n"
            "SUBROUTINE S(X)\n  REAL X(4)\n  X(1) = 0.0\nEND SUBROUTINE\n"
        )
        with pytest.raises(SemanticError):
            parse_and_build(src)

    def test_expression_argument_rejected(self):
        src = (
            "PROGRAM M\n  REAL A(4)\n  CALL S(A(1) + 1.0)\nEND PROGRAM\n"
            "SUBROUTINE S(X)\n  REAL X\n  X = 0.0\nEND SUBROUTINE\n"
        )
        with pytest.raises(SemanticError):
            parse_and_build(src)

    def test_unknown_subroutine_left_alone(self):
        src = "PROGRAM M\n  REAL A(4)\n  CALL EXTERN(A)\nEND PROGRAM\n"
        program = parse_program(src)
        inlined = inline_calls(program)
        from repro.lang import ast_nodes as ast

        assert any(isinstance(s, ast.Call) for s in inlined.body)


class TestModularDgefa:
    """The paper's exact use case: LINPACK DGEFA with BLAS calls."""

    def test_matches_hand_inlined_version(self):
        from repro.programs import dgefa_inputs, dgefa_modular_source, dgefa_source

        inputs = dgefa_inputs(8)
        hand = run_sequential(parse_and_build(dgefa_source(n=8, procs=4)), inputs)
        auto = run_sequential(
            parse_and_build(dgefa_modular_source(n=8, procs=4)), inputs
        )
        assert np.allclose(auto.get_array("A"), hand.get_array("A"))
        assert np.allclose(auto.get_array("AMD"), hand.get_array("AMD"))

    def test_reduction_survives_inlining(self):
        from repro.core import CompilerOptions, ReductionMapping, compile_source
        from repro.ir import ScalarRef
        from repro.programs import dgefa_modular_source

        compiled = compile_source(
            dgefa_modular_source(n=32, procs=4), CompilerOptions()
        )
        kinds = set()
        for stmt in compiled.proc.assignments():
            if isinstance(stmt.lhs, ScalarRef) and stmt.lhs.symbol.name == "PMAX":
                kinds.add(type(compiled.scalar_mapping_of(stmt.stmt_id)))
        assert kinds == {ReductionMapping}

    def test_parallel_execution(self):
        from repro.core import CompilerOptions, compile_source
        from repro.machine import simulate
        from repro.programs import dgefa_inputs, dgefa_modular_source, dgefa_source

        inputs = dgefa_inputs(8)
        hand = run_sequential(parse_and_build(dgefa_source(n=8, procs=4)), inputs)
        sim = simulate(
            compile_source(dgefa_modular_source(n=8, procs=4), CompilerOptions()),
            inputs,
        )
        assert np.allclose(sim.gather("A"), hand.get_array("A"))
        assert sim.stats.unexpected_fetches == 0
