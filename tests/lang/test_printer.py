"""Printer (unparser) round-trip tests."""

from repro.lang import parse_program, print_program


SAMPLE = """
PROGRAM sample
  PARAMETER (n = 8)
  REAL A(n), B(n), C(0:7)
  INTEGER m
!HPF$ PROCESSORS P(4)
!HPF$ ALIGN B(i) WITH A(i)
!HPF$ DISTRIBUTE (BLOCK) :: A
  m = 2
  DO i = 2, n - 1
    IF (B(i) /= 0.0) THEN
      A(i) = A(i) / B(i)
    ELSE
      A(i) = 0.0
    END IF
    C(i - 1) = A(i) ** 2
  END DO
END PROGRAM
"""


def test_roundtrip_is_stable():
    """print(parse(print(parse(src)))) == print(parse(src))."""
    once = print_program(parse_program(SAMPLE))
    twice = print_program(parse_program(once))
    assert once == twice


def test_printed_contains_directives():
    text = print_program(parse_program(SAMPLE))
    assert "!HPF$ PROCESSORS P(4)" in text
    assert "!HPF$ ALIGN B(I) WITH A(I)" in text
    assert "!HPF$ DISTRIBUTE (BLOCK) :: A" in text


def test_printed_preserves_bounds():
    text = print_program(parse_program(SAMPLE))
    assert "C(0:7)" in text


def test_printed_if_else():
    text = print_program(parse_program(SAMPLE))
    assert "ELSE" in text and "END IF" in text


def test_independent_directive_printed():
    src = (
        "PROGRAM t\nREAL C(4)\n"
        "!HPF$ INDEPENDENT, NEW(C)\n"
        "DO k = 1, 4\n  C(k) = 0.0\nEND DO\nEND\n"
    )
    text = print_program(parse_program(src))
    assert "!HPF$ INDEPENDENT, NEW(C)" in text


def test_goto_and_label_printed():
    src = "PROGRAM t\nREAL A(4)\nDO i = 1, 4\n  GO TO 10\n10 CONTINUE\nEND DO\nEND\n"
    text = print_program(parse_program(src))
    assert "GO TO 10" in text
    assert "10 CONTINUE" in text
