"""The durable job queue: submit/claim/lease/complete lifecycle,
crash-reclaim, and persistence across reopen."""

import pickle
import time

import pytest

from repro.programs import tomcatv_source
from repro.service import JobQueue, make_owner, point_key, shard_jobs
from repro.sweep.spec import SweepResult, SweepSpec


def _spec(procs=(2, 4)):
    return SweepSpec(
        programs={"tomcatv": lambda p: tomcatv_source(n=10, niter=1, procs=p)},
        procs=procs,
    )


def _submit(queue, jobs, shards=None, **kwargs):
    return queue.submit(
        jobs,
        [point_key(j) for j in jobs],
        shard_jobs(jobs, shards),
        **kwargs,
    )


def _result(job, **overrides):
    fields = dict(
        label=job.label, program=job.program, mode=job.mode,
        procs=job.procs, options=job.options, ok=True, worker="test",
    )
    fields.update(overrides)
    return SweepResult(**fields)


class TestSubmit:
    def test_submit_persists_points_and_shards(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        jobs = _spec().jobs()
        job_id = _submit(queue, jobs, name="grid")
        status = queue.status(job_id)
        assert status.state == "queued"
        assert status.n_points == len(jobs)
        assert status.done == 0 and status.n_shards >= 1
        assert queue.results(job_id) == [None] * len(jobs)

    def test_shards_must_partition(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        jobs = _spec().jobs()
        keys = [point_key(j) for j in jobs]
        with pytest.raises(ValueError, match="partition"):
            queue.submit(jobs, keys, [[0]], name="bad")
        with pytest.raises(ValueError, match="one catalog key"):
            queue.submit(jobs, keys[:-1], [[0], [1]])

    def test_unknown_job_raises(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        with pytest.raises(KeyError, match="no job 99"):
            queue.status(99)


class TestClaimLease:
    def test_claim_leases_and_marks_running(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        jobs = _spec().jobs()
        job_id = _submit(queue, jobs, shards=1)
        claim = queue.claim("me:1:a")
        assert claim is not None and claim.job_id == job_id
        assert [idx for idx, _ in claim.points] == list(range(len(jobs)))
        assert queue.status(job_id).state == "running"
        # the only shard is leased: nothing else claimable
        assert queue.claim("other:2:b") is None

    def test_heartbeat_extends_and_guards_owner(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        job_id = _submit(queue, _spec().jobs(), shards=1)
        claim = queue.claim("me:1:a")
        assert queue.heartbeat(job_id, claim.shard, "me:1:a")
        assert not queue.heartbeat(job_id, claim.shard, "impostor:9:z")

    def test_expired_lease_is_reclaimable_with_done_points_kept(
        self, tmp_path
    ):
        queue = JobQueue(tmp_path / "q.sqlite", lease_ttl=0.05)
        jobs = _spec().jobs()
        job_id = _submit(queue, jobs, shards=1)
        claim = queue.claim("remotehost:1:a")
        idx, job = claim.points[0]
        queue.complete_point(job_id, idx, _result(job))
        time.sleep(0.1)
        reclaim = queue.claim("remotehost:1:b")
        assert reclaim is not None and reclaim.shard == claim.shard
        # only the still-pending point is reissued
        assert [i for i, _ in reclaim.points] == [
            i for i, _ in claim.points[1:]
        ]
        kinds = [e.kind for e in queue.events_since(job_id)]
        assert "reclaimed" in kinds

    def test_dead_local_owner_reclaimed_before_expiry(self, tmp_path):
        import socket

        queue = JobQueue(tmp_path / "q.sqlite", lease_ttl=3600)
        job_id = _submit(queue, _spec().jobs(), shards=1)
        dead = f"{socket.gethostname()}:999999:dead"
        assert queue.claim(dead) is not None
        # long un-expired lease, but the pid does not exist locally
        reclaim = queue.claim(make_owner())
        assert reclaim is not None and reclaim.job_id == job_id

    def test_remote_owner_not_presumed_dead(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite", lease_ttl=3600)
        _submit(queue, _spec().jobs(), shards=1)
        assert queue.claim("elsewhere:999999:far") is not None
        assert queue.claim(make_owner()) is None


class TestCompletion:
    def test_complete_all_points_finishes_job(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        jobs = _spec().jobs()
        job_id = _submit(queue, jobs, shards=1)
        claim = queue.claim("me:1:a")
        for idx, job in claim.points:
            assert queue.complete_point(job_id, idx, _result(job))
        assert queue.finish_shard(job_id, claim.shard, "me:1:a")
        status = queue.status(job_id)
        assert status.state == "done" and status.done == len(jobs)
        results = queue.results(job_id)
        assert [r.label for r in results] == [j.label for j in jobs]
        assert [e.kind for e in queue.events_since(job_id)][-1] == "done"

    def test_double_completion_dropped(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        jobs = _spec().jobs()
        job_id = _submit(queue, jobs, shards=1)
        claim = queue.claim("me:1:a")
        idx, job = claim.points[0]
        assert queue.complete_point(job_id, idx, _result(job))
        assert not queue.complete_point(job_id, idx, _result(job))

    def test_finish_shard_refuses_pending_points(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        job_id = _submit(queue, _spec().jobs(), shards=1)
        claim = queue.claim("me:1:a")
        assert not queue.finish_shard(job_id, claim.shard, "me:1:a")

    def test_release_returns_shard_to_ready(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        job_id = _submit(queue, _spec().jobs(), shards=1)
        claim = queue.claim("me:1:a")
        queue.release_shard(job_id, claim.shard, "me:1:a", "shutdown")
        assert queue.claim("me:1:b") is not None


class TestCancel:
    def test_cancel_stops_heartbeats(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        job_id = _submit(queue, _spec().jobs(), shards=1)
        claim = queue.claim("me:1:a")
        assert queue.cancel(job_id)
        assert not queue.heartbeat(job_id, claim.shard, "me:1:a")
        assert not queue.cancel(job_id)  # idempotent: already terminal
        assert queue.status(job_id).state == "cancelled"

    def test_fail_job_records_error(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        job_id = _submit(queue, _spec().jobs())
        queue.fail_job(job_id, "boom\nlast line")
        status = queue.status(job_id)
        assert status.state == "failed" and "last line" in status.error


class TestDurability:
    def test_queue_survives_reopen(self, tmp_path):
        path = tmp_path / "q.sqlite"
        queue = JobQueue(path, lease_ttl=0.01)
        jobs = _spec().jobs()
        job_id = _submit(queue, jobs, shards=1)
        claim = queue.claim("me:1:a")
        idx, job = claim.points[0]
        queue.complete_point(job_id, idx, _result(job))
        queue.close()

        reopened = JobQueue(path, lease_ttl=0.01)
        status = reopened.status(job_id)
        assert status.done == 1 and status.n_points == len(jobs)
        time.sleep(0.05)
        reclaim = reopened.claim("me:1:b")
        assert reclaim is not None
        assert len(reclaim.points) == len(jobs) - 1
        stored = reopened.results(job_id)[idx]
        assert stored.label == job.label and stored.ok

    def test_jobs_round_trip_pickle_identical(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        jobs = _spec().jobs()
        _submit(queue, jobs, shards=1)
        claim = queue.claim("me:1:a")
        for (idx, loaded), original in zip(claim.points, jobs):
            assert pickle.dumps(loaded) == pickle.dumps(original)

    def test_depth_gauges(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        assert queue.depth() == {
            "shards_ready": 0, "shards_leased": 0, "jobs_open": 0,
        }
        _submit(queue, _spec().jobs(), shards=2)
        depth = queue.depth()
        assert depth["jobs_open"] == 1 and depth["shards_ready"] == 2
        queue.claim("me:1:a")
        depth = queue.depth()
        assert depth["shards_ready"] == 1 and depth["shards_leased"] == 1
