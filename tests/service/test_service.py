"""SweepService end-to-end: byte-parity with direct sweeps, catalog
reuse, the JobHandle client surface, sharding, and backends."""

import json

import pytest

from repro import Session
from repro.obs import Metrics
from repro.programs import tomcatv_source
from repro.records import comparable
from repro.service import (
    InlineBackend,
    JobFailed,
    PoolBackend,
    SweepService,
    as_backend,
    shard_jobs,
)
from repro.sweep.spec import SweepSpec


def _spec(procs=(2, 4), **kwargs):
    return SweepSpec(
        programs={"tomcatv": lambda p: tomcatv_source(n=10, niter=1, procs=p)},
        procs=procs,
        **kwargs,
    )


def _canon(results):
    return json.dumps(
        [comparable(r.as_dict()) for r in results], sort_keys=True
    )


class TestEndToEnd:
    def test_submitted_job_matches_direct_sweep_byte_identical(
        self, tmp_path
    ):
        spec = _spec()
        service = SweepService(tmp_path / "svc")
        handle = service.submit(spec, name="parity")
        assert service.serve_forever(once=True) >= 1
        via_service = handle.result(timeout=60)

        direct = Session(cache=False, use_calibration=False).sweep(
            spec, workers=0, mode="batched"
        )
        assert _canon(via_service) == _canon(direct)
        service.close()

    def test_resubmit_serves_from_catalog_without_reevaluating(
        self, tmp_path
    ):
        spec = _spec()
        service = SweepService(tmp_path / "svc")
        first = service.submit(spec)
        service.serve_forever(once=True)
        first_results = first.result(timeout=60)

        second = service.submit(spec)
        service.serve_forever(once=True)
        second_results = second.result(timeout=60)

        status = second.poll()
        assert status.reused == len(spec.jobs())
        assert [r.worker for r in second_results] == (
            ["catalog"] * len(spec.jobs())
        )
        assert _canon(first_results) == _canon(second_results)
        # each point was computed exactly once across both jobs
        assert all(
            service.catalog.evaluations(job) == 1 for job in spec.jobs()
        )
        service.close()

    def test_multiple_shards_drain_to_completion(self, tmp_path):
        spec = _spec(procs=(2, 4, 8))
        service = SweepService(tmp_path / "svc")
        handle = service.submit(spec, shards=3)
        assert handle.poll().n_shards == 3
        service.serve_forever(once=True)
        results = handle.result(timeout=60)
        assert [r.label for r in results] == [j.label for j in spec.jobs()]
        service.close()

    def test_metrics_and_events(self, tmp_path):
        metrics = Metrics()
        service = SweepService(tmp_path / "svc", metrics=metrics)
        handle = service.submit(_spec())
        service.serve_forever(once=True)
        handle.result(timeout=60)
        assert metrics.counters["service.jobs_submitted"] == 1
        assert metrics.counters["service.points_done"] == 2
        assert metrics.gauges["service.queue.jobs_open"] == 0
        kinds = [e.kind for e in handle.stream_events(timeout=5)]
        assert kinds[0] == "submitted" and kinds[-1] == "done"
        service.close()


class TestJobHandle:
    def test_poll_and_result_timeout(self, tmp_path):
        service = SweepService(tmp_path / "svc")
        handle = service.submit(_spec())
        assert handle.poll().state == "queued"
        with pytest.raises(TimeoutError, match="still queued"):
            handle.result(timeout=0.05, poll=0.01)
        service.close()

    def test_cancel_raises_jobfailed(self, tmp_path):
        service = SweepService(tmp_path / "svc")
        handle = service.submit(_spec())
        assert handle.cancel()
        assert not handle.cancel()
        with pytest.raises(JobFailed, match="cancelled"):
            handle.result(timeout=5)
        service.close()

    def test_reattach_by_id(self, tmp_path):
        service = SweepService(tmp_path / "svc")
        handle = service.submit(_spec())
        again = service.handle(handle.job_id)
        assert again.poll().n_points == handle.poll().n_points
        with pytest.raises(KeyError):
            service.handle(999)
        service.close()

    def test_empty_grid_rejected(self, tmp_path):
        service = SweepService(tmp_path / "svc")
        with pytest.raises(ValueError, match="empty grid"):
            service.submit([])
        with pytest.raises(ValueError, match="exec_mode"):
            service.submit(_spec(), exec_mode="warp")
        service.close()


class TestSessionSubmit:
    def test_session_submit_round_trip(self, tmp_path):
        session = Session(use_calibration=False)
        handle = session.submit(_spec(), service=tmp_path / "svc")
        worker = SweepService(tmp_path / "svc")
        worker.serve_forever(once=True)
        results = handle.result(timeout=60)
        assert len(results) == 2 and all(r.ok for r in results)
        direct = session.sweep(_spec(), workers=0, mode="batched")
        assert _canon(results) == _canon(direct)
        worker.close()
        handle.service.close()


class TestBackends:
    def test_as_backend_forms(self):
        assert isinstance(as_backend(None), InlineBackend)
        assert isinstance(as_backend("inline"), InlineBackend)
        pool = as_backend("pool:3")
        assert isinstance(pool, PoolBackend) and pool.workers == 3
        backend = InlineBackend()
        assert as_backend(backend) is backend
        with pytest.raises(ValueError, match="unknown worker backend"):
            as_backend("cloud")
        with pytest.raises(TypeError, match="not a worker backend"):
            as_backend(42)

    def test_pool_backend_matches_inline(self, tmp_path):
        spec = _spec()
        inline = SweepService(tmp_path / "a", backend="inline")
        handle = inline.submit(spec)
        inline.serve_forever(once=True)
        inline_results = handle.result(timeout=60)
        inline.close()

        pool = SweepService(tmp_path / "b", backend="pool:2")
        handle = pool.submit(spec)
        pool.serve_forever(once=True)
        pool_results = handle.result(timeout=120)
        pool.close()
        assert _canon(inline_results) == _canon(pool_results)


class TestShardJobs:
    def test_default_one_shard_per_fusion_group(self):
        jobs = _spec(procs=(2, 4, 8)).jobs()
        shards = shard_jobs(jobs)
        flat = sorted(i for shard in shards for i in shard)
        assert flat == list(range(len(jobs)))

    def test_explicit_shard_count_partitions(self):
        jobs = _spec(procs=(2, 4, 8, 16)).jobs()
        shards = shard_jobs(jobs, 2)
        assert len(shards) <= 2
        flat = sorted(i for shard in shards for i in shard)
        assert flat == list(range(len(jobs)))

    def test_more_shards_than_points_clamps(self):
        jobs = _spec(procs=(2,)).jobs()
        assert shard_jobs(jobs, 5) == [[0]]
        assert shard_jobs([], 3) == []
        with pytest.raises(ValueError, match="shards must be >= 1"):
            shard_jobs(jobs, 0)
