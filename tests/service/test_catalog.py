"""The artifact catalog: point identity, exactly-once evaluation
accounting, reuse, and inspection/gc."""

import pytest

from repro.core.diskcache import CompileCache
from repro.core.driver import compile_source
from repro.programs import tomcatv_source
from repro.service import Catalog, point_key
from repro.sweep.spec import SweepResult, SweepSpec


def _jobs(procs=(2, 4)):
    return SweepSpec(
        programs={"tomcatv": lambda p: tomcatv_source(n=10, niter=1, procs=p)},
        procs=procs,
    ).jobs()


def _result(job, **overrides):
    fields = dict(
        label=job.label, program=job.program, mode=job.mode,
        procs=job.procs, options=job.options, ok=True, worker="test",
        total_time=1.25, canonical_stats={"clock": 42},
    )
    fields.update(overrides)
    return SweepResult(**fields)


class TestPointKey:
    def test_identity_is_stable_and_discriminating(self):
        a, b = _jobs()
        assert point_key(a) == point_key(a)
        assert point_key(a) != point_key(b)  # different procs → source
        again = _jobs()[0]
        assert point_key(a) == point_key(again)

    def test_mode_and_seed_matter(self):
        job = _jobs()[0]
        import dataclasses

        other_seed = dataclasses.replace(job, seed=7)
        assert point_key(job) != point_key(other_seed)


class TestResults:
    def test_record_then_lookup_round_trips(self, tmp_path):
        catalog = Catalog(tmp_path / "c.sqlite")
        job = _jobs()[0]
        assert catalog.lookup(job) is None
        catalog.record_result(job, _result(job), job_id=3)
        found = catalog.lookup(job)
        assert found is not None
        assert found.total_time == 1.25
        assert found.canonical_stats == {"clock": 42}
        assert found.worker == "catalog"  # provenance tag on reuse

    def test_evaluations_counts_computes_not_reuses(self, tmp_path):
        catalog = Catalog(tmp_path / "c.sqlite")
        job = _jobs()[0]
        assert catalog.evaluations(job) == 0
        catalog.record_result(job, _result(job))
        assert catalog.evaluations(job) == 1
        catalog.lookup(job)
        catalog.lookup(job)
        assert catalog.evaluations(job) == 1
        # a crash-replayed re-record is counted, visible in the audit
        catalog.record_result(job, _result(job))
        assert catalog.evaluations(job) == 2

    def test_reuse_counter(self, tmp_path):
        catalog = Catalog(tmp_path / "c.sqlite")
        job = _jobs()[0]
        catalog.record_result(job, _result(job))
        catalog.lookup(job)
        catalog.lookup(job)
        row = catalog.show(point_key(job))
        assert row["reuses"] == 2 and row["evaluations"] == 1


class TestArtifacts:
    def test_record_compile_indexes_cache_entry(self, tmp_path):
        cache = CompileCache(tmp_path / "cache")
        job = _jobs()[0]
        cache.get_or_compile(
            job.source,
            job.options,
            lambda: compile_source(job.source, job.options),
        )
        catalog = Catalog(tmp_path / "c.sqlite")
        key = catalog.record_compile(job, cache, None)
        assert key is not None
        row = catalog.show(key)
        assert row["table"] == "artifacts" and row["exists"]
        assert row["program"] == job.program
        # second record of the same artifact bumps uses
        catalog.record_compile(job, cache, None)
        assert catalog.show(key)["uses"] == 2

    def test_record_compile_without_cache_is_noop(self, tmp_path):
        catalog = Catalog(tmp_path / "c.sqlite")
        assert catalog.record_compile(_jobs()[0], None, None) is None


class TestInspection:
    def test_ls_kinds_and_stats(self, tmp_path):
        catalog = Catalog(tmp_path / "c.sqlite")
        job = _jobs()[0]
        catalog.record_result(job, _result(job))
        assert [r["table"] for r in catalog.ls("results")] == ["results"]
        assert catalog.ls("artifacts") == []
        with pytest.raises(ValueError, match="unknown catalog kind"):
            catalog.ls("bogus")
        stats = catalog.stats_dict()
        assert stats["results"]["entries"] == 1
        assert stats["results"]["evaluations"] == 1

    def test_show_prefix_match_and_missing(self, tmp_path):
        catalog = Catalog(tmp_path / "c.sqlite")
        job = _jobs()[0]
        catalog.record_result(job, _result(job))
        key = point_key(job)
        row = catalog.show(key[:10])
        assert row["point_key"] == key
        assert row["record"]["total_time"] == 1.25  # expanded, not pickled
        with pytest.raises(KeyError, match="no catalog entry"):
            catalog.show("ffffffff")


class TestGc:
    def test_gc_drops_orphans_and_aged(self, tmp_path):
        import os
        import time

        cache = CompileCache(tmp_path / "cache")
        jobs = _jobs()
        for job in jobs:
            cache.get_or_compile(
                job.source,
                job.options,
                lambda job=job: compile_source(job.source, job.options),
            )
        catalog = Catalog(tmp_path / "c.sqlite")
        keys = [catalog.record_compile(job, cache, None) for job in jobs]
        catalog.record_result(jobs[0], _result(jobs[0]))

        # orphan one artifact's cache file
        os.unlink(catalog.show(keys[0])["path"])
        preview = catalog.gc(dry_run=True)
        assert preview == {
            "orphans": 1, "aged_artifacts": 0, "aged_results": 0,
        }
        assert len(catalog.ls("artifacts")) == 2  # dry run kept rows

        removed = catalog.gc()
        assert removed["orphans"] == 1
        assert len(catalog.ls("artifacts")) == 1

        # age out everything older than "now"
        time.sleep(0.02)
        removed = catalog.gc(max_age_days=1e-8)
        assert removed["aged_artifacts"] == 1
        assert removed["aged_results"] == 1
        assert catalog.ls() == []
