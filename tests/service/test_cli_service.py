"""The service CLI surface (serve / jobs / catalog) and the
normalized flag conventions."""

import json

import pytest

from repro.cli import main
from repro.programs import tomcatv_source


@pytest.fixture
def program(tmp_path):
    path = tmp_path / "tomcatv.hpf"
    path.write_text(tomcatv_source(n=10, niter=1, procs=2))
    return path


def _submit(program, tmp_path, *extra):
    service_dir = str(tmp_path / "svc")
    code = main([
        "jobs", "submit", str(program), "--procs", "2", "4",
        "--service-dir", service_dir, *extra,
    ])
    return code, service_dir


class TestJobsLifecycle:
    def test_submit_serve_status_watch(self, program, tmp_path, capsys):
        code, service_dir = _submit(program, tmp_path, "--name", "grid")
        assert code == 0
        assert "submitted job 1" in capsys.readouterr().out

        assert main(["serve", "--service-dir", service_dir, "--once"]) == 0
        assert "served 1 shard(s)" in capsys.readouterr().out

        assert main([
            "jobs", "status", "1", "--service-dir", service_dir, "--json",
        ]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["schema"] == "repro.result/2"
        assert record["kind"] == "job"
        assert record["state"] == "done" and record["done"] == 2

        assert main([
            "jobs", "watch", "1", "--service-dir", service_dir,
            "--timeout", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "submitted" in out and "done" in out

    def test_status_lists_all_jobs(self, program, tmp_path, capsys):
        _, service_dir = _submit(program, tmp_path)
        _submit(program, tmp_path)
        capsys.readouterr()
        assert main(["jobs", "status", "--service-dir", service_dir]) == 0
        out = capsys.readouterr().out
        assert out.count("queued") == 2

        assert main([
            "jobs", "status", "7", "--service-dir", service_dir,
        ]) == 1
        assert "no job 7" in capsys.readouterr().err

    def test_cancel(self, program, tmp_path, capsys):
        _, service_dir = _submit(program, tmp_path)
        assert main(["jobs", "cancel", "1", "--service-dir", service_dir]) == 0
        assert main(["jobs", "cancel", "1", "--service-dir", service_dir]) == 1
        capsys.readouterr()
        assert main([
            "jobs", "watch", "1", "--service-dir", service_dir,
            "--timeout", "5",
        ]) == 1  # terminal-but-not-done exits 1

    def test_submit_wait_runs_inline(self, program, tmp_path, capsys):
        code, _ = _submit(program, tmp_path, "--wait")
        assert code == 0
        out = capsys.readouterr().out
        assert "2 points" in out

    def test_submit_json_emits_job_record(self, program, tmp_path, capsys):
        code, _ = _submit(program, tmp_path, "--json")
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["kind"] == "job" and record["points"] == 2


class TestCatalogCli:
    def test_ls_show_gc(self, program, tmp_path, capsys):
        _, service_dir = _submit(program, tmp_path, "--wait")
        capsys.readouterr()

        assert main([
            "catalog", "ls", "--service-dir", service_dir, "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["results"]["entries"] == 2
        assert payload["stats"]["results"]["evaluations"] == 2
        point_key = next(
            row["point_key"]
            for row in payload["rows"]
            if row["table"] == "results"
        )

        assert main([
            "catalog", "show", point_key[:12],
            "--service-dir", service_dir, "--json",
        ]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["point_key"] == point_key
        assert record["record"]["schema"] == "repro.result/2"

        assert main([
            "catalog", "show", "ffffffff", "--service-dir", service_dir,
        ]) == 1
        capsys.readouterr()

        assert main([
            "catalog", "gc", "--dry-run", "--service-dir", service_dir,
        ]) == 0
        assert "would remove 0 orphan(s)" in capsys.readouterr().out


class TestFlagConventions:
    def test_measure_exec_canonical_and_aliases(self, program, capsys):
        for flags in (
            ["--measure", "estimate", "--exec", "batched"],
            ["--sweep-mode", "estimate", "--mode", "batched"],
        ):
            assert main([
                "sweep", str(program), "--procs", "2", *flags,
            ]) == 0
            assert "total" in capsys.readouterr().out

    def test_hidden_aliases_not_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--help"])
        help_text = capsys.readouterr().out
        assert "--measure" in help_text and "--exec" in help_text
        assert "--sweep-mode" not in help_text
        assert "--mode " not in help_text

    def test_json_out_writes_file(self, program, tmp_path, capsys):
        out = tmp_path / "results.json"
        assert main([
            "sweep", str(program), "--procs", "2",
            "--measure", "estimate", "--json", str(out),
        ]) == 0
        records = json.loads(out.read_text())
        assert records[0]["schema"] == "repro.result/2"
        assert records[0]["kind"] == "sweep-point"

    def test_run_json_record(self, program, tmp_path, capsys):
        out = tmp_path / "run.json"
        assert main([
            "run", str(program), "--procs", "2", "--json", str(out),
        ]) == 0
        record = json.loads(out.read_text())
        assert record["kind"] == "run" and record["ok"]
        assert "elapsed_s" in record and "canonical_stats" in record
