"""Crash recovery: a worker killed mid-job forfeits only its lease.
A restarted worker completes the job with canonical stats
byte-identical to an uninterrupted run, and the catalog shows each
grid point evaluated exactly once (commit-level: completed points are
never re-run; only uncommitted in-flight work repeats)."""

import json
import os
import subprocess
import sys

import repro
from repro.records import comparable
from repro.service import KILL_AFTER_ENV, SweepService
from repro.service.service import KILLED_EXIT_CODE
from repro.sweep.spec import SweepSpec

from pathlib import Path

_SRC_ROOT = Path(repro.__file__).resolve().parents[1]

_SERVE_SNIPPET = """
import sys
from repro.service import SweepService

service = SweepService(sys.argv[1], lease_ttl=30.0)
service.serve_forever(once=True)
"""


def _spec(procs=(2, 3, 4, 5)):
    from repro.programs import tomcatv_source

    return SweepSpec(
        programs={"tomcatv": lambda p: tomcatv_source(n=10, niter=1, procs=p)},
        procs=procs,
    )


def _serve_subprocess(root, kill_after=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC_ROOT)
    if kill_after is not None:
        env[KILL_AFTER_ENV] = str(kill_after)
    else:
        env.pop(KILL_AFTER_ENV, None)
    return subprocess.run(
        [sys.executable, "-c", _SERVE_SNIPPET, str(root)],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def _canon(results):
    return json.dumps(
        [comparable(r.as_dict()) for r in results], sort_keys=True
    )


class TestCrashRecovery:
    def test_killed_worker_job_completes_byte_identical(self, tmp_path):
        spec = _spec()
        n_points = len(spec.jobs())

        # the uninterrupted reference: same grid, separate service dir
        reference = SweepService(tmp_path / "ref")
        ref_handle = reference.submit(spec)
        reference.serve_forever(once=True)
        ref_results = ref_handle.result(timeout=60)
        reference.close()

        # submit, then kill the serving subprocess after 2 commits
        client = SweepService(tmp_path / "svc")
        handle = client.submit(spec, shards=n_points)
        killed = _serve_subprocess(tmp_path / "svc", kill_after=2)
        assert killed.returncode == KILLED_EXIT_CODE, killed.stderr
        partial = handle.poll()
        assert 0 < partial.done < n_points
        assert partial.state == "running"

        # a fresh worker (new pid) resumes and drains the job: the dead
        # owner's lease is reclaimed without waiting out its TTL
        finished = _serve_subprocess(tmp_path / "svc")
        assert finished.returncode == 0, finished.stderr
        results = handle.result(timeout=60)

        assert _canon(results) == _canon(ref_results)
        assert all(
            client.catalog.evaluations(job) == 1 for job in spec.jobs()
        ), "a grid point was evaluated more than once after the crash"
        kinds = [e.kind for e in handle.stream_events(timeout=5)]
        assert "reclaimed" in kinds or "claimed" in kinds
        assert kinds[-1] == "done"
        client.close()

    def test_kill_marker_fires_between_commits(self, tmp_path, monkeypatch):
        """In-process check of the injection point: the service exits
        only *after* a point commit, so no point is ever lost
        mid-flight."""
        spec = _spec(procs=(2, 3))
        service = SweepService(tmp_path / "svc")
        handle = service.submit(spec, shards=2)

        monkeypatch.setenv(KILL_AFTER_ENV, "1")
        exits = []
        monkeypatch.setattr(os, "_exit", lambda code: exits.append(code))
        service.run_next()
        assert exits == [KILLED_EXIT_CODE]
        assert handle.poll().done == 1
        service.close()
