"""Error-path tests: malformed programs must fail with the right
exception type and an actionable message, never a stack-trace surprise."""

import pytest

from repro.core import CompilerOptions, compile_source
from repro.errors import (
    DirectiveError,
    LexError,
    MappingError,
    ParseError,
    ReproError,
    SemanticError,
)
from repro.ir import parse_and_build


class TestFrontEndErrors:
    def test_lex_error_has_location(self):
        with pytest.raises(LexError) as err:
            parse_and_build("PROGRAM t\n  A = $\nEND\n")
        assert "line 2" in str(err.value)

    def test_parse_error_has_location(self):
        with pytest.raises(ParseError) as err:
            parse_and_build("PROGRAM t\n  DO i = 1\nEND\n")
        assert "line" in str(err.value)

    def test_missing_end(self):
        with pytest.raises(ParseError):
            parse_and_build("PROGRAM t\n  x = 1.0\n")

    def test_bad_directive(self):
        with pytest.raises(DirectiveError):
            parse_and_build("PROGRAM t\n  REAL A(4)\n!HPF$ FROBNICATE A\nEND\n")

    def test_goto_nowhere(self):
        with pytest.raises(SemanticError) as err:
            parse_and_build("PROGRAM t\n  GO TO 77\nEND\n")
        assert "77" in str(err.value)

    def test_undeclared_array(self):
        with pytest.raises(SemanticError):
            parse_and_build("PROGRAM t\n  x = NOSUCHARRAY(1, 2)\nEND\n")

    def test_symbolic_array_bound(self):
        with pytest.raises(SemanticError):
            parse_and_build("PROGRAM t\n  REAL A(m)\nEND\n")


class TestMappingErrors:
    def test_grid_rank_mismatch(self):
        src = (
            "PROGRAM t\n  REAL A(8)\n"
            "!HPF$ PROCESSORS P(2, 2)\n"
            "!HPF$ DISTRIBUTE (BLOCK) :: A\nEND\n"
        )
        with pytest.raises(MappingError):
            compile_source(src, CompilerOptions())

    def test_cyclic_align_chain(self):
        src = (
            "PROGRAM t\n  REAL A(8), B(8)\n"
            "!HPF$ ALIGN A(i) WITH B(i)\n"
            "!HPF$ ALIGN B(i) WITH A(i)\nEND\n"
        )
        with pytest.raises(MappingError) as err:
            compile_source(src, CompilerOptions(num_procs=2))
        assert "ALIGN chain" in str(err.value)

    def test_align_to_scalar_rejected(self):
        src = (
            "PROGRAM t\n  REAL A(8)\n  REAL x\n"
            "!HPF$ ALIGN A(i) WITH x(i)\nEND\n"
        )
        with pytest.raises((DirectiveError, SemanticError)):
            compile_source(src, CompilerOptions())


class TestOptionsValidation:
    def test_unknown_strategy(self):
        with pytest.raises(ValueError) as err:
            CompilerOptions(strategy="fastest")
        assert "fastest" in str(err.value)

    def test_all_errors_share_base(self):
        for exc in (LexError, ParseError, DirectiveError, SemanticError, MappingError):
            assert issubclass(exc, ReproError)


class TestRuntimeErrors:
    def test_out_of_bounds_subscript(self):
        from repro.codegen import run_sequential
        from repro.errors import InterpreterError

        proc = parse_and_build("PROGRAM t\n  REAL A(4)\n  A(5) = 1.0\nEND\n")
        with pytest.raises(InterpreterError) as err:
            run_sequential(proc, {})
        assert "out of bounds" in str(err.value)

    def test_uninitialized_scalar(self):
        from repro.codegen import run_sequential
        from repro.errors import InterpreterError

        proc = parse_and_build("PROGRAM t\n  REAL A(4)\n  A(1) = qq\nEND\n")
        with pytest.raises(InterpreterError):
            run_sequential(proc, {})

    def test_simulator_shape_mismatch(self):
        import numpy as np

        from repro.errors import SimulationError
        from repro.machine import SPMDSimulator

        compiled = compile_source(
            "PROGRAM t\n  REAL A(4)\n!HPF$ DISTRIBUTE (BLOCK) :: A\n"
            "  A(1) = 1.0\nEND\n",
            CompilerOptions(num_procs=2),
        )
        sim = SPMDSimulator(compiled)
        with pytest.raises(SimulationError):
            sim.set_array("A", np.zeros(7))
