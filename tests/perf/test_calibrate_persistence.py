"""Calibration persistence: ``repro calibrate --save`` round-trips
through the cache root and Session auto-applies the fit.

The saved constants enter ``CompilerOptions.nest_cost_constants`` —
and therefore the options signature, the compile-cache key, and the
batched sweep's grouping — so the normalization and load-validation
rules are correctness-critical, not cosmetics."""

import json

import pytest

from repro.api import Session
from repro.core.diskcache import options_signature
from repro.core.driver import NEST_COST_CONSTANTS, CompilerOptions
from repro.perf.calibrate import (
    CALIBRATION_FILENAME,
    CALIBRATION_SCHEMA,
    CalibrationResult,
    calibration_path,
    load_calibration,
    save_calibration,
)

CONSTANTS = {
    "C_T2_STMT": 1e-6,
    "C_PREP": 2e-6,
    "C_VEC": 3e-7,
    "C_ELEM": 4e-9,
}


def _result(constants=CONSTANTS):
    return CalibrationResult(
        constants=dict(constants),
        defaults={name: 1.0 for name in constants},
        r2={"tier2": 1.0, "tier3": 1.0},
        repeats=1,
        samples=[],
    )


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        path = save_calibration(_result(), tmp_path)
        assert path == tmp_path / CALIBRATION_FILENAME
        assert load_calibration(tmp_path) == CONSTANTS

    def test_calibration_path_uses_explicit_root(self, tmp_path):
        assert calibration_path(tmp_path) == tmp_path / CALIBRATION_FILENAME

    def test_missing_file_loads_none(self, tmp_path):
        assert load_calibration(tmp_path) is None

    def test_corrupt_json_loads_none(self, tmp_path):
        calibration_path(tmp_path).parent.mkdir(parents=True, exist_ok=True)
        calibration_path(tmp_path).write_text("{not json")
        assert load_calibration(tmp_path) is None

    def test_unknown_schema_loads_none(self, tmp_path):
        save_calibration(_result(), tmp_path)
        payload = json.loads(calibration_path(tmp_path).read_text())
        payload["schema"] = CALIBRATION_SCHEMA + 1
        calibration_path(tmp_path).write_text(json.dumps(payload))
        assert load_calibration(tmp_path) is None

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda c: c.pop("C_VEC"),  # missing key
            lambda c: c.update(EXTRA=1.0),  # extra key
            lambda c: c.update(C_VEC=0.0),  # non-positive value
            lambda c: c.update(C_ELEM=-1e-9),
        ],
    )
    def test_invalid_constants_load_none(self, tmp_path, mutate):
        save_calibration(_result(), tmp_path)
        payload = json.loads(calibration_path(tmp_path).read_text())
        mutate(payload["constants"])
        calibration_path(tmp_path).write_text(json.dumps(payload))
        assert load_calibration(tmp_path) is None

    def test_save_overwrites_previous_fit(self, tmp_path):
        save_calibration(_result(), tmp_path)
        newer = dict(CONSTANTS, C_VEC=9e-7)
        save_calibration(_result(newer), tmp_path)
        assert load_calibration(tmp_path) == newer


NORMALIZED = tuple(sorted((k, float(v)) for k, v in CONSTANTS.items()))


class TestSessionAutoApply:
    def test_saved_fit_applies_by_default(self, tmp_path):
        save_calibration(_result(), tmp_path)
        session = Session(use_calibration=tmp_path)
        assert session.options.nest_cost_constants == NORMALIZED

    def test_opt_out_keeps_shipped_defaults(self, tmp_path):
        save_calibration(_result(), tmp_path)
        session = Session(use_calibration=False)
        assert session.options.nest_cost_constants is None

    def test_explicit_constants_beat_the_saved_fit(self, tmp_path):
        save_calibration(_result(), tmp_path)
        mine = {"C_T2_STMT": 5e-5}
        session = Session(
            use_calibration=tmp_path, nest_cost_constants=mine
        )
        assert session.options.nest_cost_constants == (("C_T2_STMT", 5e-5),)

    def test_no_saved_fit_is_silent(self, tmp_path):
        session = Session(use_calibration=tmp_path)
        assert session.options.nest_cost_constants is None


class TestOptionsNormalization:
    def test_mapping_and_pairs_normalize_identically(self):
        from_map = CompilerOptions(nest_cost_constants=CONSTANTS)
        from_pairs = CompilerOptions(
            nest_cost_constants=tuple(CONSTANTS.items())
        )
        assert from_map.nest_cost_constants == NORMALIZED
        assert from_pairs.nest_cost_constants == NORMALIZED

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown nest-cost"):
            CompilerOptions(nest_cost_constants={"C_BOGUS": 1e-6})

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            CompilerOptions(nest_cost_constants={"C_VEC": 0.0})

    def test_names_mirror_the_estimator_attributes(self):
        from repro.perf.estimator import PerfEstimator

        for name in NEST_COST_CONSTANTS:
            assert isinstance(getattr(PerfEstimator, name), float)

    def test_constants_enter_the_options_signature(self):
        plain = CompilerOptions()
        fitted = CompilerOptions(nest_cost_constants=CONSTANTS)
        assert options_signature(plain) != options_signature(fitted)
        again = CompilerOptions(
            nest_cost_constants=tuple(reversed(tuple(CONSTANTS.items())))
        )
        # ordering of the input never leaks into the signature
        assert options_signature(fitted) == options_signature(again)
