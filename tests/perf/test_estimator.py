"""Analytic performance estimator tests."""

import pytest

from repro.core import CompilerOptions, compile_source
from repro.perf import PerfEstimator


def compile_body(body, n=64, procs=4, decls="", **opts):
    src = (
        f"PROGRAM T\n  PARAMETER (n = {n})\n"
        "  REAL A(n), B(n), E(n), W(n, n)\n" + decls +
        "!HPF$ ALIGN B(i) WITH A(i)\n"
        "!HPF$ ALIGN E(i) WITH A(*)\n"
        "!HPF$ ALIGN W(i, j) WITH A(j)\n"
        "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
        + body + "\nEND PROGRAM\n"
    )
    return compile_source(src, CompilerOptions(num_procs=procs, **opts))


class TestTripCounts:
    def test_constant_bounds(self):
        compiled = compile_body("  DO i = 1, n\n    A(i) = 0.0\n  END DO")
        est = PerfEstimator(compiled)
        assert est.trip_count(next(compiled.proc.loops())) == 64

    def test_step(self):
        compiled = compile_body("  DO i = 1, n, 2\n    A(i) = 0.0\n  END DO")
        est = PerfEstimator(compiled)
        assert est.trip_count(next(compiled.proc.loops())) == 32

    def test_triangular_average(self):
        compiled = compile_body(
            "  DO i = 1, n\n    DO j = i, n\n      W(i, j) = 0.0\n    END DO\n"
            "  END DO"
        )
        est = PerfEstimator(compiled)
        loops = list(compiled.proc.loops())
        est.trip_count(loops[0])
        inner_trip = est.trip_count(loops[1])
        # average over i midpoint: about n/2
        assert 0.4 * 64 <= inner_trip <= 0.6 * 64


class TestComputeScaling:
    def test_parallel_speedup(self):
        body = "  DO i = 1, n\n    A(i) = B(i) * 2.0 + 1.0\n  END DO"
        t4 = PerfEstimator(compile_body(body, procs=4)).estimate().compute_time
        t8 = PerfEstimator(compile_body(body, procs=8)).estimate().compute_time
        assert t8 < t4

    def test_replicated_execution_no_speedup(self):
        body = "  DO i = 1, n\n    E(i) = B(i) * 2.0\n  END DO"
        t4 = PerfEstimator(compile_body(body, procs=4)).estimate().compute_time
        t8 = PerfEstimator(compile_body(body, procs=8)).estimate().compute_time
        assert t8 == pytest.approx(t4)

    def test_serialized_dimension(self):
        """A(1) writes land on one processor: no parallelism."""
        body = "  DO i = 1, n\n    A(1) = B(i)\n  END DO"
        t4 = PerfEstimator(compile_body(body, procs=4)).estimate().compute_time
        t8 = PerfEstimator(compile_body(body, procs=8)).estimate().compute_time
        assert t8 == pytest.approx(t4)

    def test_serial_estimate_equals_p1(self):
        body = "  DO i = 1, n\n    A(i) = B(i) * 2.0\n  END DO"
        est = PerfEstimator(compile_body(body, procs=1))
        assert est.estimate_serial() == pytest.approx(est.estimate().compute_time)


class TestCommScaling:
    def test_no_comm_when_local(self):
        body = "  DO i = 1, n\n    A(i) = B(i)\n  END DO"
        assert PerfEstimator(compile_body(body)).estimate().comm_time == 0.0

    def test_vectorized_cheaper_than_inner(self):
        body = "  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO"
        vec = PerfEstimator(compile_body(body)).estimate().comm_time
        raw = PerfEstimator(
            compile_body(body, message_vectorization=False)
        ).estimate().comm_time
        assert raw > vec

    def test_inner_loop_comm_scales_with_iterations(self):
        body = (
            "  DO it = 1, 4\n    DO i = 2, n - 1\n"
            "      A(i) = A(i - 1) + A(i + 1)\n    END DO\n  END DO"
        )
        small = PerfEstimator(compile_body(body, n=32)).estimate().comm_time
        large = PerfEstimator(compile_body(body, n=64)).estimate().comm_time
        assert large > 1.5 * small

    def test_shift_boundary_volume(self):
        """A vectorized shift moves only boundary elements, so its cost
        must be far below a broadcast of the same array."""
        shift = compile_body("  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO")
        bcast = compile_body("  DO i = 1, n\n    E(i) = B(i)\n  END DO")
        t_shift = PerfEstimator(shift).estimate().comm_time
        t_bcast = PerfEstimator(bcast).estimate().comm_time
        assert t_bcast > t_shift

    def test_single_proc_no_comm(self):
        body = "  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO"
        est = PerfEstimator(compile_body(body, procs=1)).estimate()
        assert est.comm_time == 0.0


class TestBreakdown:
    def test_stmt_costs_enumerated(self):
        body = "  DO i = 1, n\n    A(i) = B(i) + 1.0\n  END DO"
        est = PerfEstimator(compile_body(body)).estimate()
        assert len(est.stmt_costs) == 1
        cost = est.stmt_costs[0]
        assert cost.instances == 64
        assert cost.parallel_factor == 4.0

    def test_total_is_sum(self):
        body = "  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO"
        est = PerfEstimator(compile_body(body)).estimate()
        assert est.total_time == pytest.approx(est.compute_time + est.comm_time)

    def test_summary_text(self):
        body = "  DO i = 1, n\n    A(i) = B(i)\n  END DO"
        text = PerfEstimator(compile_body(body)).estimate().summary()
        assert "compute" in text and "comm" in text


class TestSpeedupHelper:
    def test_speedup_computation(self):
        body = "  DO i = 1, n\n    A(i) = B(i) * 2.0\n  END DO"
        est = PerfEstimator(compile_body(body, procs=4))
        serial = est.estimate_serial()
        result = est.estimate()
        assert result.speedup(serial) == pytest.approx(serial / result.total_time)

    def test_selected_tomcatv_speedup_exceeds_baselines(self):
        from repro.programs import tomcatv_source

        src = tomcatv_source(n=65, niter=2, procs=8)
        selected = compile_source(src, CompilerOptions(strategy="selected"))
        replication = compile_source(src, CompilerOptions(strategy="replication"))
        serial = PerfEstimator(selected).estimate_serial()
        s_sel = PerfEstimator(selected).estimate().speedup(serial)
        s_rep = PerfEstimator(replication).estimate().speedup(serial)
        assert s_sel > 1.0 > s_rep


class TestPipelinedShiftPricing:
    def test_pipelined_cheaper_for_inner_loop_shifts(self):
        from repro.programs import appsp_source

        src = appsp_source(nx=16, ny=16, nz=16, niter=2, procs=4, distribution="2d")
        compiled = compile_source(src, CompilerOptions())
        default = PerfEstimator(compiled).estimate().comm_time
        pipelined = PerfEstimator(compiled, pipelined_shifts=True).estimate().comm_time
        assert pipelined < default

    def test_pipelined_closes_gap_to_simulator(self):
        import numpy as np

        from repro.machine import simulate
        from repro.programs import appsp_inputs, appsp_source

        src = appsp_source(nx=8, ny=8, nz=8, niter=2, procs=4, distribution="2d")
        compiled = compile_source(src, CompilerOptions())
        est = PerfEstimator(compiled, pipelined_shifts=True).estimate().total_time
        sim = simulate(compiled, appsp_inputs(8, 8, 8)).elapsed
        assert 0.3 < est / sim < 3.0

    def test_vectorized_shifts_unaffected(self):
        body = "  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO"
        compiled = compile_body(body)
        default = PerfEstimator(compiled).estimate().comm_time
        pipelined = PerfEstimator(compiled, pipelined_shifts=True).estimate().comm_time
        assert pipelined == pytest.approx(default)
