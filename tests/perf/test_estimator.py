"""Analytic performance estimator tests."""

import pytest

from repro.core import CompilerOptions, compile_source
from repro.perf import PerfEstimator


def compile_body(body, n=64, procs=4, decls="", **opts):
    src = (
        f"PROGRAM T\n  PARAMETER (n = {n})\n"
        "  REAL A(n), B(n), E(n), W(n, n)\n" + decls +
        "!HPF$ ALIGN B(i) WITH A(i)\n"
        "!HPF$ ALIGN E(i) WITH A(*)\n"
        "!HPF$ ALIGN W(i, j) WITH A(j)\n"
        "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
        + body + "\nEND PROGRAM\n"
    )
    return compile_source(src, CompilerOptions(num_procs=procs, **opts))


class TestTripCounts:
    def test_constant_bounds(self):
        compiled = compile_body("  DO i = 1, n\n    A(i) = 0.0\n  END DO")
        est = PerfEstimator(compiled)
        assert est.trip_count(next(compiled.proc.loops())) == 64

    def test_step(self):
        compiled = compile_body("  DO i = 1, n, 2\n    A(i) = 0.0\n  END DO")
        est = PerfEstimator(compiled)
        assert est.trip_count(next(compiled.proc.loops())) == 32

    def test_triangular_average(self):
        compiled = compile_body(
            "  DO i = 1, n\n    DO j = i, n\n      W(i, j) = 0.0\n    END DO\n"
            "  END DO"
        )
        est = PerfEstimator(compiled)
        loops = list(compiled.proc.loops())
        est.trip_count(loops[0])
        inner_trip = est.trip_count(loops[1])
        # average over i midpoint: about n/2
        assert 0.4 * 64 <= inner_trip <= 0.6 * 64


class TestComputeScaling:
    def test_parallel_speedup(self):
        body = "  DO i = 1, n\n    A(i) = B(i) * 2.0 + 1.0\n  END DO"
        t4 = PerfEstimator(compile_body(body, procs=4)).estimate().compute_time
        t8 = PerfEstimator(compile_body(body, procs=8)).estimate().compute_time
        assert t8 < t4

    def test_replicated_execution_no_speedup(self):
        body = "  DO i = 1, n\n    E(i) = B(i) * 2.0\n  END DO"
        t4 = PerfEstimator(compile_body(body, procs=4)).estimate().compute_time
        t8 = PerfEstimator(compile_body(body, procs=8)).estimate().compute_time
        assert t8 == pytest.approx(t4)

    def test_serialized_dimension(self):
        """A(1) writes land on one processor: no parallelism."""
        body = "  DO i = 1, n\n    A(1) = B(i)\n  END DO"
        t4 = PerfEstimator(compile_body(body, procs=4)).estimate().compute_time
        t8 = PerfEstimator(compile_body(body, procs=8)).estimate().compute_time
        assert t8 == pytest.approx(t4)

    def test_serial_estimate_equals_p1(self):
        body = "  DO i = 1, n\n    A(i) = B(i) * 2.0\n  END DO"
        est = PerfEstimator(compile_body(body, procs=1))
        assert est.estimate_serial() == pytest.approx(est.estimate().compute_time)


class TestCommScaling:
    def test_no_comm_when_local(self):
        body = "  DO i = 1, n\n    A(i) = B(i)\n  END DO"
        assert PerfEstimator(compile_body(body)).estimate().comm_time == 0.0

    def test_vectorized_cheaper_than_inner(self):
        body = "  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO"
        vec = PerfEstimator(compile_body(body)).estimate().comm_time
        raw = PerfEstimator(
            compile_body(body, message_vectorization=False)
        ).estimate().comm_time
        assert raw > vec

    def test_inner_loop_comm_scales_with_iterations(self):
        body = (
            "  DO it = 1, 4\n    DO i = 2, n - 1\n"
            "      A(i) = A(i - 1) + A(i + 1)\n    END DO\n  END DO"
        )
        small = PerfEstimator(compile_body(body, n=32)).estimate().comm_time
        large = PerfEstimator(compile_body(body, n=64)).estimate().comm_time
        assert large > 1.5 * small

    def test_shift_boundary_volume(self):
        """A vectorized shift moves only boundary elements, so its cost
        must be far below a broadcast of the same array."""
        shift = compile_body("  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO")
        bcast = compile_body("  DO i = 1, n\n    E(i) = B(i)\n  END DO")
        t_shift = PerfEstimator(shift).estimate().comm_time
        t_bcast = PerfEstimator(bcast).estimate().comm_time
        assert t_bcast > t_shift

    def test_single_proc_no_comm(self):
        body = "  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO"
        est = PerfEstimator(compile_body(body, procs=1)).estimate()
        assert est.comm_time == 0.0


class TestBreakdown:
    def test_stmt_costs_enumerated(self):
        body = "  DO i = 1, n\n    A(i) = B(i) + 1.0\n  END DO"
        est = PerfEstimator(compile_body(body)).estimate()
        assert len(est.stmt_costs) == 1
        cost = est.stmt_costs[0]
        assert cost.instances == 64
        assert cost.parallel_factor == 4.0

    def test_total_is_sum(self):
        body = "  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO"
        est = PerfEstimator(compile_body(body)).estimate()
        assert est.total_time == pytest.approx(est.compute_time + est.comm_time)

    def test_summary_text(self):
        body = "  DO i = 1, n\n    A(i) = B(i)\n  END DO"
        text = PerfEstimator(compile_body(body)).estimate().summary()
        assert "compute" in text and "comm" in text


class TestSpeedupHelper:
    def test_speedup_computation(self):
        body = "  DO i = 1, n\n    A(i) = B(i) * 2.0\n  END DO"
        est = PerfEstimator(compile_body(body, procs=4))
        serial = est.estimate_serial()
        result = est.estimate()
        assert result.speedup(serial) == pytest.approx(serial / result.total_time)

    def test_selected_tomcatv_speedup_exceeds_baselines(self):
        from repro.programs import tomcatv_source

        src = tomcatv_source(n=65, niter=2, procs=8)
        selected = compile_source(src, CompilerOptions(strategy="selected"))
        replication = compile_source(src, CompilerOptions(strategy="replication"))
        serial = PerfEstimator(selected).estimate_serial()
        s_sel = PerfEstimator(selected).estimate().speedup(serial)
        s_rep = PerfEstimator(replication).estimate().speedup(serial)
        assert s_sel > 1.0 > s_rep


class TestPipelinedShiftPricing:
    def test_pipelined_cheaper_for_inner_loop_shifts(self):
        from repro.programs import appsp_source

        src = appsp_source(nx=16, ny=16, nz=16, niter=2, procs=4, distribution="2d")
        compiled = compile_source(src, CompilerOptions())
        default = PerfEstimator(compiled).estimate().comm_time
        pipelined = PerfEstimator(compiled, pipelined_shifts=True).estimate().comm_time
        assert pipelined < default

    def test_pipelined_closes_gap_to_simulator(self):
        import numpy as np

        from repro.machine import simulate
        from repro.programs import appsp_inputs, appsp_source

        src = appsp_source(nx=8, ny=8, nz=8, niter=2, procs=4, distribution="2d")
        compiled = compile_source(src, CompilerOptions())
        est = PerfEstimator(compiled, pipelined_shifts=True).estimate().total_time
        sim = simulate(compiled, appsp_inputs(8, 8, 8)).elapsed
        assert 0.3 < est / sim < 3.0

    def test_vectorized_shifts_unaffected(self):
        body = "  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO"
        compiled = compile_body(body)
        default = PerfEstimator(compiled).estimate().comm_time
        pipelined = PerfEstimator(compiled, pipelined_shifts=True).estimate().comm_time
        assert pipelined == pytest.approx(default)


class TestTriangularExactness:
    """Loop-variable-dependent bounds price with closed-form
    n(n±1)/2 sums, validated against exact interpreter instance
    counts (the walker counts one ``interp_instances`` per executed
    assignment / condition)."""

    def _walker_instances(self, compiled):
        from repro.machine import simulate

        return simulate(compiled, fast_path=False).interp_instances

    def _estimated_instances(self, compiled):
        from repro.ir.stmt import AssignStmt, IfStmt

        est = PerfEstimator(compiled)
        return sum(
            est._instances(s)
            for s in compiled.proc.all_stmts()
            if isinstance(s, (AssignStmt, IfStmt))
        )

    def test_upper_triangular_mean_is_exact(self):
        compiled = compile_body(
            "  DO i = 1, n\n    DO j = i, n\n      W(i, j) = 0.0\n"
            "    END DO\n  END DO"
        )
        est = PerfEstimator(compiled)
        loops = list(compiled.proc.loops())
        est.trip_count(loops[0])
        # trips are n, n-1, ..., 1: mean exactly (n+1)/2, not floor(...)
        assert est.trip_count(loops[1]) == (64 + 1) / 2

    def test_lower_triangular_matches_interpreter(self):
        compiled = compile_body(
            "  DO i = 1, n\n    DO j = 1, i\n      W(i, j) = 0.0\n"
            "    END DO\n  END DO",
            n=11,
            procs=2,
        )
        # sum_{i=1}^{n} i = n(n+1)/2
        assert self._estimated_instances(compiled) == 11 * 12 / 2
        assert self._estimated_instances(compiled) == (
            self._walker_instances(compiled)
        )

    def test_offset_triangular_matches_interpreter(self):
        compiled = compile_body(
            "  DO i = 1, n - 1\n    DO j = i + 1, n\n"
            "      W(i, j) = 0.0\n    END DO\n  END DO",
            n=12,
            procs=2,
        )
        # sum_{i=1}^{n-1} (n-i) = n(n-1)/2
        assert self._estimated_instances(compiled) == 12 * 11 / 2
        assert self._estimated_instances(compiled) == (
            self._walker_instances(compiled)
        )

    def test_clamped_bounds_matches_interpreter(self):
        # columns past i = 5 have no iterations at all: the clamp at
        # zero must be per-column, not applied to the average
        compiled = compile_body(
            "  DO i = 1, n\n    DO j = i, 5\n      W(i, j) = 0.0\n"
            "    END DO\n  END DO",
            n=9,
            procs=2,
        )
        assert self._estimated_instances(compiled) == 5 * 6 / 2
        assert self._estimated_instances(compiled) == (
            self._walker_instances(compiled)
        )

    def test_correlated_triangular_matches_interpreter(self):
        # DGEFA's update shape: two inner loops both sweeping n-k
        # elements — a product of independent means undercounts;
        # the correlated closed form gives sum (n-k)^2 exactly
        src = (
            "PROGRAM T\n  PARAMETER (n = 10)\n  REAL A(n,n), B(n,n)\n"
            "!HPF$ ALIGN (i,j) WITH A(i,j) :: B\n"
            "!HPF$ DISTRIBUTE (*, BLOCK) :: A\n"
            "  DO k = 1, n - 1\n    DO j = k + 1, n\n"
            "      DO i = k + 1, n\n        A(i,j) = A(i,j) + B(i,j)\n"
            "      END DO\n    END DO\n  END DO\nEND PROGRAM\n"
        )
        compiled = compile_source(src, CompilerOptions(num_procs=2))
        exact = sum((10 - k) ** 2 for k in range(1, 10))
        assert self._estimated_instances(compiled) == exact
        assert self._walker_instances(compiled) == exact

    def test_downward_triangular_matches_interpreter(self):
        compiled = compile_body(
            "  DO i = 1, n\n    DO j = i, 1, -1\n      W(i, j) = 0.0\n"
            "    END DO\n  END DO",
            n=8,
            procs=2,
        )
        assert self._estimated_instances(compiled) == 8 * 9 / 2
        assert self._estimated_instances(compiled) == (
            self._walker_instances(compiled)
        )


class TestNestCost:
    def test_slab_wins_on_large_rectangular_nest(self):
        compiled = compile_body(
            "  DO j = 1, n\n    DO i = 1, n\n      W(i, j) = W(i, j) + 1.0\n"
            "    END DO\n  END DO",
            n=64,
        )
        est = PerfEstimator(compiled)
        loops = list(compiled.proc.loops())
        cost = est.nest_cost(loops[1])
        assert cost.instances == 64 * 64
        assert cost.entries == 64
        assert cost.stmts == 1
        assert cost.slab_wins

    def test_tiny_nest_stays_on_tier2(self):
        compiled = compile_body(
            "  DO j = 1, n\n    DO i = 1, 2\n      W(i, j) = W(i, j) + 1.0\n"
            "    END DO\n  END DO",
            n=64,
        )
        est = PerfEstimator(compiled)
        loops = list(compiled.proc.loops())
        cost = est.nest_cost(loops[1])
        # two lanes per prepare cannot amortize the takeover overhead
        assert not cost.slab_wins

    def test_outer_takeover_beats_per_iteration_inner(self):
        src = (
            "PROGRAM T\n  PARAMETER (n = 24)\n  REAL A(n,n), B(n,n)\n"
            "!HPF$ ALIGN (i,j) WITH A(i,j) :: B\n"
            "!HPF$ DISTRIBUTE (*, BLOCK) :: A\n"
            "  DO j = 2, n - 1\n    DO i = j, n - 1\n"
            "      A(i,j) = B(i,j) + 1.0\n    END DO\n  END DO\n"
            "END PROGRAM\n"
        )
        compiled = compile_source(src, CompilerOptions(num_procs=2))
        est = PerfEstimator(compiled)
        outer, inner = list(compiled.proc.loops())[:2]
        # one prepare for the whole nest vs one per outer iteration
        assert est.nest_cost(outer).tier3_time < (
            est.nest_cost(inner).tier3_time
        )
