"""The repro.api facade: Session round-trips match the CLI paths they
replaced, options consolidation validates, and the deprecated entry
points warn."""

import json
import re

import pytest

import repro
from repro import RunResult, Session, SweepSpec
from repro.cli import main
from repro.core.driver import CompilerOptions, compile_source
from repro.programs import dgefa_source, tomcatv_source

TOMCATV = tomcatv_source(n=8, niter=1, procs=2)
DGEFA = dgefa_source(n=8, procs=2)


def canonical(report: str) -> str:
    """Statement ids come from a process-global counter; renumber them
    in order of first appearance before comparing reports."""
    mapping = {}

    def renumber(match):
        return mapping.setdefault(match.group(0), f"S{len(mapping) + 1}")

    return re.sub(r"\bS\d+\b", renumber, report)


class TestFacadeExports:
    def test_top_level_surface(self):
        for name in (
            "Session", "RunResult", "SweepSpec", "SweepJob", "SweepResult",
            "run_sweep", "CompileCache",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)


class TestSessionCompile:
    def test_matches_compile_source(self):
        session = Session(num_procs=2)
        direct = compile_source(TOMCATV, CompilerOptions(num_procs=2))
        via_session = session.compile(TOMCATV)
        assert canonical(via_session.report()) == canonical(direct.report())

    def test_overrides_per_call(self):
        session = Session(num_procs=2)
        compiled = session.compile(TOMCATV, strategy="producer")
        assert compiled.options.strategy == "producer"
        assert compiled.options.num_procs == 2
        # the session's own options are untouched
        assert session.options.strategy == "selected"

    def test_constructor_override_validation(self):
        with pytest.raises(ValueError, match="not_a_field"):
            Session(not_a_field=True)

    def test_shared_manager_reuses_frontend(self):
        session = Session()
        session.compile(TOMCATV)
        session.compile(TOMCATV, strategy="producer")
        assert session.manager.metrics.passes["ssa"].cache_hits >= 1


class TestSessionRunEquivalence:
    """Session.run must report exactly what ``repro run`` reports."""

    @pytest.mark.parametrize(
        "source,procs", [(TOMCATV, 2), (DGEFA, 2)], ids=["tomcatv", "dgefa"]
    )
    def test_run_matches_cli(self, source, procs, tmp_path, capsys):
        program = tmp_path / "prog.hpf"
        program.write_text(source)
        stats_path = tmp_path / "stats.json"
        code = main([
            "run", str(program), "--procs", str(procs), "--seed", "0",
            "--stats-json", str(stats_path),
        ])
        cli_out = capsys.readouterr().out
        cli_stats = json.loads(stats_path.read_text())

        session = Session(num_procs=procs)
        result = session.run(source, seed=0)

        assert (code == 0) == result.ok
        assert result.canonical_stats() == cli_stats
        assert (
            f"virtual time {result.elapsed * 1e3:.3f} ms on "
            f"{result.compiled.grid.size} processors; "
            f"{result.messages} messages, {result.fetches} fetches "
            f"({result.unexpected_fetches} unexpected)"
        ) in cli_out
        for name, match in result.matches.items():
            assert f"  {name:8s} matches sequential: {match}" in cli_out

    def test_run_validates_against_sequential(self):
        result = Session(num_procs=2).run(TOMCATV)
        assert result.ok and result.all_match
        assert set(result.matches)  # every array checked

    def test_run_without_validation(self):
        result = Session(num_procs=2).run(TOMCATV, validate=False)
        assert result.matches == {} and result.sequential is None
        assert result.elapsed > 0

    def test_run_seed_changes_inputs_not_stats_keys(self):
        a = Session(num_procs=2).run(TOMCATV, seed=0)
        b = Session(num_procs=2).run(TOMCATV, seed=1)
        assert set(a.canonical_stats()) == set(b.canonical_stats())
        assert a.inputs["X"].sum() != b.inputs["X"].sum()


class TestSessionEstimateEquivalence:
    def test_estimate_matches_cli_sweep(self, tmp_path, capsys):
        program = tmp_path / "prog.hpf"
        program.write_text(TOMCATV)
        code = main(["estimate", str(program), "--procs", "2", "4"])
        assert code == 0
        cli_out = capsys.readouterr().out

        session = Session()
        for procs in (2, 4):
            estimate = session.estimate(TOMCATV, num_procs=procs)
            line = (
                f"{procs:>6} {estimate.total_time:>11.4f}s "
                f"{estimate.compute_time:>11.4f}s {estimate.comm_time:>11.4f}s"
            )
            assert line in cli_out

    def test_estimate_accepts_compiled_program(self):
        session = Session(num_procs=2)
        compiled = session.compile(TOMCATV)
        assert session.estimate(compiled).total_time == pytest.approx(
            session.estimate(TOMCATV).total_time
        )


class TestSessionSweep:
    def test_sweep_uses_session_cache(self, tmp_path):
        session = Session(cache=tmp_path)
        spec = SweepSpec(programs={"tomcatv": TOMCATV}, procs=(2,))
        cold = session.sweep(spec, workers=0)
        warm = session.sweep(spec, workers=0)
        assert not cold[0].cache_hit and warm[0].cache_hit
        assert warm[0].total_time == cold[0].total_time

    def test_sweep_results_match_estimate(self):
        session = Session()
        (result,) = session.sweep(
            SweepSpec(programs={"tomcatv": TOMCATV}, procs=(2,)), workers=0
        )
        assert result.total_time == pytest.approx(
            session.estimate(TOMCATV, num_procs=2).total_time
        )


class TestDiskCacheOnCli:
    def test_cache_dir_flag_populates_and_hits(self, tmp_path, capsys):
        program = tmp_path / "prog.hpf"
        program.write_text(TOMCATV)
        cache_dir = tmp_path / "cache"
        for _ in range(2):
            assert main([
                "compile", str(program), "--procs", "2",
                "--cache-dir", str(cache_dir),
            ]) == 0
        out1, out2 = capsys.readouterr().out.split("grid:")[1:]
        assert out1.splitlines()[0] == out2.splitlines()[0]
        assert len(list(cache_dir.glob("??/*.pkl"))) == 1

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        program = tmp_path / "prog.hpf"
        program.write_text(TOMCATV)
        cache_dir = tmp_path / "cache"
        main(["compile", str(program), "--cache-dir", str(cache_dir)])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1 and stats["root"] == str(cache_dir)
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "removed 1 cache entry" in capsys.readouterr().out
        assert len(list(cache_dir.glob("??/*.pkl"))) == 0

    def test_run_with_disk_cache_identical_stats(self, tmp_path, capsys):
        program = tmp_path / "prog.hpf"
        program.write_text(DGEFA)
        cache_dir = tmp_path / "cache"
        stats = []
        for tag in ("cold", "warm"):
            path = tmp_path / f"{tag}.json"
            assert main([
                "run", str(program), "--procs", "2",
                "--cache-dir", str(cache_dir), "--stats-json", str(path),
            ]) == 0
            stats.append(path.read_bytes())
        capsys.readouterr()
        assert stats[0] == stats[1]


class TestRetiredShims:
    """The deprecated compatibility shims are gone (see the migration
    table in docs/API.md): the replacements are Session.estimate and
    the per-table builders on a shared manager."""

    def test_estimate_performance_removed(self):
        assert not hasattr(repro, "estimate_performance")
        import repro.perf as perf

        assert not hasattr(perf, "estimate_performance")
        assert "estimate_performance" not in perf.__all__

    def test_all_tables_removed(self):
        assert not hasattr(repro, "all_tables")
        import repro.report as report

        assert not hasattr(report, "all_tables")
        assert "all_tables" not in report.__all__

    def test_replacement_surface_exists(self):
        compiled = compile_source(TOMCATV, CompilerOptions(num_procs=2))
        estimate = Session().estimate(compiled)
        assert estimate.total_time > 0
        assert callable(repro.table1_tomcatv)


class TestCompileManyJobs:
    def test_mapping_jobs(self):
        from repro.core.driver import compile_many

        compiled = compile_many([
            {"source": TOMCATV, "options": {"num_procs": 2}},
            {"source": TOMCATV, "options": CompilerOptions(num_procs=4)},
            {"source": TOMCATV},
        ])
        assert [c.options.num_procs for c in compiled] == [2, 4, None]

    def test_mapping_job_unknown_field_named(self):
        from repro.core.driver import compile_many

        with pytest.raises(TypeError, match="optoins"):
            compile_many([{"source": TOMCATV, "optoins": {}}])

    def test_mapping_job_missing_source(self):
        from repro.core.driver import compile_many

        with pytest.raises(TypeError, match="source"):
            compile_many([{"options": {}}])

    def test_from_overrides_unknown_field(self):
        with pytest.raises(ValueError, match="warp_speed"):
            CompilerOptions.from_overrides(warp_speed=9)

    def test_from_overrides_base(self):
        base = CompilerOptions(strategy="producer")
        derived = CompilerOptions.from_overrides(base, num_procs=8)
        assert derived.strategy == "producer" and derived.num_procs == 8
        assert base.num_procs is None
