"""Array mapping resolution and ownership tests."""

import pytest

from repro.errors import MappingError
from repro.ir import parse_and_build
from repro.mapping import ProcessorGrid, resolve_mappings


def resolved(src, shape=(4,)):
    proc = parse_and_build(src)
    grid = ProcessorGrid(name="P", shape=shape)
    return proc, resolve_mappings(proc, grid)


BASIC = """
PROGRAM T
  REAL A(12), B(12), E(12)
!HPF$ ALIGN B(i) WITH A(i)
!HPF$ ALIGN E(i) WITH A(*)
!HPF$ DISTRIBUTE (BLOCK) :: A
END PROGRAM
"""


class TestDistribute:
    def test_block_ownership(self):
        proc, maps = resolved(BASIC)
        a = maps["A"]
        assert a.owner_coords((1,)) == (0,)
        assert a.owner_coords((12,)) == (3,)

    def test_partition_of_index_space(self):
        proc, maps = resolved(BASIC)
        a = maps["A"]
        seen = []
        for rank in range(4):
            seen.extend(a.owned_global_indices(rank))
        assert sorted(seen) == [(i,) for i in range(1, 13)]

    def test_rank_mismatch_rejected(self):
        src = (
            "PROGRAM T\n  REAL A(8, 8)\n"
            "!HPF$ DISTRIBUTE (BLOCK, BLOCK) :: A\nEND PROGRAM\n"
        )
        proc = parse_and_build(src)
        with pytest.raises(MappingError):
            resolve_mappings(proc, ProcessorGrid(name="P", shape=(4,)))

    def test_collapsed_dim(self):
        src = (
            "PROGRAM T\n  REAL A(8, 8)\n"
            "!HPF$ DISTRIBUTE (*, BLOCK) :: A\nEND PROGRAM\n"
        )
        proc, maps = resolved(src)
        a = maps["A"]
        # dim 0 collapsed: same owner independent of row
        assert a.owner_coords((1, 5)) == a.owner_coords((8, 5))

    def test_cyclic_ownership(self):
        src = (
            "PROGRAM T\n  REAL A(8)\n"
            "!HPF$ DISTRIBUTE (CYCLIC) :: A\nEND PROGRAM\n"
        )
        proc, maps = resolved(src, shape=(3,))
        owners = [maps["A"].owner_coords((i,))[0] for i in range(1, 9)]
        assert owners == [0, 1, 2, 0, 1, 2, 0, 1]


class TestAlign:
    def test_identity_alignment_colocates(self):
        proc, maps = resolved(BASIC)
        for i in range(1, 13):
            assert maps["B"].owner_coords((i,)) == maps["A"].owner_coords((i,))

    def test_star_alignment_replicates(self):
        proc, maps = resolved(BASIC)
        e = maps["E"]
        assert e.is_replicated
        assert len(e.owner_ranks((5,))) == 4

    def test_offset_alignment(self):
        src = (
            "PROGRAM T\n  REAL A(12), B(8)\n"
            "!HPF$ ALIGN B(i) WITH A(i + 2)\n"
            "!HPF$ DISTRIBUTE (BLOCK) :: A\nEND PROGRAM\n"
        )
        proc, maps = resolved(src)
        for i in range(1, 9):
            assert maps["B"].owner_coords((i,)) == maps["A"].owner_coords((i + 2,))

    def test_chain_alignment(self):
        src = (
            "PROGRAM T\n  REAL A(12), B(12), C(12)\n"
            "!HPF$ ALIGN C(i) WITH B(i)\n"
            "!HPF$ ALIGN B(i) WITH A(i)\n"
            "!HPF$ DISTRIBUTE (BLOCK) :: A\nEND PROGRAM\n"
        )
        proc, maps = resolved(src)
        assert maps["C"].owner_coords((7,)) == maps["A"].owner_coords((7,))

    def test_row_alignment_2d(self):
        src = (
            "PROGRAM T\n  REAL H(8, 8), A(8)\n"
            "!HPF$ ALIGN A(i) WITH H(i, *)\n"
            "!HPF$ DISTRIBUTE (BLOCK, *) :: H\nEND PROGRAM\n"
        )
        proc, maps = resolved(src)
        a = maps["A"]
        for i in range(1, 9):
            assert a.owner_coords((i,)) == maps["H"].owner_coords((i, 3))

    def test_transposed_alignment(self):
        src = (
            "PROGRAM T\n  REAL H(8, 8), A(8)\n"
            "!HPF$ ALIGN A(j) WITH H(*, j)\n"
            "!HPF$ DISTRIBUTE (*, BLOCK) :: H\nEND PROGRAM\n"
        )
        proc, maps = resolved(src)
        for j in range(1, 9):
            assert maps["A"].owner_coords((j,)) == maps["H"].owner_coords((2, j))

    def test_unmapped_array_replicated(self):
        proc, maps = resolved(
            "PROGRAM T\n  REAL A(8), Z(4)\n!HPF$ DISTRIBUTE (BLOCK) :: A\nEND PROGRAM\n"
        )
        assert maps["Z"].is_replicated


class TestLocalSections:
    def test_local_shape_block(self):
        proc, maps = resolved(BASIC)
        assert maps["A"].local_shape() == (3,)

    def test_local_index_dense(self):
        proc, maps = resolved(BASIC)
        a = maps["A"]
        assert a.local_index((4,)) == (0,)  # first element of coord 1
        assert a.local_index((6,)) == (2,)

    def test_owns(self):
        proc, maps = resolved(BASIC)
        a = maps["A"]
        rank = a.primary_owner_rank((5,))
        assert a.owns(rank, (5,))
        other = (rank + 1) % 4
        assert not a.owns(other, (5,))

    def test_replicated_owned_by_all(self):
        proc, maps = resolved(BASIC)
        e = maps["E"]
        assert all(e.owns(r, (3,)) for r in range(4))

    def test_privatized_dims_property(self):
        proc, maps = resolved(BASIC)
        assert maps["A"].privatized_grid_dims == ()
