"""Distribution format (BLOCK/CYCLIC) arithmetic tests."""

import pytest

from repro.errors import MappingError
from repro.mapping import DimFormat


class TestBlock:
    def test_block_size_ceiling(self):
        fmt = DimFormat(kind="block", extent=10, procs=4)
        assert fmt.block_size == 3

    def test_owner_assignment(self):
        fmt = DimFormat(kind="block", extent=10, procs=4)
        owners = [fmt.owner(i) for i in range(10)]
        assert owners == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]

    def test_local_counts_sum_to_extent(self):
        fmt = DimFormat(kind="block", extent=10, procs=4)
        assert sum(fmt.local_count(c) for c in range(4)) == 10

    def test_ragged_last_block(self):
        fmt = DimFormat(kind="block", extent=10, procs=4)
        assert fmt.local_count(3) == 1

    def test_empty_processor(self):
        fmt = DimFormat(kind="block", extent=4, procs=8)
        assert fmt.local_count(7) == 0

    def test_local_global_roundtrip(self):
        fmt = DimFormat(kind="block", extent=10, procs=3)
        for index in range(10):
            coord = fmt.owner(index)
            assert fmt.to_global(coord, fmt.to_local(index)) == index

    def test_owned_indices_ascending(self):
        fmt = DimFormat(kind="block", extent=10, procs=3)
        owned = list(fmt.owned_indices(1))
        assert owned == sorted(owned)
        assert all(fmt.owner(i) == 1 for i in owned)

    def test_max_local_count(self):
        fmt = DimFormat(kind="block", extent=10, procs=4)
        assert fmt.max_local_count() == 3


class TestCyclic:
    def test_owner_round_robin(self):
        fmt = DimFormat(kind="cyclic", extent=8, procs=3)
        assert [fmt.owner(i) for i in range(8)] == [0, 1, 2, 0, 1, 2, 0, 1]

    def test_chunked_cyclic(self):
        fmt = DimFormat(kind="cyclic", extent=8, procs=2, chunk=2)
        assert [fmt.owner(i) for i in range(8)] == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_local_counts_sum(self):
        fmt = DimFormat(kind="cyclic", extent=11, procs=3, chunk=2)
        assert sum(fmt.local_count(c) for c in range(3)) == 11

    def test_roundtrip(self):
        fmt = DimFormat(kind="cyclic", extent=13, procs=4, chunk=3)
        for index in range(13):
            coord = fmt.owner(index)
            assert fmt.to_global(coord, fmt.to_local(index)) == index

    def test_dense_local_packing(self):
        fmt = DimFormat(kind="cyclic", extent=12, procs=3)
        locals_of_0 = [fmt.to_local(i) for i in fmt.owned_indices(0)]
        assert locals_of_0 == list(range(len(locals_of_0)))


class TestValidation:
    def test_bad_kind(self):
        with pytest.raises(MappingError):
            DimFormat(kind="diagonal", extent=4, procs=2)

    def test_bad_extent(self):
        with pytest.raises(MappingError):
            DimFormat(kind="block", extent=0, procs=2)

    def test_index_out_of_extent(self):
        fmt = DimFormat(kind="block", extent=4, procs=2)
        with pytest.raises(MappingError):
            fmt.owner(4)

    def test_coord_out_of_procs(self):
        fmt = DimFormat(kind="block", extent=4, procs=2)
        with pytest.raises(MappingError):
            fmt.local_count(2)

    def test_to_global_out_of_extent(self):
        fmt = DimFormat(kind="block", extent=4, procs=2)
        with pytest.raises(MappingError):
            fmt.to_global(1, 5)
