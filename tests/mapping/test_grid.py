"""Processor grid tests."""

import pytest

from repro.errors import MappingError
from repro.mapping import ProcessorGrid, default_grid


class TestGrid:
    def test_size(self):
        assert ProcessorGrid(name="P", shape=(4, 4)).size == 16

    def test_rank_roundtrip(self):
        grid = ProcessorGrid(name="P", shape=(2, 3, 4))
        for rank in grid.all_ranks():
            assert grid.rank_of(grid.coords_of(rank)) == rank

    def test_row_major_order(self):
        grid = ProcessorGrid(name="P", shape=(2, 3))
        assert grid.coords_of(0) == (0, 0)
        assert grid.coords_of(1) == (0, 1)
        assert grid.coords_of(3) == (1, 0)

    def test_all_coords_count(self):
        grid = ProcessorGrid(name="P", shape=(2, 3))
        assert len(list(grid.all_coords())) == 6

    def test_bad_shape_rejected(self):
        with pytest.raises(MappingError):
            ProcessorGrid(name="P", shape=(0,))
        with pytest.raises(MappingError):
            ProcessorGrid(name="P", shape=())

    def test_out_of_range_rank(self):
        grid = ProcessorGrid(name="P", shape=(4,))
        with pytest.raises(MappingError):
            grid.coords_of(4)

    def test_out_of_range_coords(self):
        grid = ProcessorGrid(name="P", shape=(2, 2))
        with pytest.raises(MappingError):
            grid.rank_of((2, 0))

    def test_neighbors(self):
        grid = ProcessorGrid(name="P", shape=(4,))
        assert grid.neighbors(0, 0) == (None, 1)
        assert grid.neighbors(2, 0) == (1, 3)
        assert grid.neighbors(3, 0) == (2, None)

    def test_neighbors_2d(self):
        grid = ProcessorGrid(name="P", shape=(2, 2))
        prev_r, next_r = grid.neighbors(0, 1)
        assert prev_r is None and next_r == 1
        prev_r, next_r = grid.neighbors(1, 0)
        assert prev_r is None and next_r == 3


class TestDefaultGrid:
    def test_one_dim(self):
        assert default_grid(16).shape == (16,)

    def test_two_dim_square(self):
        assert default_grid(16, rank=2).shape == (4, 4)

    def test_two_dim_rectangular(self):
        shape = default_grid(8, rank=2).shape
        assert shape[0] * shape[1] == 8

    def test_prime_count(self):
        shape = default_grid(7, rank=2).shape
        assert shape[0] * shape[1] == 7
