"""Dominator tree and dominance frontier tests."""

from repro.analysis import compute_dominance
from repro.ir import build_cfg, parse_and_build


def analyzed(body, decls="  REAL A(10), B(10)\n"):
    proc = parse_and_build(f"PROGRAM T\n{decls}{body}\nEND PROGRAM\n")
    cfg = build_cfg(proc)
    return proc, cfg, compute_dominance(cfg)


class TestStraightLine:
    def test_entry_dominates_all(self):
        proc, cfg, dom = analyzed("  A(1) = 0.0\n  A(2) = 1.0")
        for node in cfg.reverse_postorder():
            assert dom.dominates(cfg.entry, node)

    def test_chain_idoms(self):
        proc, cfg, dom = analyzed("  A(1) = 0.0\n  A(2) = 1.0")
        n0 = cfg.node_of(proc.body[0])
        n1 = cfg.node_of(proc.body[1])
        assert dom.idom[n1.index] is n0

    def test_strict_dominance_irreflexive(self):
        proc, cfg, dom = analyzed("  A(1) = 0.0")
        node = cfg.node_of(proc.body[0])
        assert not dom.strictly_dominates(node, node)
        assert dom.dominates(node, node)


class TestBranches:
    def test_join_not_dominated_by_branches(self):
        proc, cfg, dom = analyzed(
            "  IF (A(1) > 0.0) THEN\n    A(1) = 1.0\n  ELSE\n    A(2) = 2.0\n"
            "  END IF\n  A(3) = 3.0"
        )
        if_stmt = proc.body[0]
        join = cfg.node_of(proc.body[1])
        then_node = cfg.node_of(if_stmt.then_body[0])
        else_node = cfg.node_of(if_stmt.else_body[0])
        assert not dom.dominates(then_node, join)
        assert not dom.dominates(else_node, join)
        assert dom.dominates(cfg.node_of(if_stmt), join)

    def test_branch_frontier_is_join(self):
        proc, cfg, dom = analyzed(
            "  IF (A(1) > 0.0) THEN\n    A(1) = 1.0\n  ELSE\n    A(2) = 2.0\n"
            "  END IF\n  A(3) = 3.0"
        )
        if_stmt = proc.body[0]
        join = cfg.node_of(proc.body[1])
        then_node = cfg.node_of(if_stmt.then_body[0])
        assert join.index in dom.frontier[then_node.index]


class TestLoops:
    def test_header_dominates_body(self):
        proc, cfg, dom = analyzed("  DO i = 1, 3\n    A(i) = 0.0\n  END DO")
        loop = proc.body[0]
        assert dom.dominates(cfg.node_of(loop), cfg.node_of(loop.body[0]))

    def test_header_in_own_frontier(self):
        # The back edge puts the header in its body's (and transitively
        # its own) dominance frontier — that's where loop phis go.
        proc, cfg, dom = analyzed("  DO i = 1, 3\n    A(i) = 0.0\n  END DO")
        loop = proc.body[0]
        header = cfg.node_of(loop)
        body_node = cfg.node_of(loop.body[0])
        assert header.index in dom.frontier[body_node.index]

    def test_iterated_frontier(self):
        proc, cfg, dom = analyzed(
            "  DO i = 1, 3\n    A(i) = 0.0\n  END DO\n  A(1) = 9.0"
        )
        loop = proc.body[0]
        body_node = cfg.node_of(loop.body[0])
        idf = dom.iterated_frontier([body_node])
        assert cfg.node_of(loop).index in idf

    def test_dominator_tree_children_cover_reachable(self):
        proc, cfg, dom = analyzed(
            "  DO i = 1, 3\n    IF (A(i) > 0.0) THEN\n      A(i) = 1.0\n"
            "    END IF\n  END DO"
        )
        seen = set()

        def walk(node):
            seen.add(node.index)
            for child in dom.children[node.index]:
                walk(child)

        walk(cfg.entry)
        assert seen == cfg.reachable()
