"""Automatic array privatization (the paper's stated future work):
section analysis and coverage inference."""

import pytest

from repro.analysis import (
    auto_privatizable,
    auto_privatizable_arrays,
    build_ssa,
    compute_liveness,
    ref_section,
)
from repro.ir import ArrayElemRef, build_cfg, parse_and_build


def analyzed(body, decls="  REAL W(12, 12), R(12, 12), V(12)\n"):
    proc = parse_and_build(f"PROGRAM T\n{decls}{body}\nEND PROGRAM\n")
    cfg = build_cfg(proc)
    return proc, cfg, compute_liveness(cfg)


def first_loop(proc):
    return next(proc.loops())


class TestSections:
    def test_section_over_inner_loop(self):
        proc, cfg, liv = analyzed(
            "  DO k = 1, 10\n    DO i = 2, 11\n      W(i, 1) = R(i, k)\n"
            "    END DO\n  END DO"
        )
        loop = first_loop(proc)
        write = next(
            r
            for s in proc.assignments()
            for r in s.defs()
            if isinstance(r, ArrayElemRef) and r.symbol.name == "W"
        )
        section = ref_section(proc, write, loop)
        assert section[0].lo.const == 2 and section[0].hi.const == 11
        assert section[1].lo.const == 1 and section[1].hi.const == 1

    def test_symbolic_outer_bound(self):
        proc, cfg, liv = analyzed(
            "  DO k = 1, 10\n    DO i = k, 11\n      W(i, 1) = 0.0\n"
            "    END DO\n  END DO"
        )
        loop = first_loop(proc)
        write = next(
            r
            for s in proc.assignments()
            for r in s.defs()
            if isinstance(r, ArrayElemRef)
        )
        section = ref_section(proc, write, loop)
        # lower bound stays symbolic in k
        assert section[0].lo.coeff(loop.var) == 1

    def test_containment_decision(self):
        proc, cfg, liv = analyzed(
            "  DO k = 1, 10\n"
            "    DO i = 1, 12\n      W(i, 1) = R(i, k)\n    END DO\n"
            "    DO i = 2, 11\n      R(i, k) = W(i, 1)\n    END DO\n"
            "  END DO"
        )
        loop = first_loop(proc)
        refs = {}
        for s in proc.assignments():
            for r in list(s.defs()) + list(s.uses()):
                if isinstance(r, ArrayElemRef) and r.symbol.name == "W":
                    refs.setdefault("w" if r in list(s.defs()) else "r", r)
        w_sec = ref_section(proc, refs["w"], loop)
        r_sec = ref_section(proc, refs["r"], loop)
        assert all(a.contains(b) for a, b in zip(w_sec, r_sec))
        assert not all(b.contains(a) for a, b in zip(w_sec, r_sec))


class TestAutoPrivatizable:
    def test_covered_work_array(self):
        proc, cfg, liv = analyzed(
            "  DO k = 1, 10\n"
            "    DO i = 1, 12\n      W(i, 1) = R(i, k)\n    END DO\n"
            "    DO i = 2, 11\n      R(i, k) = W(i, 1) + W(i - 1, 1)\n    END DO\n"
            "  END DO"
        )
        loop = first_loop(proc)
        w = proc.symbols.require("W")
        assert auto_privatizable(proc, cfg, liv, w, loop)

    def test_uncovered_read_rejected(self):
        proc, cfg, liv = analyzed(
            "  DO k = 1, 10\n"
            "    DO i = 1, 6\n      W(i, 1) = R(i, k)\n    END DO\n"
            "    DO i = 2, 11\n      R(i, k) = W(i, 1)\n    END DO\n"
            "  END DO"
        )
        loop = first_loop(proc)
        w = proc.symbols.require("W")
        # writes cover rows 1..6 but rows up to 11 are read
        assert not auto_privatizable(proc, cfg, liv, w, loop)

    def test_read_outside_loop_rejected(self):
        proc, cfg, liv = analyzed(
            "  DO k = 1, 10\n"
            "    DO i = 1, 12\n      W(i, 1) = R(i, k)\n    END DO\n"
            "    DO i = 2, 11\n      R(i, k) = W(i, 1)\n    END DO\n"
            "  END DO\n"
            "  V(1) = W(3, 1)"
        )
        loop = first_loop(proc)
        w = proc.symbols.require("W")
        assert not auto_privatizable(proc, cfg, liv, w, loop)

    def test_conditional_write_rejected(self):
        proc, cfg, liv = analyzed(
            "  DO k = 1, 10\n"
            "    DO i = 1, 12\n"
            "      IF (R(i, k) > 0.0) THEN\n        W(i, 1) = R(i, k)\n"
            "      END IF\n    END DO\n"
            "    DO i = 2, 11\n      R(i, k) = W(i, 1)\n    END DO\n"
            "  END DO"
        )
        loop = first_loop(proc)
        w = proc.symbols.require("W")
        assert not auto_privatizable(proc, cfg, liv, w, loop)

    def test_read_before_write_rejected(self):
        proc, cfg, liv = analyzed(
            "  DO k = 1, 10\n"
            "    DO i = 2, 11\n      R(i, k) = W(i, 1)\n    END DO\n"
            "    DO i = 1, 12\n      W(i, 1) = R(i, k)\n    END DO\n"
            "  END DO"
        )
        loop = first_loop(proc)
        w = proc.symbols.require("W")
        assert not auto_privatizable(proc, cfg, liv, w, loop)

    def test_same_nest_identical_subscripts_covered(self):
        proc, cfg, liv = analyzed(
            "  DO k = 1, 10\n"
            "    DO i = 1, 12\n"
            "      W(i, 1) = R(i, k)\n"
            "      R(i, k) = W(i, 1) * 2.0\n"
            "    END DO\n  END DO"
        )
        loop = first_loop(proc)
        w = proc.symbols.require("W")
        assert auto_privatizable(proc, cfg, liv, w, loop)

    def test_same_nest_shifted_subscripts_rejected(self):
        proc, cfg, liv = analyzed(
            "  DO k = 1, 10\n"
            "    DO i = 2, 11\n"
            "      W(i, 1) = R(i, k)\n"
            "      R(i, k) = W(i - 1, 1)\n"
            "    END DO\n  END DO"
        )
        loop = first_loop(proc)
        w = proc.symbols.require("W")
        assert not auto_privatizable(proc, cfg, liv, w, loop)

    def test_enumeration(self):
        proc, cfg, liv = analyzed(
            "  DO k = 1, 10\n"
            "    DO i = 1, 12\n      W(i, 1) = R(i, k)\n    END DO\n"
            "    DO i = 2, 11\n      R(i, k) = W(i, 1)\n    END DO\n"
            "  END DO"
        )
        loop = first_loop(proc)
        names = [s.name for s in auto_privatizable_arrays(proc, cfg, liv, loop)]
        assert names == ["W"]


class TestCompilerIntegration:
    def test_appsp_without_new_clause(self):
        from repro.core import CompilerOptions, compile_source
        from repro.programs import appsp_source

        src = appsp_source(
            nx=16, ny=16, nz=16, niter=1, procs=4,
            distribution="2d", use_new_clause=False,
        )
        baseline = compile_source(src, CompilerOptions())
        assert not baseline.array_result.privatizations

        auto = compile_source(src, CompilerOptions(auto_privatize_arrays=True))
        privs = auto.array_result.privatizations
        assert len(privs) == 1
        assert privs[0].array.name == "C"
        assert privs[0].is_partial

    def test_auto_matches_new_clause_decision(self):
        from repro.core import CompilerOptions, compile_source
        from repro.programs import appsp_source

        with_new = compile_source(
            appsp_source(nx=16, ny=16, nz=16, niter=1, procs=4, distribution="1d"),
            CompilerOptions(),
        )
        inferred = compile_source(
            appsp_source(
                nx=16, ny=16, nz=16, niter=1, procs=4,
                distribution="1d", use_new_clause=False,
            ),
            CompilerOptions(auto_privatize_arrays=True),
        )
        a = with_new.array_result.privatizations[0]
        b = inferred.array_result.privatizations[0]
        assert a.array.name == b.array.name == "C"
        assert a.privatized_grid_dims == b.privatized_grid_dims
        assert a.partitioned_dims == b.partitioned_dims

    def test_auto_semantics(self):
        import numpy as np

        from repro.codegen import run_sequential
        from repro.core import CompilerOptions, compile_source
        from repro.ir import parse_and_build
        from repro.machine import simulate
        from repro.programs import appsp_inputs, appsp_source

        src = appsp_source(
            nx=6, ny=6, nz=6, niter=2, procs=4,
            distribution="2d", use_new_clause=False,
        )
        inputs = appsp_inputs(6, 6, 6)
        seq = run_sequential(parse_and_build(src), inputs)
        sim = simulate(
            compile_source(src, CompilerOptions(auto_privatize_arrays=True)),
            inputs,
        )
        assert np.allclose(sim.gather("RSD"), seq.get_array("RSD"))
        assert sim.stats.unexpected_fetches == 0
