"""Reduction recognition tests."""

from repro.analysis import build_ssa, find_reductions, reduction_for_def
from repro.ir import ScalarRef, build_cfg, parse_and_build


def analyzed(body, decls="  REAL A(10, 10), B(10)\n  REAL s, t\n  INTEGER l\n"):
    proc = parse_and_build(f"PROGRAM T\n{decls}{body}\nEND PROGRAM\n")
    return proc, find_reductions(proc, build_ssa(build_cfg(proc)))


class TestAccumulations:
    def test_sum(self):
        proc, reds = analyzed(
            "  DO i = 1, 10\n    s = 0.0\n    DO j = 1, 10\n      s = s + A(i, j)\n"
            "    END DO\n    B(i) = s\n  END DO"
        )
        assert len(reds) == 1
        r = reds[0]
        assert r.symbol.name == "S" and r.op == "+"
        assert r.loop.var.name == "J"
        assert [str(c) for c in r.candidate_refs] == ["A(I,J)"]

    def test_sum_with_subtract(self):
        proc, reds = analyzed(
            "  s = 0.0\n  DO i = 1, 10\n    s = s - B(i)\n  END DO\n  t = s"
        )
        assert len(reds) == 1 and reds[0].op == "+"

    def test_product(self):
        proc, reds = analyzed(
            "  s = 1.0\n  DO i = 1, 10\n    s = s * B(i)\n  END DO\n  t = s"
        )
        assert reds[0].op == "*"

    def test_max_intrinsic(self):
        proc, reds = analyzed(
            "  s = 0.0\n  DO i = 1, 10\n    s = MAX(s, B(i))\n  END DO\n  t = s"
        )
        assert reds[0].op == "MAX"

    def test_min_intrinsic(self):
        proc, reds = analyzed(
            "  s = 0.0\n  DO i = 1, 10\n    s = MIN(s, B(i))\n  END DO\n  t = s"
        )
        assert reds[0].op == "MIN"

    def test_accumulator_read_elsewhere_rejected(self):
        proc, reds = analyzed(
            "  s = 0.0\n  DO i = 1, 10\n    s = s + B(i)\n    B(i) = s\n  END DO"
        )
        assert reds == []

    def test_two_defs_rejected(self):
        proc, reds = analyzed(
            "  s = 0.0\n  DO i = 1, 10\n    s = s + B(i)\n    s = s + 1.0\n  END DO\n"
            "  t = s"
        )
        assert reds == []

    def test_non_carried_assign_not_reduction(self):
        proc, reds = analyzed(
            "  DO i = 1, 10\n    s = B(i) + 1.0\n    B(i) = s\n  END DO"
        )
        assert reds == []


class TestMaxloc:
    SRC = (
        "  s = 0.0\n  l = 1\n  DO i = 1, 10\n"
        "    IF (ABS(B(i)) > s) THEN\n      s = ABS(B(i))\n      l = i\n    END IF\n"
        "  END DO\n  t = s"
    )

    def test_recognized(self):
        proc, reds = analyzed(self.SRC)
        assert len(reds) == 1
        r = reds[0]
        assert r.op == "MAXLOC"
        assert r.symbol.name == "S"
        assert r.location_symbol.name == "L"

    def test_candidate_strips_abs(self):
        proc, reds = analyzed(self.SRC)
        assert [str(c) for c in reds[0].candidate_refs] == ["B(I)"]

    def test_minloc(self):
        src = self.SRC.replace(">", "<")
        proc, reds = analyzed(src)
        assert reds[0].op == "MINLOC"

    def test_value_only_max_idiom(self):
        src = (
            "  s = 0.0\n  DO i = 1, 10\n"
            "    IF (B(i) > s) THEN\n      s = B(i)\n    END IF\n  END DO\n  t = s"
        )
        proc, reds = analyzed(src)
        assert len(reds) == 1 and reds[0].op == "MAX"

    def test_reduction_for_def_lookup(self):
        proc, reds = analyzed(self.SRC)
        for stmt in reds[0].update_stmts:
            assert reduction_for_def(reds, stmt) is reds[0]


class TestGrowth:
    def test_grows_across_perfect_nest(self):
        proc, reds = analyzed(
            "  s = 0.0\n"
            "  DO i = 1, 10\n    DO j = 1, 10\n      s = s + A(i, j)\n"
            "    END DO\n  END DO\n  t = s"
        )
        assert len(reds) == 1
        assert reds[0].loop.var.name == "I"  # grown to the outer loop

    def test_growth_stops_at_reinitialization(self):
        proc, reds = analyzed(
            "  DO i = 1, 10\n    s = 0.0\n    DO j = 1, 10\n      s = s + A(i, j)\n"
            "    END DO\n    B(i) = s\n  END DO"
        )
        assert reds[0].loop.var.name == "J"

    def test_growth_stops_at_outer_use(self):
        proc, reds = analyzed(
            "  s = 0.0\n"
            "  DO i = 1, 10\n    DO j = 1, 10\n      s = s + A(i, j)\n"
            "    END DO\n    B(i) = s\n  END DO"
        )
        assert reds[0].loop.var.name == "J"


class TestDirectiveAssertions:
    def test_reduction_clause_forces(self):
        src = (
            "PROGRAM T\n  REAL B(10)\n  REAL s\n"
            "!HPF$ INDEPENDENT, REDUCTION(S)\n"
            "  DO i = 1, 10\n    s = B(i) + s * 0.5\n  END DO\n  t = s\nEND PROGRAM\n"
        )
        proc = parse_and_build(src)
        reds = find_reductions(proc, build_ssa(build_cfg(proc)))
        assert any(r.symbol.name == "S" and r.from_directive for r in reds)

    def test_clause_marks_matched_idiom(self):
        src = (
            "PROGRAM T\n  REAL B(10)\n  REAL s\n  s = 0.0\n"
            "!HPF$ INDEPENDENT, REDUCTION(S)\n"
            "  DO i = 1, 10\n    s = s + B(i)\n  END DO\n  t = s\nEND PROGRAM\n"
        )
        proc = parse_and_build(src)
        reds = find_reductions(proc, build_ssa(build_cfg(proc)))
        matching = [r for r in reds if r.symbol.name == "S"]
        assert len(matching) == 1 and matching[0].from_directive
