"""Liveness and upward-exposed-uses tests."""

from repro.analysis import compute_liveness, upward_exposed_uses
from repro.ir import build_cfg, parse_and_build


def analyzed(body, decls="  REAL A(10), B(10)\n  REAL x, y\n"):
    proc = parse_and_build(f"PROGRAM T\n{decls}{body}\nEND PROGRAM\n")
    cfg = build_cfg(proc)
    return proc, cfg, compute_liveness(cfg)


class TestLiveness:
    def test_use_makes_live_in(self):
        proc, cfg, liv = analyzed("  x = 1.0\n  y = x")
        second = cfg.node_of(proc.body[1])
        assert "X" in liv.live_in[second.index]

    def test_def_kills(self):
        proc, cfg, liv = analyzed("  x = 1.0\n  x = 2.0\n  y = x")
        first = cfg.node_of(proc.body[0])
        # x from the first def is dead immediately (killed by second).
        assert "X" not in liv.live_out[first.index] or True  # may-liveness
        # stronger check: x not live-in at the first node
        assert "X" not in liv.live_in[first.index]

    def test_loop_carried_liveness(self):
        proc, cfg, liv = analyzed(
            "  x = 0.0\n  DO i = 1, 3\n    x = x + 1.0\n  END DO\n  y = x"
        )
        header = cfg.node_of(proc.body[1])
        assert "X" in liv.live_in[header.index]

    def test_live_after_loop(self):
        proc, cfg, liv = analyzed(
            "  DO i = 1, 3\n    x = B(i)\n  END DO\n  y = x"
        )
        loop = proc.body[0]
        assert "X" in liv.live_after_loop(loop)
        assert liv.is_live_out_of_loop("x", loop)

    def test_not_live_after_loop(self):
        proc, cfg, liv = analyzed(
            "  DO i = 1, 3\n    x = B(i)\n    A(i) = x\n  END DO"
        )
        loop = proc.body[0]
        assert not liv.is_live_out_of_loop("x", loop)

    def test_array_reads_are_uses(self):
        proc, cfg, liv = analyzed("  y = B(1)")
        node = cfg.node_of(proc.body[0])
        assert "B" in liv.live_in[node.index]

    def test_array_store_does_not_kill_array(self):
        proc, cfg, liv = analyzed("  A(1) = 1.0\n  y = A(2)")
        first = cfg.node_of(proc.body[0])
        assert "A" in liv.live_in[first.index]  # element store: no kill


class TestUpwardExposed:
    def test_write_before_read_not_exposed(self):
        proc, cfg, _ = analyzed(
            "  DO i = 1, 3\n    x = B(i)\n    A(i) = x\n  END DO"
        )
        loop = proc.body[0]
        assert "X" not in upward_exposed_uses(cfg, loop)

    def test_read_before_write_exposed(self):
        proc, cfg, _ = analyzed(
            "  DO i = 1, 3\n    A(i) = x\n    x = B(i)\n  END DO"
        )
        loop = proc.body[0]
        assert "X" in upward_exposed_uses(cfg, loop)

    def test_conditional_write_exposes(self):
        proc, cfg, _ = analyzed(
            "  DO i = 1, 3\n    IF (B(i) > 0.0) THEN\n      x = 1.0\n"
            "    END IF\n    A(i) = x\n  END DO"
        )
        loop = proc.body[0]
        assert "X" in upward_exposed_uses(cfg, loop)

    def test_loop_indices_not_exposed(self):
        proc, cfg, _ = analyzed(
            "  DO i = 1, 3\n    DO j = 1, 3\n      A(i) = B(j)\n    END DO\n  END DO"
        )
        loop = proc.body[0]
        exposed = upward_exposed_uses(cfg, loop)
        assert "I" not in exposed and "J" not in exposed
