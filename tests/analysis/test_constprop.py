"""SSA constant propagation tests."""

from repro.analysis import build_ssa, propagate_constants
from repro.ir import ScalarRef, build_cfg, parse_and_build


def analyzed(body, decls="  REAL A(10)\n  REAL x, y, z\n  INTEGER m, n2\n"):
    proc = parse_and_build(f"PROGRAM T\n{decls}{body}\nEND PROGRAM\n")
    cfg = build_cfg(proc)
    ssa = build_ssa(cfg)
    return proc, ssa, propagate_constants(ssa)


def def_of(proc, ssa, name, k=0):
    stmts = [
        s
        for s in proc.assignments()
        if isinstance(s.lhs, ScalarRef) and s.lhs.symbol.name == name
    ]
    return ssa.def_of_assignment(stmts[k])


class TestDirectConstants:
    def test_literal(self):
        proc, ssa, cp = analyzed("  x = 2.5")
        assert cp.const_of_def(def_of(proc, ssa, "X")) == 2.5

    def test_folding_arithmetic(self):
        proc, ssa, cp = analyzed("  m = 2 + 3 * 4")
        assert cp.const_of_def(def_of(proc, ssa, "M")) == 14

    def test_propagation_chain(self):
        proc, ssa, cp = analyzed("  x = 2.0\n  y = x * 3.0\n  z = y - 1.0")
        assert cp.const_of_def(def_of(proc, ssa, "Z")) == 5.0

    def test_intrinsic_folding(self):
        proc, ssa, cp = analyzed("  x = MAX(2.0, 5.0)\n  y = ABS(-3.0)")
        assert cp.const_of_def(def_of(proc, ssa, "X")) == 5.0
        assert cp.const_of_def(def_of(proc, ssa, "Y")) == 3.0

    def test_integer_division_truncates(self):
        proc, ssa, cp = analyzed("  m = 7 / 2")
        assert cp.const_of_def(def_of(proc, ssa, "M")) == 3

    def test_division_by_zero_is_bottom(self):
        proc, ssa, cp = analyzed("  m = 1 / 0")
        assert cp.const_of_def(def_of(proc, ssa, "M")) is None


class TestNonConstants:
    def test_array_read_is_unknown(self):
        proc, ssa, cp = analyzed("  x = A(1)")
        assert cp.const_of_def(def_of(proc, ssa, "X")) is None

    def test_loop_index_is_unknown(self):
        proc, ssa, cp = analyzed("  DO i = 1, 3\n    m = i\n  END DO")
        assert cp.const_of_def(def_of(proc, ssa, "M")) is None

    def test_entry_value_is_unknown(self):
        proc, ssa, cp = analyzed("  y = x + 1.0")
        assert cp.const_of_def(def_of(proc, ssa, "Y")) is None


class TestPhiMerging:
    def test_same_constant_through_branches(self):
        proc, ssa, cp = analyzed(
            "  IF (A(1) > 0.0) THEN\n    x = 4.0\n  ELSE\n    x = 4.0\n  END IF\n"
            "  y = x + 1.0"
        )
        assert cp.const_of_def(def_of(proc, ssa, "Y")) == 5.0

    def test_different_constants_merge_to_bottom(self):
        proc, ssa, cp = analyzed(
            "  IF (A(1) > 0.0) THEN\n    x = 4.0\n  ELSE\n    x = 5.0\n  END IF\n"
            "  y = x + 1.0"
        )
        assert cp.const_of_def(def_of(proc, ssa, "Y")) is None


class TestEvalExpr:
    def test_eval_loop_bound_with_params(self):
        proc, ssa, cp = analyzed(
            "  DO i = 1, n2\n    A(i) = 0.0\n  END DO",
            decls="  PARAMETER (n2 = 6)\n  REAL A(10)\n",
        )
        loop = next(proc.loops())
        assert cp.eval_expr(loop.high) == 6

    def test_eval_expr_with_const_scalar(self):
        proc, ssa, cp = analyzed("  m = 4\n  DO i = 1, m\n    A(i) = 0.0\n  END DO")
        loop = next(proc.loops())
        assert cp.eval_expr(loop.high) == 4
