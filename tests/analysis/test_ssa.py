"""Pruned SSA construction and use–def chain tests."""

from repro.analysis import build_ssa
from repro.ir import AssignStmt, ScalarRef, build_cfg, parse_and_build


def analyzed(body, decls="  REAL A(10), B(10)\n  REAL x, y\n  INTEGER m\n"):
    proc = parse_and_build(f"PROGRAM T\n{decls}{body}\nEND PROGRAM\n")
    cfg = build_cfg(proc)
    return proc, cfg, build_ssa(cfg)


def scalar_assigns(proc, name):
    return [
        s
        for s in proc.assignments()
        if isinstance(s.lhs, ScalarRef) and s.lhs.symbol.name == name
    ]


class TestBasics:
    def test_every_real_def_registered(self):
        proc, cfg, ssa = analyzed("  x = 1.0\n  y = x + 1.0")
        assert len(list(ssa.real_defs("X"))) == 1
        assert len(list(ssa.real_defs("Y"))) == 1

    def test_use_sees_nearest_def(self):
        proc, cfg, ssa = analyzed("  x = 1.0\n  x = 2.0\n  y = x")
        use = next(
            r for r in scalar_assigns(proc, "Y")[0].rhs.refs()
        )
        reaching = ssa.reaching_real_defs(use)
        assert len(reaching) == 1
        d = reaching.pop()
        assert d.stmt is scalar_assigns(proc, "X")[1]

    def test_reached_uses(self):
        proc, cfg, ssa = analyzed("  x = 1.0\n  y = x + x")
        d = ssa.def_of_assignment(scalar_assigns(proc, "X")[0])
        uses = ssa.reached_uses(d)
        assert len(uses) == 2

    def test_is_unique_def_simple(self):
        proc, cfg, ssa = analyzed("  x = 1.0\n  y = x")
        d = ssa.def_of_assignment(scalar_assigns(proc, "X")[0])
        assert ssa.is_unique_def(d)


class TestBranching:
    SRC = (
        "  IF (A(1) > 0.0) THEN\n    x = 1.0\n  ELSE\n    x = 2.0\n  END IF\n"
        "  y = x"
    )

    def test_phi_at_join(self):
        proc, cfg, ssa = analyzed(self.SRC)
        use = next(scalar_assigns(proc, "Y")[0].rhs.refs())
        seen = ssa.defs[ssa.use_def[use.ref_id]]
        assert seen.kind == "phi"

    def test_reaching_defs_through_phi(self):
        proc, cfg, ssa = analyzed(self.SRC)
        use = next(scalar_assigns(proc, "Y")[0].rhs.refs())
        reaching = ssa.reaching_real_defs(use)
        assert {d.stmt for d in reaching} == set(scalar_assigns(proc, "X"))

    def test_not_unique_def(self):
        proc, cfg, ssa = analyzed(self.SRC)
        for stmt in scalar_assigns(proc, "X"):
            assert not ssa.is_unique_def(ssa.def_of_assignment(stmt))


class TestLoops:
    def test_loop_carried_use_sees_phi(self):
        proc, cfg, ssa = analyzed(
            "  m = 0\n  DO i = 1, 3\n    m = m + 1\n  END DO",
        )
        update = scalar_assigns(proc, "M")[1]
        use = next(
            r for r in update.rhs.refs() if isinstance(r, ScalarRef)
        )
        seen = ssa.defs[ssa.use_def[use.ref_id]]
        assert seen.kind == "phi"
        reaching = {d.stmt for d in ssa.reaching_real_defs(use)}
        assert reaching == set(scalar_assigns(proc, "M"))

    def test_pruned_no_phi_for_local_temp(self):
        # x is defined and used within one iteration and dead outside:
        # pruned SSA must NOT create a loop-header phi for it.
        proc, cfg, ssa = analyzed(
            "  DO i = 2, 9\n    x = B(i)\n    A(i) = x\n  END DO",
        )
        header = cfg.node_of(proc.body[0])
        phi_syms = {ssa.defs[d].symbol.name for d in ssa.phis_at.get(header.index, [])}
        assert "X" not in phi_syms

    def test_flows_through_phi_at_header(self):
        proc, cfg, ssa = analyzed(
            "  m = 0\n  DO i = 1, 3\n    m = m + 1\n  END DO\n  x = m",
        )
        update = scalar_assigns(proc, "M")[1]
        d = ssa.def_of_assignment(update)
        header = cfg.node_of(proc.body[1])
        assert ssa.flows_through_phi_at(d, header)

    def test_local_temp_does_not_flow_through_header(self):
        proc, cfg, ssa = analyzed(
            "  DO i = 2, 9\n    x = B(i)\n    A(i) = x\n  END DO",
        )
        d = ssa.def_of_assignment(scalar_assigns(proc, "X")[0])
        header = cfg.node_of(proc.body[0])
        assert not ssa.flows_through_phi_at(d, header)

    def test_loop_index_def_kind(self):
        proc, cfg, ssa = analyzed("  DO i = 1, 3\n    A(i) = 0.0\n  END DO")
        defs = list(ssa.defs_of_symbol.get("I", []))
        kinds = {ssa.defs[d].kind for d in defs}
        assert "loop" in kinds


class TestEntryDefs:
    def test_use_before_def_sees_entry(self):
        proc, cfg, ssa = analyzed("  y = x + 1.0")
        use = next(
            r for r in scalar_assigns(proc, "Y")[0].rhs.refs()
            if isinstance(r, ScalarRef)
        )
        reaching = ssa.reaching_real_defs(use)
        assert {d.kind for d in reaching} == {"entry"}


class TestHelpers:
    def test_stmt_of_use(self):
        proc, cfg, ssa = analyzed("  x = 1.0\n  y = x")
        use = next(scalar_assigns(proc, "Y")[0].rhs.refs())
        assert ssa.stmt_of_use(use) is scalar_assigns(proc, "Y")[0]

    def test_def_of_assignment_none_for_array(self):
        proc, cfg, ssa = analyzed("  A(1) = 1.0")
        stmt = next(proc.assignments())
        assert ssa.def_of_assignment(stmt) is None
