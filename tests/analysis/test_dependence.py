"""Array dependence testing (ZIV/SIV/GCD + bounds-aware carried tests)."""

from repro.analysis import (
    array_dependences,
    array_written_in,
    read_may_see_loop_write,
)
from repro.analysis import test_dependence as dep_test
from repro.analysis.dependence import may_depend_within_loop
from repro.ir import ArrayElemRef, parse_and_build


def build(body, decls="  REAL A(20), B(20), C(20, 20)\n"):
    return parse_and_build(f"PROGRAM T\n{decls}{body}\nEND PROGRAM\n")


def refs_of(proc, array, writes=False):
    out = []
    for stmt in proc.all_stmts():
        source = stmt.defs() if writes else stmt.uses()
        for ref in source:
            if isinstance(ref, ArrayElemRef) and ref.symbol.name == array:
                out.append(ref)
    return out


class TestBasicTests:
    def test_ziv_equal(self):
        proc = build("  A(3) = 1.0\n  x = A(3)")
        w = refs_of(proc, "A", writes=True)[0]
        r = refs_of(proc, "A")[0]
        dep = dep_test(proc, w, r, "flow")
        assert dep is not None and dep.loop_independent

    def test_ziv_unequal(self):
        proc = build("  A(3) = 1.0\n  x = A(4)")
        w = refs_of(proc, "A", writes=True)[0]
        r = refs_of(proc, "A")[0]
        assert dep_test(proc, w, r, "flow") is None

    def test_strong_siv_distance(self):
        proc = build("  DO i = 2, 19\n    A(i) = A(i - 1)\n  END DO")
        w = refs_of(proc, "A", writes=True)[0]
        r = refs_of(proc, "A")[0]
        dep = dep_test(proc, w, r, "flow")
        assert dep is not None
        assert dep.distances == (1,)  # sink iteration minus source
        assert dep.loop_carried

    def test_strong_siv_zero_distance(self):
        proc = build("  DO i = 1, 19\n    A(i) = A(i) + 1.0\n  END DO")
        w = refs_of(proc, "A", writes=True)[0]
        r = refs_of(proc, "A")[0]
        dep = dep_test(proc, w, r, "flow")
        assert dep is not None and dep.loop_independent

    def test_siv_non_integral_distance(self):
        # A(2i) vs A(2i+1): never equal (GCD fails on the difference).
        proc = build("  DO i = 1, 9\n    A(2 * i) = A(2 * i + 1)\n  END DO")
        w = refs_of(proc, "A", writes=True)[0]
        r = refs_of(proc, "A")[0]
        assert dep_test(proc, w, r, "flow") is None

    def test_distance_exceeding_trip_count(self):
        proc = build("  DO i = 1, 3\n    A(i) = A(i + 10)\n  END DO")
        w = refs_of(proc, "A", writes=True)[0]
        r = refs_of(proc, "A")[0]
        assert dep_test(proc, w, r, "flow") is None

    def test_different_arrays_no_dep(self):
        proc = build("  DO i = 1, 9\n    A(i) = B(i)\n  END DO")
        w = refs_of(proc, "A", writes=True)[0]
        r = refs_of(proc, "B")[0]
        assert dep_test(proc, w, r, "flow") is None

    def test_multidim_consistent_distances(self):
        proc = build(
            "  DO i = 2, 9\n    DO j = 2, 9\n      C(i, j) = C(i - 1, j - 1)\n"
            "    END DO\n  END DO"
        )
        w = refs_of(proc, "C", writes=True)[0]
        r = refs_of(proc, "C")[0]
        dep = dep_test(proc, w, r, "flow")
        assert dep is not None and dep.distances == (1, 1)

    def test_multidim_inconsistent_distances(self):
        # C(i,i) vs C(i-1, i-2): distances 1 and 2 conflict -> no dep.
        proc = build(
            "  DO i = 3, 9\n    C(i, i) = C(i - 1, i - 2)\n  END DO"
        )
        w = refs_of(proc, "C", writes=True)[0]
        r = refs_of(proc, "C")[0]
        assert dep_test(proc, w, r, "flow") is None

    def test_non_affine_subscript_conservative(self):
        proc = build(
            "  DO i = 1, 4\n    A(i * i) = A(i) + 1.0\n  END DO",
        )
        w = refs_of(proc, "A", writes=True)[0]
        r = refs_of(proc, "A")[0]
        assert dep_test(proc, w, r, "flow") is not None


class TestLoopQueries:
    def test_array_written_in(self):
        proc = build("  DO i = 1, 9\n    A(i) = B(i)\n  END DO")
        loop = next(proc.loops())
        assert array_written_in(proc, proc.symbols.require("A"), loop)
        assert not array_written_in(proc, proc.symbols.require("B"), loop)

    def test_read_sees_write_same_loop(self):
        proc = build("  DO i = 2, 9\n    A(i) = A(i - 1)\n  END DO")
        loop = next(proc.loops())
        r = refs_of(proc, "A")[0]
        assert read_may_see_loop_write(proc, r, loop)

    def test_read_does_not_see_unrelated_write(self):
        proc = build("  DO i = 1, 9\n    A(i) = B(i)\n  END DO")
        loop = next(proc.loops())
        r = refs_of(proc, "B")[0]
        assert not read_may_see_loop_write(proc, r, loop)

    def test_dgefa_pattern_hoistable_from_inner(self):
        """The elimination update writes columns j > k; the pivot-column
        read A(i,k) must be hoistable out of the j loop but not the k
        loop."""
        proc = build(
            "  DO k = 1, 18\n    DO j = k + 1, 19\n      DO i = k + 1, 19\n"
            "        C(i, j) = C(i, j) + C(i, k)\n      END DO\n    END DO\n  END DO",
        )
        loops = {l.var.name: l for l in proc.loops()}
        pivot_read = [
            r for r in refs_of(proc, "C") if "K" in str(r.subscripts[1])
        ][0]
        assert not read_may_see_loop_write(proc, pivot_read, loops["J"])
        assert read_may_see_loop_write(proc, pivot_read, loops["K"])

    def test_may_depend_within_loop_direct(self):
        proc = build(
            "  DO k = 1, 18\n    DO j = k + 1, 19\n      C(k, j) = C(k, k)\n"
            "    END DO\n  END DO",
        )
        loops = {l.var.name: l for l in proc.loops()}
        w = refs_of(proc, "C", writes=True)[0]
        r = refs_of(proc, "C")[0]
        # Within one k iteration, C(k,j) writes j>k, C(k,k) read is safe.
        assert not may_depend_within_loop(proc, w, r, loops["J"])
        # Across k iterations, an earlier write C(k1, j=k2) can feed the
        # later read C(k2, k2).
        assert may_depend_within_loop(proc, w, r, loops["K"])


class TestWholeProcedure:
    def test_array_dependences_enumeration(self):
        proc = build("  DO i = 2, 9\n    A(i) = A(i - 1)\n  END DO")
        deps = array_dependences(proc)
        assert any(d.kind == "flow" and d.loop_carried for d in deps)

    def test_privatizable_pattern_has_output_dep(self):
        # C(i,1) written every outer iteration: output dependence.
        proc = build(
            "  DO k = 1, 9\n    DO i = 1, 9\n      A(i) = 1.0\n    END DO\n  END DO",
        )
        deps = array_dependences(proc)
        assert any(d.kind == "output" for d in deps)
