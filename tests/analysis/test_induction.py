"""Induction-variable recognition and closed-form substitution tests."""

from repro.analysis import (
    build_ssa,
    compute_dominance,
    find_induction_vars,
    propagate_constants,
    substitute_induction_vars,
)
from repro.ir import ScalarRef, affine_form, build_cfg, parse_and_build


def analyzed(body, decls="  REAL A(20), D(20)\n  INTEGER m, m2\n"):
    proc = parse_and_build(f"PROGRAM T\n{decls}{body}\nEND PROGRAM\n")
    cfg = build_cfg(proc)
    ssa = build_ssa(cfg)
    cp = propagate_constants(ssa)
    return proc, cfg, ssa, cp


class TestRecognition:
    def test_figure1_induction(self):
        proc, cfg, ssa, cp = analyzed(
            "  m = 2\n  DO i = 2, 9\n    m = m + 1\n    D(m) = 1.0\n  END DO"
        )
        ivs = find_induction_vars(proc, ssa, cp)
        assert len(ivs) == 1
        iv = ivs[0]
        assert iv.symbol.name == "M"
        assert iv.init_value == 2 and iv.stride == 1
        form = affine_form(iv.closed_form)
        # m after the update at index i: i + 1
        assert form.coeff(iv.loop.var) == 1 and form.const == 1

    def test_negative_stride(self):
        proc, cfg, ssa, cp = analyzed(
            "  m = 10\n  DO i = 1, 5\n    m = m - 2\n    D(i) = m\n  END DO"
        )
        ivs = find_induction_vars(proc, ssa, cp)
        assert len(ivs) == 1
        assert ivs[0].stride == -2

    def test_non_constant_init_rejected(self):
        proc, cfg, ssa, cp = analyzed(
            "  m = m2\n  DO i = 1, 5\n    m = m + 1\n    D(m) = 1.0\n  END DO"
        )
        assert find_induction_vars(proc, ssa, cp) == []

    def test_conditional_update_rejected(self):
        proc, cfg, ssa, cp = analyzed(
            "  m = 0\n  DO i = 1, 5\n    IF (A(i) > 0.0) THEN\n      m = m + 1\n"
            "    END IF\n    D(i) = m\n  END DO"
        )
        assert find_induction_vars(proc, ssa, cp) == []

    def test_multiple_defs_rejected(self):
        proc, cfg, ssa, cp = analyzed(
            "  m = 0\n  DO i = 1, 5\n    m = m + 1\n    m = m + 2\n    D(i) = m\n"
            "  END DO"
        )
        assert find_induction_vars(proc, ssa, cp) == []

    def test_non_unit_coefficient_rejected(self):
        proc, cfg, ssa, cp = analyzed(
            "  m = 1\n  DO i = 1, 5\n    m = 2 * m\n    D(i) = m\n  END DO"
        )
        assert find_induction_vars(proc, ssa, cp) == []

    def test_loop_var_itself_not_reported(self):
        proc, cfg, ssa, cp = analyzed("  DO i = 1, 5\n    D(i) = 1.0\n  END DO")
        assert find_induction_vars(proc, ssa, cp) == []

    def test_strided_loop(self):
        proc, cfg, ssa, cp = analyzed(
            "  m = 0\n  DO i = 1, 9, 2\n    m = m + 1\n    D(m) = 1.0\n  END DO"
        )
        ivs = find_induction_vars(proc, ssa, cp)
        assert len(ivs) == 1
        # closed form: 0 + 1*((i - 1 + 2)/2) == (i+1)/2


class TestSubstitution:
    def test_update_rhs_rewritten(self):
        proc, cfg, ssa, cp = analyzed(
            "  m = 2\n  DO i = 2, 9\n    m = m + 1\n    D(m) = 1.0\n  END DO"
        )
        ivs = find_induction_vars(proc, ssa, cp)
        dom = compute_dominance(cfg)
        substitute_induction_vars(proc, ivs, cfg=cfg, ssa=ssa, dom=dom)
        update = ivs[0].update_stmt
        # rhs no longer references m
        assert all(r.symbol.name != "M" for r in update.rhs.refs())

    def test_dominated_uses_substituted(self):
        proc, cfg, ssa, cp = analyzed(
            "  m = 2\n  DO i = 2, 9\n    m = m + 1\n    D(m) = 1.0\n  END DO"
        )
        ivs = find_induction_vars(proc, ssa, cp)
        dom = compute_dominance(cfg)
        substitute_induction_vars(proc, ivs, cfg=cfg, ssa=ssa, dom=dom)
        d_stmt = [s for s in proc.assignments() if not isinstance(s.lhs, ScalarRef)][0]
        form = affine_form(d_stmt.lhs.subscripts[0])
        assert form is not None
        assert form.const == 1  # D(i + 1)

    def test_semantics_preserved(self):
        """Executing before and after substitution gives identical D."""
        import numpy as np

        from repro.codegen import run_sequential

        src = (
            "PROGRAM T\n  REAL A(20), D(20)\n  INTEGER m\n"
            "  m = 2\n  DO i = 2, 9\n    m = m + 1\n    D(m) = A(i)\n  END DO\n"
            "END PROGRAM\n"
        )
        inputs = {"A": np.arange(20, dtype=float)}
        before = run_sequential(parse_and_build(src), inputs).get_array("D")

        proc = parse_and_build(src)
        cfg = build_cfg(proc)
        ssa = build_ssa(cfg)
        cp = propagate_constants(ssa)
        ivs = find_induction_vars(proc, ssa, cp)
        assert ivs
        substitute_induction_vars(
            proc, ivs, cfg=cfg, ssa=ssa, dom=compute_dominance(cfg)
        )
        after = run_sequential(proc, inputs).get_array("D")
        assert np.array_equal(before, after)
