"""Privatizability analysis tests (paper Fig. 3's IsPrivatizable)."""

from repro.analysis import (
    PrivatizabilityInfo,
    build_ssa,
    compute_liveness,
)
from repro.ir import ScalarRef, build_cfg, parse_and_build


def analyzed(body, decls="  REAL A(10), B(10), C(10, 10)\n  REAL x, y\n"):
    proc = parse_and_build(f"PROGRAM T\n{decls}{body}\nEND PROGRAM\n")
    cfg = build_cfg(proc)
    liv = compute_liveness(cfg)
    ssa = build_ssa(cfg)
    return proc, ssa, PrivatizabilityInfo(proc, cfg, ssa, liv)


def def_of(proc, ssa, name, k=0):
    stmts = [
        s
        for s in proc.assignments()
        if isinstance(s.lhs, ScalarRef) and s.lhs.symbol.name == name
    ]
    return ssa.def_of_assignment(stmts[k])


class TestScalars:
    def test_local_temp_privatizable(self):
        proc, ssa, priv = analyzed(
            "  DO i = 1, 9\n    x = B(i)\n    A(i) = x\n  END DO"
        )
        assert priv.is_privatizable(def_of(proc, ssa, "X"))

    def test_live_out_not_privatizable(self):
        proc, ssa, priv = analyzed(
            "  DO i = 1, 9\n    x = B(i)\n    A(i) = x\n  END DO\n  y = x"
        )
        assert not priv.is_privatizable(def_of(proc, ssa, "X"))

    def test_loop_carried_not_privatizable(self):
        proc, ssa, priv = analyzed(
            "  x = 0.0\n  DO i = 1, 9\n    A(i) = x\n    x = B(i)\n  END DO"
        )
        assert not priv.is_privatizable(def_of(proc, ssa, "X", k=1))

    def test_outside_loop_not_privatizable(self):
        proc, ssa, priv = analyzed("  x = 1.0\n  y = x")
        assert not priv.is_privatizable(def_of(proc, ssa, "X"))

    def test_new_clause_asserts(self):
        src = (
            "PROGRAM T\n  REAL A(10), B(10)\n  REAL x, y\n"
            "!HPF$ INDEPENDENT, NEW(X)\n"
            "  DO i = 1, 9\n    A(i) = x\n    x = B(i)\n  END DO\nEND PROGRAM\n"
        )
        proc = parse_and_build(src)
        cfg = build_cfg(proc)
        priv = PrivatizabilityInfo(
            proc, cfg, build_ssa(cfg), compute_liveness(cfg)
        )
        stmts = [
            s for s in proc.assignments() if isinstance(s.lhs, ScalarRef)
        ]
        ssa = priv.ssa
        d = ssa.def_of_assignment(stmts[0])
        assert priv.is_privatizable(d)

    def test_privatization_level_outermost(self):
        proc, ssa, priv = analyzed(
            "  DO i = 1, 9\n    DO j = 1, 9\n      x = B(j)\n      C(i, j) = x\n"
            "    END DO\n  END DO"
        )
        d = def_of(proc, ssa, "X")
        # x is privatizable w.r.t. both loops: level 1 (outermost)
        assert priv.privatization_level(d) == 1

    def test_value_escaping_inner_loop_is_conservative(self):
        proc, ssa, priv = analyzed(
            "  DO i = 1, 9\n    DO j = 1, 9\n      x = B(j)\n      C(i, j) = x\n"
            "    END DO\n    A(i) = x\n  END DO"
        )
        d = def_of(proc, ssa, "X")
        # x escapes the j loop (used at A(i)); if the j loop zero-trips,
        # A(i) observes the previous i iteration's value, so the
        # analysis must conservatively refuse privatization at both
        # levels (phpf reasons identically without trip-count proofs).
        assert priv.privatization_level(d) is None
        assert not priv.is_privatizable(d, proc.body[0])
        inner = proc.body[0].body[0]
        assert not priv.is_privatizable(d, inner)

    def test_deepest_level_prefers_innermost(self):
        proc, ssa, priv = analyzed(
            "  DO i = 1, 9\n    DO j = 1, 9\n      x = B(j)\n      C(i, j) = x\n"
            "    END DO\n  END DO"
        )
        d = def_of(proc, ssa, "X")
        assert priv.deepest_privatization_level(d) == 2
        assert priv.privatization_level(d) == 1


class TestArrays:
    FIG6ISH = (
        "PROGRAM T\n  REAL W(10, 10), R(10, 10)\n"
        "!HPF$ INDEPENDENT, NEW(W)\n"
        "  DO k = 1, 9\n    DO i = 1, 9\n      W(i, 1) = R(i, k)\n    END DO\n"
        "    DO i = 1, 9\n      R(i, k) = W(i, 1)\n    END DO\n  END DO\n"
        "END PROGRAM\n"
    )

    def _analyzed(self, src):
        proc = parse_and_build(src)
        cfg = build_cfg(proc)
        return proc, PrivatizabilityInfo(
            proc, cfg, build_ssa(cfg), compute_liveness(cfg)
        )

    def test_new_clause_array(self):
        proc, priv = self._analyzed(self.FIG6ISH)
        loop = next(proc.loops())
        w = proc.symbols.require("W")
        assert priv.array_privatizable_in(w, loop)

    def test_array_without_clause(self):
        proc, priv = self._analyzed(self.FIG6ISH)
        loop = next(proc.loops())
        r = proc.symbols.require("R")
        assert not priv.array_privatizable_in(r, loop)

    def test_array_new_loops(self):
        proc, priv = self._analyzed(self.FIG6ISH)
        w = proc.symbols.require("W")
        assert len(priv.array_new_loops(w)) == 1

    def test_needs_privatization(self):
        proc, priv = self._analyzed(self.FIG6ISH)
        loop = next(proc.loops())
        w = proc.symbols.require("W")
        # W(i, 1): subscripts invariant/inner w.r.t. the k loop ->
        # memory-based loop-carried dependences.
        assert priv.array_needs_privatization(w, loop)

    def test_no_need_when_indexed_by_loop(self):
        src = (
            "PROGRAM T\n  REAL W(10, 10), R(10, 10)\n"
            "!HPF$ INDEPENDENT, NEW(W)\n"
            "  DO k = 1, 9\n    DO i = 1, 9\n      W(i, k) = R(i, k)\n"
            "    END DO\n  END DO\nEND PROGRAM\n"
        )
        proc, priv = self._analyzed(src)
        loop = next(proc.loops())
        w = proc.symbols.require("W")
        assert not priv.array_needs_privatization(w, loop)
