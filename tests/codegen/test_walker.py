"""Structured walker control-flow tests (via the sequential
interpreter)."""

import numpy as np
import pytest

from repro.codegen import run_sequential
from repro.errors import InterpreterError
from repro.ir import parse_and_build


def run(body, decls="  REAL A(10), B(10)\n", inputs=None):
    proc = parse_and_build(f"PROGRAM T\n{decls}{body}\nEND PROGRAM\n")
    return run_sequential(proc, inputs or {})


class TestLoops:
    def test_simple_loop(self):
        store = run("  DO i = 1, 5\n    A(i) = i\n  END DO")
        assert list(store.get_array("A")[:5]) == [1, 2, 3, 4, 5]

    def test_step_loop(self):
        store = run("  DO i = 1, 9, 2\n    A(i) = 1.0\n  END DO")
        a = store.get_array("A")
        assert list(a[:10:2]) == [1.0] * 5
        assert list(a[1:10:2]) == [0.0] * 5

    def test_negative_step(self):
        store = run("  m = 0\n  DO i = 5, 1, -1\n    m = m + 1\n    A(m) = i\n  END DO")
        assert list(store.get_array("A")[:5]) == [5, 4, 3, 2, 1]

    def test_zero_trip_loop(self):
        store = run("  DO i = 5, 1\n    A(1) = 99.0\n  END DO")
        assert store.get_array("A")[0] == 0.0

    def test_zero_step_rejected(self):
        with pytest.raises(InterpreterError):
            run("  DO i = 1, 5, 0\n    A(i) = 1.0\n  END DO")

    def test_index_visible_after_loop(self):
        store = run("  DO i = 1, 5\n    A(i) = 1.0\n  END DO\n  m = i")
        assert store.get_scalar("M") == 6  # Fortran: index past the end

    def test_nested_loops(self):
        store = run(
            "  m = 0\n  DO i = 1, 3\n    DO j = 1, 3\n      m = m + 1\n"
            "    END DO\n  END DO\n  A(1) = m"
        )
        assert store.get_array("A")[0] == 9.0

    def test_triangular_loop(self):
        store = run(
            "  m = 0\n  DO i = 1, 4\n    DO j = i, 4\n      m = m + 1\n"
            "    END DO\n  END DO\n  A(1) = m"
        )
        assert store.get_array("A")[0] == 10.0


class TestBranches:
    def test_if_then_else(self):
        store = run(
            "  DO i = 1, 4\n    IF (i > 2) THEN\n      A(i) = 1.0\n"
            "    ELSE\n      A(i) = 2.0\n    END IF\n  END DO"
        )
        assert list(store.get_array("A")[:4]) == [2.0, 2.0, 1.0, 1.0]

    def test_one_line_if(self):
        store = run("  DO i = 1, 4\n    IF (i == 2) A(i) = 7.0\n  END DO")
        assert store.get_array("A")[1] == 7.0

    def test_logical_operators(self):
        store = run(
            "  DO i = 1, 6\n    IF (i > 1 .AND. i < 5) A(i) = 1.0\n  END DO"
        )
        assert list(store.get_array("A")[:6]) == [0, 1, 1, 1, 0, 0]


class TestGoto:
    def test_forward_goto_skips(self):
        store = run(
            "  DO i = 1, 4\n    IF (i == 2) GO TO 10\n    A(i) = 1.0\n"
            "10 CONTINUE\n  END DO"
        )
        assert list(store.get_array("A")[:4]) == [1.0, 0.0, 1.0, 1.0]

    def test_goto_out_of_loop(self):
        store = run(
            "  DO i = 1, 10\n    IF (i == 3) GO TO 20\n    A(i) = 1.0\n  END DO\n"
            "20 CONTINUE\n  B(1) = i"
        )
        assert list(store.get_array("A")[:3]) == [1.0, 1.0, 0.0]
        assert store.get_array("B")[0] == 3.0

    def test_backward_goto(self):
        store = run(
            "  m = 0\n"
            "10 CONTINUE\n  m = m + 1\n  IF (m < 4) GO TO 10\n  A(1) = m"
        )
        assert store.get_array("A")[0] == 4.0


class TestStop:
    def test_stop_terminates(self):
        store = run("  A(1) = 1.0\n  STOP\n  A(2) = 2.0")
        assert store.get_array("A")[0] == 1.0
        assert store.get_array("A")[1] == 0.0


class TestArithmetic:
    def test_integer_division_truncation(self):
        store = run("  m = 7 / 2\n  A(1) = m")
        assert store.get_array("A")[0] == 3.0

    def test_intrinsics(self):
        store = run("  A(1) = MAX(1.0, 2.0)\n  A(2) = ABS(-3.0)\n  A(3) = SQRT(16.0)")
        assert list(store.get_array("A")[:3]) == [2.0, 3.0, 4.0]

    def test_power(self):
        store = run("  A(1) = 2.0 ** 3")
        assert store.get_array("A")[0] == 8.0

    def test_store_coercion_to_int(self):
        store = run("  m = 2.7\n  A(1) = m")
        assert store.get_array("A")[0] == 2.0

    def test_subscript_bounds_checked(self):
        with pytest.raises(InterpreterError):
            run("  A(11) = 1.0")

    def test_read_undefined_scalar_rejected(self):
        with pytest.raises(InterpreterError):
            run("  A(1) = q")
