"""Golden-output test: the SPMD pseudo-code for paper Figure 1 is a
stable, reviewed artifact — any change to it must be deliberate."""

from repro.codegen import print_spmd
from repro.core import CompilerOptions, compile_source
from repro.programs import figure1_source

GOLDEN = """\
! SPMD node program for FIG1
! processor grid PROCS(4,); this node: ME = (me0)
! strategy: selected
CALL SHIFT_EXCHANGE(B(I), offset=(-1))  ! vectorized@0
CALL SHIFT_EXCHANGE(C(I), offset=(-1))  ! vectorized@0
M = 2  ! replicated: all processors execute
DO I = 2, (100 - 1)
  CALL SHIFT_EXCHANGE(Y, offset=(-1))  ! inner-loop
  M = (I + 1)  ! privatized: no guard
  X = (B(I) + C(I))  ! guard: IOWN(D((I + 1)))
  Y = (A(I) + B(I))  ! guard: IOWN(A(I))
  Z = (E(I) + F(I))  ! privatized: no guard
  A((I + 1)) = (Y / Z)  ! guard: IOWN(A((I + 1)))
  D((I + 1)) = (X / Z)  ! guard: IOWN(D((I + 1)))
END DO
"""


def test_figure1_spmd_golden():
    compiled = compile_source(figure1_source(n=100, procs=4), CompilerOptions())
    assert print_spmd(compiled) == GOLDEN


def test_golden_changes_with_strategy():
    compiled = compile_source(
        figure1_source(n=100, procs=4), CompilerOptions(strategy="replication")
    )
    text = print_spmd(compiled)
    assert text != GOLDEN
    assert "replicated: all processors execute" in text
