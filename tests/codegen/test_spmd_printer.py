"""SPMD pseudo-code printer and bounds-shrinking tests."""

import pytest

from repro.codegen import all_shrinkable_loops, print_spmd, shrinkable_bounds
from repro.core import CompilerOptions, compile_source
from repro.programs import dgefa_source, figure1_source, tomcatv_source


@pytest.fixture(scope="module")
def fig1():
    return compile_source(figure1_source(n=100, procs=4), CompilerOptions())


@pytest.fixture(scope="module")
def tomcatv():
    return compile_source(tomcatv_source(n=64, niter=2, procs=4), CompilerOptions())


class TestPrinterContent:
    def test_header(self, fig1):
        text = print_spmd(fig1)
        assert "SPMD node program for FIG1" in text
        assert "PROCS(4,)" in text

    def test_vectorized_comm_hoisted_before_loop(self, fig1):
        text = print_spmd(fig1)
        lines = text.splitlines()
        shift_b = next(i for i, l in enumerate(lines) if "SHIFT_EXCHANGE(B(I)" in l)
        do_i = next(i for i, l in enumerate(lines) if l.startswith("DO I"))
        assert shift_b < do_i

    def test_inner_loop_comm_inside_loop(self, fig1):
        text = print_spmd(fig1)
        lines = text.splitlines()
        shift_y = next(i for i, l in enumerate(lines) if "SHIFT_EXCHANGE(Y" in l)
        do_i = next(i for i, l in enumerate(lines) if l.startswith("DO I"))
        assert shift_y > do_i

    def test_guards_annotated(self, fig1):
        text = print_spmd(fig1)
        assert "guard: IOWN(A((I + 1)))" in text
        assert "privatized: no guard" in text
        assert "replicated: all processors execute" in text

    def test_reduction_combine_annotated(self, tomcatv):
        text = print_spmd(tomcatv)
        assert "ALLREDUCE(MAX" in text

    def test_control_flow_annotations(self):
        from repro.programs import figure7_source

        compiled = compile_source(figure7_source(n=64, procs=4), CompilerOptions())
        text = print_spmd(compiled)
        assert "! privatized" in text

    def test_combined_messages_reduce_calls(self):
        src = tomcatv_source(n=64, niter=2, procs=4)
        plain = print_spmd(compile_source(src, CompilerOptions()))
        combined = print_spmd(
            compile_source(src, CompilerOptions(combine_messages=True))
        )
        assert combined.count("SHIFT_EXCHANGE") < plain.count("SHIFT_EXCHANGE")


class TestBoundsShrinking:
    def test_tomcatv_j_loops_shrunk(self, tomcatv):
        text = print_spmd(tomcatv)
        assert "MAX(2, MY_LB0), MIN((64 - 1), MY_UB0)" in text
        assert "shrunk to owned BLOCK segment" in text

    def test_shrunk_loop_count(self, tomcatv):
        shrunk = all_shrinkable_loops(tomcatv)
        # the five j loops: residual nest, reduction nest, forward and
        # backward solve nests, update nest
        assert len(shrunk) == 5

    def test_inner_i_loops_not_shrunk(self, tomcatv):
        """The i dimension is collapsed: no ownership constraint, no
        shrinking."""
        shrunk = all_shrinkable_loops(tomcatv)
        for bounds in shrunk.values():
            assert bounds.loop.var.name == "J"

    def test_guard_folded_into_shrunk_bounds(self, tomcatv):
        text = print_spmd(tomcatv)
        # Statements inside shrunk loops carry no IOWN guards.
        assert "RX(I,J) = " in text
        for line in text.splitlines():
            if line.strip().startswith("RX(I,J) ="):
                assert "IOWN" not in line

    def test_local_range_partitions_iteration_space(self, tomcatv):
        shrunk = next(iter(all_shrinkable_loops(tomcatv).values()))
        lb, ub = 2, 63
        covered = []
        for coord in range(4):
            for lo, hi in shrunk.local_range(coord, lb, ub):
                covered.extend(range(lo, hi + 1))
        assert sorted(covered) == list(range(lb, ub + 1))

    def test_replicated_strategy_blocks_shrinking(self):
        compiled = compile_source(
            tomcatv_source(n=64, niter=2, procs=4),
            CompilerOptions(strategy="replication"),
        )
        # The scalar statements must run everywhere: nests whose body
        # contains replicated scalar assignments cannot be shrunk.
        shrunk = all_shrinkable_loops(compiled)
        assert len(shrunk) < 5

    def test_cyclic_shrinking_dgefa(self):
        compiled = compile_source(dgefa_source(n=32, procs=4), CompilerOptions())
        shrunk = all_shrinkable_loops(compiled)
        cyclic = [b for b in shrunk.values() if b.fmt.kind == "cyclic"]
        assert cyclic
        # Owned stripes of a cyclic j loop: every 4th column.
        ranges = cyclic[0].local_range(1, 1, 12)
        owned = [i for lo, hi in ranges for i in range(lo, hi + 1)]
        assert owned == [2, 6, 10]
