"""The core ↔ comm import cycle is resolved structurally: repro.core
never imports repro.comm (the comm passes register themselves), so the
two packages import cleanly in either order and the driver needs no
lazy imports."""

import pathlib
import subprocess
import sys

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")


def _import_ok(statement: str) -> None:
    result = subprocess.run(
        [sys.executable, "-c", statement],
        env={"PYTHONPATH": SRC},
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr


def test_core_then_comm():
    _import_ok("import repro.core, repro.comm")


def test_comm_then_core():
    _import_ok("import repro.comm, repro.core")


def test_core_alone_supports_analysis():
    _import_ok(
        "import repro.core; "
        "from repro.ir.build import parse_and_build; "
        "src = 'PROGRAM P\\n  REAL A(8)\\n!HPF$ DISTRIBUTE (BLOCK) :: A\\n"
        "  DO i = 1, 8\\n    A(i) = 1.0\\n  END DO\\nEND PROGRAM\\n'; "
        "ctx = repro.core.build_context(parse_and_build(src)); "
        "assert ctx.grid.size >= 1"
    )


def test_driver_has_no_runtime_comm_import():
    driver = (
        pathlib.Path(SRC) / "repro" / "core" / "driver.py"
    ).read_text()
    runtime = [
        line
        for line in driver.splitlines()
        if "comm" in line and ("import" in line)
        and "TYPE_CHECKING" not in line
        and not line.strip().startswith("#")
    ]
    # the only comm reference may live under `if TYPE_CHECKING:`
    for line in runtime:
        assert line.startswith("    from ..comm"), line
        start = driver.splitlines().index(line)
        preceding = driver.splitlines()[:start]
        assert any("if TYPE_CHECKING:" in p for p in preceding[-2:]), line
