"""Paper Figure 4: AlignLevel computation.

"Therefore, in Figure 4, the AlignLevel of A(i,j,k) is 2, which
corresponds to the j-loop, and the AlignLevel of B(s,j,k) is 3,
corresponding to the k-loop, which is the outermost loop in which
subscript s is invariant."
"""

import pytest

from repro.core import (
    CompilerOptions,
    align_level,
    alignment_valid,
    build_context,
    subscript_align_level,
    var_level,
)
from repro.ir import ArrayElemRef, parse_and_build
from repro.programs import figure4_source


@pytest.fixture(scope="module")
def ctx():
    proc = parse_and_build(figure4_source(n=16, p0=2, p1=2))
    return build_context(proc)


def lhs_ref(ctx, name):
    for stmt in ctx.proc.assignments():
        if isinstance(stmt.lhs, ArrayElemRef) and stmt.lhs.symbol.name == name:
            return stmt.lhs, stmt
    raise AssertionError(name)


class TestVarLevel:
    def test_loop_index_levels(self, ctx):
        ref, stmt = lhs_ref(ctx, "A")
        i_sub, j_sub, k_sub = ref.subscripts
        assert var_level(i_sub, stmt, ctx.proc, ctx.ssa) == 1
        assert var_level(j_sub, stmt, ctx.proc, ctx.ssa) == 2
        assert var_level(k_sub, stmt, ctx.proc, ctx.ssa) == 3

    def test_computed_scalar_level(self, ctx):
        """s is (re)defined in the j loop: VarLevel(s) = 2."""
        ref, stmt = lhs_ref(ctx, "B")
        s_sub = ref.subscripts[0]
        assert var_level(s_sub, stmt, ctx.proc, ctx.ssa) == 2


class TestSubscriptAlignLevel:
    def test_affine_index_sal_equals_varlevel(self, ctx):
        ref, stmt = lhs_ref(ctx, "A")
        assert subscript_align_level(ref.subscripts[1], stmt, ctx.proc, ctx.ssa) == 2

    def test_non_affine_scalar_sal_is_varlevel_plus_one(self, ctx):
        """s = i*j is not an affine function of loop indices:
        SubscriptAlignLevel(s) = VarLevel(s) + 1 = 3."""
        ref, stmt = lhs_ref(ctx, "B")
        assert subscript_align_level(ref.subscripts[0], stmt, ctx.proc, ctx.ssa) == 3


class TestAlignLevel:
    def test_alignlevel_A_is_2(self, ctx):
        ref, _ = lhs_ref(ctx, "A")
        mapping = ctx.array_mappings["A"]
        assert align_level(ref, ctx.proc, ctx.ssa, mapping) == 2

    def test_alignlevel_B_is_3(self, ctx):
        ref, _ = lhs_ref(ctx, "B")
        mapping = ctx.array_mappings["B"]
        assert align_level(ref, ctx.proc, ctx.ssa, mapping) == 3

    def test_collapsed_dim_ignored(self, ctx):
        """The k subscript sits in a '*' (collapsed) dimension, so it
        contributes nothing — AlignLevel(A) is 2, not 3."""
        ref, _ = lhs_ref(ctx, "A")
        mapping = ctx.array_mappings["A"]
        assert align_level(ref, ctx.proc, ctx.ssa, mapping) < 3

    def test_restricted_alignlevel(self, ctx):
        """Partial privatization's modified rule: restricting B's
        AlignLevel to grid dim 1 (the j dimension) drops it to 2."""
        ref, _ = lhs_ref(ctx, "B")
        mapping = ctx.array_mappings["B"]
        assert align_level(
            ref, ctx.proc, ctx.ssa, mapping, restrict_grid_dims=(1,)
        ) == 2


class TestValidity:
    def test_validity_against_levels(self, ctx):
        ref_a, _ = lhs_ref(ctx, "A")
        ref_b, _ = lhs_ref(ctx, "B")
        map_a = ctx.array_mappings["A"]
        map_b = ctx.array_mappings["B"]
        # a def privatizable at the j level (2) may align with A(i,j,k)
        assert alignment_valid(ref_a, 2, ctx.proc, ctx.ssa, map_a)
        # ... but not with B(s,j,k)
        assert not alignment_valid(ref_b, 2, ctx.proc, ctx.ssa, map_b)
        # at the k level (3) both are valid
        assert alignment_valid(ref_b, 3, ctx.proc, ctx.ssa, map_b)
