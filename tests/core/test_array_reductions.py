"""Array-valued reductions (paper Section 3.1: "privatizable arrays
used to hold results of a reduction operation are also handled in a
similar manner as scalar variables in reduction computations")."""

import numpy as np
import pytest

from repro.analysis import build_ssa, find_reductions
from repro.codegen import run_sequential
from repro.core import CompilerOptions, compile_source
from repro.ir import build_cfg, parse_and_build
from repro.machine import simulate
from repro.perf import PerfEstimator


ROWSUM = """
PROGRAM ARRSUM
  PARAMETER (n = 8)
  REAL A(n, n), S(n)
!HPF$ PROCESSORS P(2, 2)
!HPF$ ALIGN S(i) WITH A(i, *)
!HPF$ DISTRIBUTE (BLOCK, BLOCK) :: A
  DO i = 1, n
    S(i) = 0.0
  END DO
  DO j = 1, n
    DO i = 1, n
      S(i) = S(i) + A(i, j)
    END DO
  END DO
END PROGRAM
"""


def reductions_of(src):
    proc = parse_and_build(src)
    return find_reductions(proc, build_ssa(build_cfg(proc)))


class TestRecognition:
    def test_rowsum_recognized(self):
        reds = reductions_of(ROWSUM)
        assert len(reds) == 1
        r = reds[0]
        assert r.is_array_reduction
        assert r.symbol.name == "S" and r.op == "+"
        assert r.loop.var.name == "J"

    def test_accumulator_ref_kept(self):
        reds = reductions_of(ROWSUM)
        assert str(reds[0].accumulator) == "S(I)"

    def test_max_form(self):
        src = ROWSUM.replace("S(i) = S(i) + A(i, j)", "S(i) = MAX(S(i), A(i, j))")
        reds = reductions_of(src)
        assert reds and reds[0].op == "MAX"

    def test_varying_subscript_not_recognized(self):
        # The update's own loop drives the subscript: an ordinary sweep.
        src = (
            "PROGRAM T\n  PARAMETER (n = 8)\n  REAL A(n, n), S(n)\n"
            "!HPF$ DISTRIBUTE (*, BLOCK) :: A\n"
            "  DO j = 1, n\n    S(j) = S(j) + A(1, j)\n  END DO\nEND PROGRAM\n"
        )
        reds = reductions_of(src)
        assert not any(r.is_array_reduction for r in reds)

    def test_other_reads_block_recognition(self):
        src = ROWSUM.replace(
            "      S(i) = S(i) + A(i, j)",
            "      S(i) = S(i) + A(i, j)\n      A(i, j) = S(i)",
        )
        reds = reductions_of(src)
        assert not any(r.is_array_reduction for r in reds)

    def test_shape1_per_row_nest(self):
        """DO i { s-init; DO j { S(i) += A(i,j) } }: reduction over j."""
        src = (
            "PROGRAM T\n  PARAMETER (n = 8)\n  REAL A(n, n), S(n)\n"
            "!HPF$ PROCESSORS P(2, 2)\n"
            "!HPF$ ALIGN S(i) WITH A(i, *)\n"
            "!HPF$ DISTRIBUTE (BLOCK, BLOCK) :: A\n"
            "  DO i = 1, n\n    S(i) = 0.0\n    DO j = 1, n\n"
            "      S(i) = S(i) + A(i, j)\n    END DO\n  END DO\nEND PROGRAM\n"
        )
        reds = reductions_of(src)
        array_reds = [r for r in reds if r.is_array_reduction]
        assert len(array_reds) == 1
        assert array_reds[0].loop.var.name == "J"


class TestMappingAndComm:
    def test_special_mapping_applied(self):
        compiled = compile_source(ROWSUM, CompilerOptions())
        assert len(compiled.scalar_pass.array_reductions) == 1
        (_, mapping), = compiled.scalar_pass.array_reductions.values()
        assert mapping.replicated_grid_dims == (1,)
        assert mapping.target.symbol.name == "A"

    def test_no_broadcast_of_contributions(self):
        compiled = compile_source(ROWSUM, CompilerOptions())
        assert not [e for e in compiled.comm.events if e.ref.symbol.name == "A"]
        assert len(compiled.comm.reduces) == 1

    def test_combine_vector_length(self):
        compiled = compile_source(ROWSUM, CompilerOptions())
        combine = compiled.comm.reduces[0]
        assert combine.elements == 8  # whole S vector per combine

    def test_baseline_broadcasts(self):
        compiled = compile_source(ROWSUM, CompilerOptions(align_reductions=False))
        assert not compiled.scalar_pass.array_reductions
        assert [e for e in compiled.comm.events if e.ref.symbol.name == "A"]

    def test_special_handling_faster(self):
        special = PerfEstimator(
            compile_source(ROWSUM, CompilerOptions())
        ).estimate().total_time
        baseline = PerfEstimator(
            compile_source(ROWSUM, CompilerOptions(align_reductions=False))
        ).estimate().total_time
        assert special < baseline


class TestSemantics:
    @pytest.mark.parametrize("align", [True, False])
    def test_rowsum_correct(self, align):
        inputs = {
            "A": np.arange(64, dtype=float).reshape(8, 8),
            "S": np.zeros(8),
        }
        seq = run_sequential(parse_and_build(ROWSUM), inputs)
        sim = simulate(
            compile_source(ROWSUM, CompilerOptions(align_reductions=align)), inputs
        )
        assert np.allclose(sim.gather("S"), seq.get_array("S"))
        assert np.allclose(sim.gather("S"), inputs["A"].sum(axis=1))
        assert sim.stats.unexpected_fetches == 0

    def test_max_rowwise_correct(self):
        src = ROWSUM.replace("S(i) = S(i) + A(i, j)", "S(i) = MAX(S(i), A(i, j))")
        rng = np.random.default_rng(8)
        inputs = {"A": rng.uniform(0, 10, (8, 8)), "S": np.zeros(8)}
        sim = simulate(compile_source(src, CompilerOptions()), inputs)
        assert np.allclose(sim.gather("S"), inputs["A"].max(axis=1))

    def test_shape1_correct(self):
        src = (
            "PROGRAM T\n  PARAMETER (n = 8)\n  REAL A(n, n), S(n)\n"
            "!HPF$ PROCESSORS P(2, 2)\n"
            "!HPF$ ALIGN S(i) WITH A(i, *)\n"
            "!HPF$ DISTRIBUTE (BLOCK, BLOCK) :: A\n"
            "  DO i = 1, n\n    S(i) = 0.0\n    DO j = 1, n\n"
            "      S(i) = S(i) + A(i, j)\n    END DO\n  END DO\nEND PROGRAM\n"
        )
        rng = np.random.default_rng(2)
        inputs = {"A": rng.uniform(0, 1, (8, 8)), "S": np.zeros(8)}
        sim = simulate(compile_source(src, CompilerOptions()), inputs)
        assert np.allclose(sim.gather("S"), inputs["A"].sum(axis=1))
        assert sim.stats.unexpected_fetches == 0

    def test_combines_charged(self):
        inputs = {
            "A": np.arange(64, dtype=float).reshape(8, 8),
            "S": np.zeros(8),
        }
        sim = simulate(compile_source(ROWSUM, CompilerOptions()), inputs)
        assert sim.stats.reductions >= 1
