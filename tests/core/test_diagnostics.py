"""Compiler diagnostics tests."""

import pytest

from repro.core import CompilerOptions, compile_source, diagnose, render_diagnostics


def compile_body(body, decls="", procs=4, **opts):
    src = (
        "PROGRAM T\n  PARAMETER (n = 32)\n"
        "  REAL A(n), B(n), C(n), E(n)\n" + decls +
        "!HPF$ ALIGN (i) WITH A(i) :: B, C\n"
        "!HPF$ ALIGN (i) WITH A(*) :: E\n"
        "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
        + body + "\nEND PROGRAM\n"
    )
    return compile_source(src, CompilerOptions(num_procs=procs, **opts))


def codes(compiled):
    return [d.code for d in diagnose(compiled)]


class TestReplicationReasons:
    def test_loop_bound_reason(self):
        compiled = compile_body(
            "  DO i = 1, n\n    m = INT(B(i))\n    DO j = 1, m\n"
            "      A(j) = E(j)\n    END DO\n  END DO",
        )
        diags = [d for d in diagnose(compiled) if d.code == "W-REPL-SCALAR"]
        assert diags
        assert "loop bound" in diags[0].message

    def test_lhs_subscript_reason(self):
        compiled = compile_body(
            "  DO i = 1, n\n    l = INT(B(i)) + 1\n    A(l) = E(i)\n  END DO",
            decls="  INTEGER l\n",
        )
        diags = [d for d in diagnose(compiled) if d.code == "W-REPL-SCALAR"]
        assert diags
        assert "ownership guard" in diags[0].message

    def test_no_warning_for_aligned_scalar(self):
        compiled = compile_body(
            "  DO i = 1, n\n    x = B(i) + C(i)\n    A(i) = x\n  END DO"
        )
        assert "W-REPL-SCALAR" not in codes(compiled)


class TestArrayWarnings:
    def test_unmapped_array_flagged(self):
        compiled = compile_body(
            "  DO i = 1, n\n    A(i) = Z(i)\n  END DO",
            decls="  REAL Z(n)\n",
        )
        diags = [d for d in diagnose(compiled) if d.code == "W-REPL-ARRAY"]
        assert any("Z" in d.message for d in diags)

    def test_explicit_star_alignment_not_flagged(self):
        compiled = compile_body("  DO i = 1, n\n    A(i) = E(i)\n  END DO")
        diags = [d for d in diagnose(compiled) if d.code == "W-REPL-ARRAY"]
        assert not any("E " in d.message for d in diags)


class TestCommWarnings:
    def test_inner_loop_comm_flagged(self):
        compiled = compile_body(
            "  DO i = 2, n - 1\n    y = A(i) + B(i)\n    A(i + 1) = y\n  END DO"
        )
        assert "W-INNER-COMM" in codes(compiled)

    def test_vectorized_comm_not_flagged(self):
        compiled = compile_body(
            "  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO"
        )
        assert "W-INNER-COMM" not in codes(compiled)


class TestInfoNotes:
    def test_producer_veto_noted(self):
        compiled = compile_body(
            "  DO i = 2, n - 1\n    y = A(i) + B(i)\n    A(i + 1) = y\n  END DO"
        )
        assert "I-PRODUCER" in codes(compiled)

    def test_induction_noted(self):
        compiled = compile_body(
            "  m = 0\n  DO i = 1, n - 1\n    m = m + 1\n    A(m) = B(i)\n  END DO",
            decls="  INTEGER m\n",
        )
        assert "I-INDUCTION" in codes(compiled)

    def test_reduction_noted(self):
        compiled = compile_body(
            "  s = 0.0\n  DO i = 1, n\n    s = s + B(i)\n  END DO\n  A(1) = s",
            decls="  REAL s\n",
        )
        assert "I-REDUCTION" in codes(compiled)

    def test_array_privatization_noted(self):
        from repro.programs import figure6_source

        compiled = compile_source(
            figure6_source(n=12, p0=2, p1=2), CompilerOptions()
        )
        assert "I-ARRAY-PRIV" in codes(compiled)

    def test_privatization_failure_warned(self):
        from repro.programs import figure6_source

        compiled = compile_source(
            figure6_source(n=12, p0=2, p1=2),
            CompilerOptions(partial_privatization=False),
        )
        assert "W-PRIV-FAIL" in codes(compiled)


class TestRendering:
    def test_render_empty(self):
        compiled = compile_body("  DO i = 1, n\n    A(i) = B(i)\n  END DO")
        diags = [d for d in diagnose(compiled) if d.severity == "warning"]
        assert render_diagnostics(diags) in ("no diagnostics",) or diags == []

    def test_render_format(self):
        compiled = compile_body(
            "  DO i = 2, n - 1\n    y = A(i) + B(i)\n    A(i + 1) = y\n  END DO"
        )
        text = render_diagnostics(diagnose(compiled))
        assert "WARNING W-INNER-COMM" in text
        assert "INFO I-PRODUCER" in text

    def test_warnings_sorted_first(self):
        compiled = compile_body(
            "  s = 0.0\n"
            "  DO i = 2, n - 1\n    y = A(i) + B(i)\n    A(i + 1) = y\n"
            "    s = s + B(i)\n  END DO\n  A(1) = s",
            decls="  REAL s\n",
        )
        diags = diagnose(compiled)
        severities = [d.severity for d in diags]
        assert severities == sorted(severities, key=lambda s: s != "warning")


class TestBenchmarkDiagnostics:
    """The diagnostics pass runs cleanly over every benchmark."""

    def test_all_benchmarks_diagnosable(self):
        from repro.programs import appsp_source, dgefa_source, tomcatv_source

        for src in (
            tomcatv_source(n=16, niter=1, procs=4),
            dgefa_source(n=16, procs=4),
            appsp_source(nx=8, ny=8, nz=8, niter=1, procs=4),
        ):
            compiled = compile_source(src, CompilerOptions())
            text = render_diagnostics(diagnose(compiled))
            assert isinstance(text, str) and text

    def test_tomcatv_reports_reductions_and_producer_notes(self):
        from repro.programs import tomcatv_source

        compiled = compile_source(
            tomcatv_source(n=16, niter=1, procs=4), CompilerOptions()
        )
        cs = codes(compiled)
        assert "I-REDUCTION" in cs
