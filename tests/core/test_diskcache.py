"""The persistent compile cache: content addressing, corruption
safety, and — the contract everything else rides on — byte-identical
simulation results whether a program was compiled fresh or revived
from disk."""

import json
import pickle

import pytest

from repro.core.diskcache import (
    CACHE_SCHEMA,
    CompileCache,
    as_compile_cache,
    default_cache_dir,
    options_signature,
    pipeline_fingerprint,
)
from repro.core.driver import CompilerOptions, compile_source
from repro.machine.simulator import simulate
from repro.programs import tomcatv_inputs, tomcatv_source

SRC = tomcatv_source(n=8, niter=1, procs=2)
OPTS = CompilerOptions(num_procs=2)


def _compile():
    return compile_source(SRC, OPTS)


def _stats(compiled):
    inputs = tomcatv_inputs(8)
    return json.dumps(
        simulate(compiled, inputs).canonical_stats(), sort_keys=True
    )


class TestKeys:
    def test_key_is_stable(self, tmp_path):
        cache = CompileCache(tmp_path)
        assert cache.key(SRC, OPTS) == cache.key(SRC, OPTS)

    def test_key_varies_with_source(self, tmp_path):
        cache = CompileCache(tmp_path)
        assert cache.key(SRC, OPTS) != cache.key(SRC + "\n", OPTS)

    def test_key_varies_with_options(self, tmp_path):
        cache = CompileCache(tmp_path)
        other = CompilerOptions(num_procs=2, strategy="producer")
        assert cache.key(SRC, OPTS) != cache.key(SRC, other)

    def test_key_varies_with_machine(self, tmp_path):
        from repro.model import MachineModel

        cache = CompileCache(tmp_path)
        other = CompilerOptions.from_overrides(
            OPTS, machine=MachineModel(alpha=1e-9)
        )
        assert cache.key(SRC, OPTS) != cache.key(SRC, other)

    def test_key_varies_with_pipeline(self, tmp_path):
        cache = CompileCache(tmp_path)
        assert cache.key(SRC, OPTS) != cache.key(
            SRC, OPTS, pipeline=("grid", "ssa")
        )

    def test_options_signature_covers_every_field(self):
        signature = options_signature(OPTS)
        import dataclasses

        for field in dataclasses.fields(CompilerOptions):
            assert f"{field.name}=" in signature

    def test_fingerprint_includes_schema(self):
        assert pipeline_fingerprint() == pipeline_fingerprint()
        assert pipeline_fingerprint(("grid",)) != pipeline_fingerprint(("ssa",))


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        cache = CompileCache(tmp_path)
        compiled, hit = cache.get_or_compile(SRC, OPTS, _compile)
        assert not hit
        again, hit = cache.get_or_compile(SRC, OPTS, _compile)
        assert hit
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert _stats(compiled) == _stats(again)

    def test_canonical_stats_identical_cold_vs_warm(self, tmp_path):
        cache = CompileCache(tmp_path)
        cold, _ = cache.get_or_compile(SRC, OPTS, _compile)
        warm, hit = cache.get_or_compile(SRC, OPTS, _compile)
        assert hit
        assert _stats(cold) == _stats(warm)

    def test_warm_program_report_matches(self, tmp_path):
        cache = CompileCache(tmp_path)
        cold, _ = cache.get_or_compile(SRC, OPTS, _compile)
        warm, _ = cache.get_or_compile(SRC, OPTS, _compile)
        assert cold.report() == warm.report()

    def test_entry_count_and_clear(self, tmp_path):
        cache = CompileCache(tmp_path)
        cache.get_or_compile(SRC, OPTS, _compile)
        assert cache.entry_count() == 1
        assert cache.total_bytes() > 0
        assert cache.clear() == 1
        assert cache.entry_count() == 0


class TestCorruptionSafety:
    def test_truncated_entry_is_a_miss_and_removed(self, tmp_path):
        cache = CompileCache(tmp_path)
        key = cache.key(SRC, OPTS)
        cache.get_or_compile(SRC, OPTS, _compile)
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:40])
        assert cache.load(key) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()
        # and the round-trip after recovery still matches a fresh build
        recovered, hit = cache.get_or_compile(SRC, OPTS, _compile)
        assert not hit
        assert _stats(recovered) == _stats(_compile())

    def test_garbage_entry_is_a_miss(self, tmp_path):
        cache = CompileCache(tmp_path)
        key = cache.key(SRC, OPTS)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle at all")
        assert cache.load(key) is None
        assert cache.stats.corrupt == 1

    def test_wrong_schema_entry_is_a_miss(self, tmp_path):
        cache = CompileCache(tmp_path)
        key = cache.key(SRC, OPTS)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        with open(path, "wb") as handle:
            pickle.dump(("repro-compile-cache", CACHE_SCHEMA + 1, None), handle)
        assert cache.load(key) is None
        assert cache.stats.corrupt == 1

    def test_stale_pipeline_fingerprint_recompiles(self, tmp_path):
        cache = CompileCache(tmp_path)
        cache.get_or_compile(SRC, OPTS, _compile, pipeline=("grid", "ssa"))
        # same source+options under the real pipeline: different key,
        # so the stale entry is simply never consulted
        compiled, hit = cache.get_or_compile(SRC, OPTS, _compile)
        assert not hit
        assert _stats(compiled) == _stats(_compile())

    def test_store_failure_degrades_gracefully(self, tmp_path):
        cache = CompileCache(tmp_path / "root")
        compiled = _compile()

        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("nope")

        assert cache.store("ab" * 32, Unpicklable()) is False
        assert cache.stats.store_errors == 1
        # a real program still stores fine afterwards
        assert cache.store(cache.key(SRC, OPTS), compiled) is True


class TestUnpickledIdentity:
    def test_revived_procedure_gets_fresh_uid(self, tmp_path):
        """A revived CompiledProgram must never alias the uid-keyed
        lowering/analysis caches of live procedures."""
        cache = CompileCache(tmp_path)
        cold, _ = cache.get_or_compile(SRC, OPTS, _compile)
        warm, hit = cache.get_or_compile(SRC, OPTS, _compile)
        assert hit
        assert warm.proc.uid != cold.proc.uid


class TestHelpers:
    def test_default_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_default_cache_dir_xdg(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / "repro"

    def test_as_compile_cache_forms(self, tmp_path):
        assert as_compile_cache(None) is None
        assert as_compile_cache(False) is None
        cache = CompileCache(tmp_path)
        assert as_compile_cache(cache) is cache
        assert as_compile_cache(tmp_path).root == tmp_path
        assert as_compile_cache(True).root == default_cache_dir()

    def test_stats_dict_shape(self, tmp_path):
        cache = CompileCache(tmp_path)
        stats = cache.stats_dict()
        assert stats["root"] == str(tmp_path)
        assert stats["entries"] == 0
        assert stats["schema"] == CACHE_SCHEMA
        assert set(stats["session"]) == {
            "hits", "misses", "stores", "corrupt", "store_errors",
        }


class TestCompileManyIntegration:
    def test_compile_many_uses_cache(self, tmp_path):
        from repro.core.driver import compile_many

        cache = CompileCache(tmp_path)
        jobs = [
            {"source": SRC, "options": {"num_procs": 2}},
            {"source": SRC, "options": {"num_procs": 4}},
        ]
        compile_many(jobs, cache=cache)
        assert cache.stats.misses == 2 and cache.stats.stores == 2
        compile_many(jobs, cache=cache)
        assert cache.stats.hits == 2
