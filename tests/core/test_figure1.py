"""Paper Figure 1: the four mapping alternatives for privatized scalars.

"It is necessary to privatize each of the variables m, x, y, and z to
achieve partitioned execution of the loop. ... [x] is aligned with the
consumer reference D(m) ... The preferable alignment for the variable y
is with the producer reference A(i) ... [z] can be privatized without
explicit alignment ... Any scalar variable recognized as an induction
variable, such as m, should be privatized without alignment [after
closed-form substitution m+1 -> i+1]."
"""

import pytest

from repro.core import (
    AlignedTo,
    CompilerOptions,
    PrivateNoAlign,
    Replicated,
    compile_source,
)
from repro.ir import ScalarRef
from repro.programs import figure1_source


@pytest.fixture(scope="module")
def compiled():
    return compile_source(figure1_source(n=100, procs=4), CompilerOptions())


def mapping_of(compiled, name, k=0):
    stmts = [
        s
        for s in compiled.proc.assignments()
        if isinstance(s.lhs, ScalarRef) and s.lhs.symbol.name == name
    ]
    return compiled.scalar_mapping_of(stmts[k].stmt_id), stmts[k]


class TestInductionVariableM:
    def test_closed_form_substituted(self, compiled):
        _, update = mapping_of(compiled, "M", k=1)
        assert str(update.rhs) == "(I + 1)"

    def test_recognized_as_induction(self, compiled):
        assert any(iv.symbol.name == "M" for iv in compiled.ctx.inductions)

    def test_privatized_without_alignment(self, compiled):
        mapping, _ = mapping_of(compiled, "M", k=1)
        assert isinstance(mapping, PrivateNoAlign)

    def test_subscript_use_rewritten(self, compiled):
        # D(m) became D(i + 1)
        d_stmts = [
            s
            for s in compiled.proc.assignments()
            if not isinstance(s.lhs, ScalarRef) and s.lhs.symbol.name == "D"
        ]
        assert str(d_stmts[0].lhs.subscripts[0]) == "(I + 1)"


class TestConsumerAlignmentX:
    def test_x_aligned_with_consumer(self, compiled):
        mapping, _ = mapping_of(compiled, "X")
        assert isinstance(mapping, AlignedTo)
        assert mapping.is_consumer
        assert mapping.target.symbol.name == "D"

    def test_b_c_communication_vectorized(self, compiled):
        """The shifts for B(i), C(i) move outside the i-loop."""
        events = [
            e
            for e in compiled.comm.events
            if e.ref.symbol.name in ("B", "C")
        ]
        assert len(events) == 2
        assert all(e.placement_level == 0 for e in events)
        assert all(e.pattern.kind == "shift" for e in events)


class TestProducerAlignmentY:
    def test_y_aligned_with_producer(self, compiled):
        mapping, _ = mapping_of(compiled, "Y")
        assert isinstance(mapping, AlignedTo)
        assert not mapping.is_consumer
        assert mapping.target.symbol.name in ("A", "B")

    def test_y_transfer_in_inner_loop(self, compiled):
        """y's value travels to the owner of A(i+1) inside the loop."""
        events = [
            e
            for e in compiled.comm.events
            if isinstance(e.ref, ScalarRef) and e.ref.symbol.name == "Y"
        ]
        assert len(events) == 1
        assert events[0].is_inner_loop


class TestNoAlignZ:
    def test_z_private_no_align(self, compiled):
        mapping, _ = mapping_of(compiled, "Z")
        assert isinstance(mapping, PrivateNoAlign)

    def test_no_communication_for_z(self, compiled):
        assert not [
            e
            for e in compiled.comm.events
            if isinstance(e.ref, ScalarRef) and e.ref.symbol.name == "Z"
        ]

    def test_replicated_inputs_not_broadcast(self, compiled):
        assert not [
            e for e in compiled.comm.events if e.ref.symbol.name in ("E", "F")
        ]


class TestInitialAssignment:
    def test_m_init_outside_loop_replicated(self, compiled):
        mapping, _ = mapping_of(compiled, "M", k=0)
        assert isinstance(mapping, Replicated)


class TestBaselineStrategies:
    def test_replication_strategy_maps_all_replicated(self):
        compiled = compile_source(
            figure1_source(n=100, procs=4), CompilerOptions(strategy="replication")
        )
        for stmt in compiled.proc.assignments():
            if isinstance(stmt.lhs, ScalarRef):
                assert isinstance(
                    compiled.scalar_mapping_of(stmt.stmt_id), Replicated
                )

    def test_producer_strategy_never_uses_consumer(self):
        compiled = compile_source(
            figure1_source(n=100, procs=4), CompilerOptions(strategy="producer")
        )
        for stmt in compiled.proc.assignments():
            mapping = compiled.scalar_mapping_of(stmt.stmt_id)
            if isinstance(mapping, AlignedTo):
                assert not mapping.is_consumer

    def test_noalign_strategy(self):
        compiled = compile_source(
            figure1_source(n=100, procs=4), CompilerOptions(strategy="noalign")
        )
        kinds = set()
        for stmt in compiled.proc.assignments():
            mapping = compiled.scalar_mapping_of(stmt.stmt_id)
            if mapping is not None:
                kinds.add(type(mapping).__name__)
        assert "AlignedTo" not in kinds
        assert "PrivateNoAlign" in kinds
