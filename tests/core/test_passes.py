"""PassManager / AnalysisCache / PipelineTimings unit tests."""

import pytest

from repro.core import (
    DEFAULT_PIPELINE,
    AnalysisCache,
    CompilerOptions,
    Pass,
    PassError,
    PassManager,
    UnknownPassError,
    build_context,
    compile_procedure,
    compile_source,
    registered_pass,
    registered_passes,
)
from repro.ir.build import parse_and_build

STENCIL = (
    "PROGRAM STEN\n"
    "  REAL A(32), B(32)\n"
    "  REAL t\n"
    "!HPF$ PROCESSORS P(4)\n"
    "!HPF$ ALIGN B(i) WITH A(i)\n"
    "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
    "  DO i = 2, 31\n"
    "    t = B(i - 1) + B(i + 1)\n"
    "    A(i) = 0.5 * t\n"
    "  END DO\n"
    "END PROGRAM\n"
)

# KK = KK + 2 each iteration: a recognized induction variable, so the
# induction pass substitutes its closed form and mutates the IR.
INDUCTION = (
    "PROGRAM IND\n"
    "  REAL A(64), B(64)\n"
    "  INTEGER KK\n"
    "!HPF$ PROCESSORS P(4)\n"
    "!HPF$ DISTRIBUTE (BLOCK) :: A, B\n"
    "  KK = 0\n"
    "  DO i = 1, 32\n"
    "    KK = KK + 2\n"
    "    A(KK) = B(KK)\n"
    "  END DO\n"
    "END PROGRAM\n"
)


def test_default_pipeline_registered():
    registered = registered_passes()
    for name in DEFAULT_PIPELINE:
        assert name in registered, name
    # comm passes are wired in by repro.comm, not repro.core
    assert registered["comm-analysis"] is not None


def test_unknown_pass_has_actionable_error():
    manager = PassManager(pipeline=("grid", "no-such-pass"))
    proc = parse_and_build(STENCIL)
    with pytest.raises(UnknownPassError, match="repro.comm"):
        manager.run(proc, CompilerOptions())


def test_missing_requirement_raises():
    manager = PassManager(pipeline=("induction",))  # needs "frontend"
    proc = parse_and_build(STENCIL)
    with pytest.raises(PassError, match="requires"):
        manager.run(proc, CompilerOptions())


def test_run_produces_all_products():
    manager = PassManager()
    state, timings = manager.run(parse_and_build(STENCIL), CompilerOptions())
    for product in (
        "grid",
        "frontend",
        "inductions",
        "reductions",
        "priv",
        "array_mappings",
        "ctx",
        "scalar_pass",
        "array_result",
        "cf_decisions",
        "executors",
        "comm",
    ):
        assert product in state, product
    assert timings.total_seconds > 0
    assert set(timings.passes) >= {"ssa", "scalar-mapping", "comm-analysis"}


def test_second_compile_hits_analysis_cache():
    manager = PassManager()
    proc = parse_and_build(STENCIL)
    compile_procedure(proc, CompilerOptions(), manager=manager)
    second = compile_procedure(
        proc, CompilerOptions(strategy="producer"), manager=manager
    )
    for cached_pass in ("ssa", "reductions", "privatizability", "context"):
        assert second.timings.cache_hit(cached_pass), cached_pass
    # mapping back end is option-dependent and re-runs
    assert not second.timings.cache_hit("scalar-mapping")
    assert manager.cache.stats.hits > 0


def test_cache_distinguishes_options():
    """num_procs flows into the cache key of the grid and of everything
    downstream of it (transitive option closure)."""
    manager = PassManager()
    proc = parse_and_build(STENCIL)
    a = compile_procedure(proc, CompilerOptions(num_procs=4), manager=manager)
    b = compile_procedure(proc, CompilerOptions(num_procs=8), manager=manager)
    assert a.grid.size == 4
    assert b.grid.size == 8
    assert not b.timings.cache_hit("grid")
    assert not b.timings.cache_hit("context")
    # IR analyses don't depend on the grid and are still shared
    assert b.timings.cache_hit("ssa")


def test_transform_pass_invalidates_and_reruns_frontend():
    manager = PassManager()
    proc = parse_and_build(INDUCTION)
    epoch_before = proc.ir_epoch
    first = compile_procedure(proc, CompilerOptions(), manager=manager)
    assert first.ctx.inductions, "expected KK to be recognized as induction var"
    assert proc.ir_epoch > epoch_before
    # the substitution forced a frontend recompute within the first run
    assert first.timings.passes["ssa"].calls == 2
    assert manager.cache.stats.invalidations > 0
    # second compile: the substituted IR + its inductions replay from cache
    second = compile_procedure(proc, CompilerOptions(), manager=manager)
    assert second.timings.cache_hit("ssa")
    assert second.timings.cache_hit("induction")
    assert second.ctx.inductions == first.ctx.inductions
    assert second.report() == first.report()


def test_external_mutation_invalidates_cache():
    """Any finalize() after a tree change (e.g. scalar expansion)
    bumps the epoch; the manager must not serve stale analyses."""
    manager = PassManager()
    proc = parse_and_build(STENCIL)
    first = compile_procedure(proc, CompilerOptions(), manager=manager)
    proc.finalize()  # simulate an out-of-pipeline transform
    second = compile_procedure(proc, CompilerOptions(), manager=manager)
    assert not second.timings.cache_hit("ssa")
    assert second.report() == first.report()


def test_parse_cache_shares_ir():
    manager = PassManager()
    a = compile_source(STENCIL, CompilerOptions(), manager=manager)
    b = compile_source(STENCIL, CompilerOptions(), manager=manager)
    assert a.proc is b.proc
    assert b.timings.cache_hit("parse")
    assert a.report() == b.report()


def test_build_context_seeds_and_overrides():
    from repro.mapping.grid import default_grid

    proc = parse_and_build(STENCIL)
    ctx = build_context(proc)
    assert ctx.grid.size == 4  # PROCESSORS P(4)
    override = default_grid(16, rank=1)
    assert build_context(parse_and_build(STENCIL), grid=override).grid.size == 16
    assert build_context(parse_and_build(STENCIL), num_procs=8).grid.size == 8
    no_subst = build_context(parse_and_build(INDUCTION), substitute_inductions=False)
    assert no_subst.inductions == []
    subst = build_context(parse_and_build(INDUCTION))
    assert subst.inductions


def test_timings_render_and_merge():
    manager = PassManager()
    compiled = compile_source(STENCIL, CompilerOptions(), manager=manager)
    rendered = compiled.timings.render()
    assert "parse" in rendered and "comm-analysis" in rendered and "total" in rendered
    merged = compiled.timings.merge(
        compile_source(STENCIL, CompilerOptions(), manager=manager).timings
    )
    assert merged.passes["parse"].calls == 2
    data = merged.as_dict()
    assert data["total_seconds"] > 0
    assert any(p["name"] == "ssa" for p in data["passes"])


def test_analysis_cache_api():
    cache = AnalysisCache()
    manager = PassManager(cache=cache)
    proc = parse_and_build(STENCIL)
    compile_procedure(proc, CompilerOptions(), manager=manager)
    assert len(cache) > 0
    cache.clear()
    assert len(cache) == 0


def test_registered_pass_objects_are_declarative():
    ssa = registered_pass("ssa")
    assert isinstance(ssa, Pass)
    assert ssa.provides == ("frontend",)
    induction = registered_pass("induction")
    assert induction.transforms_ir
    comm = registered_pass("comm-analysis")
    assert "ctx" in comm.requires and "executors" in comm.requires
