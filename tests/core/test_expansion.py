"""Scalar expansion (related-work comparison) tests."""

import numpy as np
import pytest

from repro.codegen import run_sequential
from repro.core import CompilerOptions, compile_procedure, compile_source
from repro.core.expansion import expand_scalars
from repro.ir import ArrayElemRef, ScalarRef, parse_and_build
from repro.machine import simulate
from repro.perf import memory_report


SRC = """
PROGRAM SM
  PARAMETER (n = 32)
  REAL U(n), V(n)
  REAL t
!HPF$ PROCESSORS P(4)
!HPF$ ALIGN V(i) WITH U(i)
!HPF$ DISTRIBUTE (BLOCK) :: U
  DO i = 2, n - 1
    t = U(i - 1) + 2.0 * U(i) + U(i + 1)
    V(i) = 0.25 * t
  END DO
END PROGRAM
"""


class TestTransformation:
    def test_scalar_becomes_array(self):
        result = expand_scalars(SRC, num_procs=4)
        assert result.expanded == {"T": "T_XP"}
        exp = result.proc.symbols.require("T_XP")
        assert exp.is_array
        assert exp.dims == ((2, 31),)

    def test_all_references_rewritten(self):
        result = expand_scalars(SRC, num_procs=4)
        for stmt in result.proc.assignments():
            for ref in list(stmt.uses()) + list(stmt.defs()):
                assert not (
                    isinstance(ref, ScalarRef) and ref.symbol.name == "T"
                )

    def test_expanded_array_indexed_by_loop_var(self):
        result = expand_scalars(SRC, num_procs=4)
        writes = [
            s.lhs
            for s in result.proc.assignments()
            if isinstance(s.lhs, ArrayElemRef) and s.lhs.symbol.name == "T_XP"
        ]
        assert writes and str(writes[0].subscripts[0]) == "I"

    def test_alignment_spec_created(self):
        result = expand_scalars(SRC, num_procs=4)
        spec = result.proc.align_of(result.proc.symbols.require("T_XP"))
        assert spec is not None

    def test_semantics_preserved(self):
        inputs = {"U": np.random.default_rng(2).uniform(0, 1, 32)}
        seq = run_sequential(parse_and_build(SRC), inputs)
        result = expand_scalars(SRC, num_procs=4)
        exp_seq = run_sequential(result.proc, inputs)
        assert np.allclose(exp_seq.get_array("V"), seq.get_array("V"))

    def test_parallel_semantics_preserved(self):
        inputs = {"U": np.random.default_rng(3).uniform(0, 1, 32)}
        seq = run_sequential(parse_and_build(SRC), inputs)
        result = expand_scalars(SRC, num_procs=4)
        compiled = compile_procedure(result.proc, CompilerOptions())
        sim = simulate(compiled, inputs)
        assert np.allclose(sim.gather("V"), seq.get_array("V"))
        assert sim.stats.unexpected_fetches == 0


class TestExclusions:
    def test_reductions_not_expanded(self):
        src = (
            "PROGRAM T\n  PARAMETER (n = 16)\n  REAL B(n)\n  REAL s\n"
            "!HPF$ DISTRIBUTE (BLOCK) :: B\n"
            "  s = 0.0\n  DO i = 1, n\n    s = s + B(i)\n  END DO\n"
            "  B(1) = s\nEND PROGRAM\n"
        )
        result = expand_scalars(src, num_procs=4)
        assert "S" not in result.expanded

    def test_induction_vars_not_expanded(self):
        src = (
            "PROGRAM T\n  PARAMETER (n = 16)\n  REAL B(n)\n  INTEGER m\n"
            "!HPF$ DISTRIBUTE (BLOCK) :: B\n"
            "  m = 0\n  DO i = 1, n - 1\n    m = m + 1\n    B(m) = 1.0\n  END DO\n"
            "END PROGRAM\n"
        )
        result = expand_scalars(src, num_procs=4)
        assert "M" not in result.expanded

    def test_non_privatizable_not_expanded(self):
        src = (
            "PROGRAM T\n  PARAMETER (n = 16)\n  REAL B(n)\n  REAL x\n"
            "!HPF$ DISTRIBUTE (BLOCK) :: B\n"
            "  x = 0.0\n  DO i = 1, n\n    B(i) = x\n    x = B(i) + 1.0\n"
            "  END DO\nEND PROGRAM\n"
        )
        result = expand_scalars(src, num_procs=4)
        assert "X" not in result.expanded


class TestMemoryComparison:
    def test_expansion_costs_memory(self):
        """The paper's framework gets expansion's parallelism with O(1)
        extra storage; expansion itself pays O(n)."""
        priv = compile_source(SRC, CompilerOptions())
        result = expand_scalars(SRC, num_procs=4)
        exp = compile_procedure(result.proc, CompilerOptions())
        m_priv = memory_report(priv).total_bytes
        m_exp = memory_report(exp).total_bytes
        assert m_exp > m_priv

    def test_memory_report_contents(self):
        compiled = compile_source(SRC, CompilerOptions())
        report = memory_report(compiled)
        assert "U" in report.arrays and "V" in report.arrays
        # block over 4 procs: 8 elements x 8 bytes
        assert report.arrays["U"] == 8 * 8
        assert report.scalars > 0
        assert "KiB" in report.summary()

    def test_replication_memory_worst(self):
        src_unmapped = SRC.replace("!HPF$ DISTRIBUTE (BLOCK) :: U\n", "").replace(
            "!HPF$ ALIGN V(i) WITH U(i)\n", ""
        )
        unmapped = compile_source(src_unmapped, CompilerOptions(num_procs=4))
        mapped = compile_source(SRC, CompilerOptions())
        assert (
            memory_report(unmapped).arrays["U"]
            > memory_report(mapped).arrays["U"]
        )
