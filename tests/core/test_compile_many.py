"""compile_many batch API: cache-reuse results must be bit-identical
(modulo global statement numbering) to fresh sequential compiles, for
every ablation-flag combination."""

import re

import pytest

from repro.core import (
    BatchJob,
    CompilerOptions,
    PassManager,
    compile_many,
    compile_source,
)
from repro.programs import appsp_source, dgefa_source, tomcatv_source


def canonical(report: str) -> str:
    """Statement ids come from a process-global counter, so two parses
    of the same source label the same statements differently; renumber
    them in order of first appearance before comparing reports."""
    mapping: dict[str, str] = {}

    def renumber(match: re.Match) -> str:
        return mapping.setdefault(match.group(0), f"S{len(mapping) + 1}")

    return re.sub(r"\bS\d+\b", renumber, report)


ABLATIONS = [
    CompilerOptions(),
    CompilerOptions(combine_messages=True),
    CompilerOptions(auto_privatize_arrays=True),
    CompilerOptions(message_vectorization=False),
    CompilerOptions(
        combine_messages=True,
        auto_privatize_arrays=True,
        message_vectorization=False,
    ),
    CompilerOptions(strategy="producer"),
    CompilerOptions(align_reductions=False),
    CompilerOptions(partial_privatization=False),
]


@pytest.mark.parametrize(
    "name,source",
    [
        ("tomcatv", tomcatv_source(n=65, niter=2, procs=8)),
        ("dgefa", dgefa_source(n=100, procs=8)),
        (
            "appsp",
            appsp_source(
                nx=8, ny=8, nz=8, niter=1, procs=8, distribution="2d",
                use_new_clause=False,
            ),
        ),
    ],
)
def test_batch_matches_fresh_compiles(name, source):
    batch = compile_many([BatchJob(source=source, options=o) for o in ABLATIONS])
    assert len(batch) == len(ABLATIONS)
    for options, compiled in zip(ABLATIONS, batch):
        fresh = compile_source(source, options)
        assert canonical(compiled.report()) == canonical(fresh.report()), options
        assert len(compiled.comm.events) == len(fresh.comm.events)
        assert len(compiled.comm.reduces) == len(fresh.comm.reduces)
    # all ablations of one source share the analysis cache: every job
    # after the first replays parse + front end from cache
    for compiled in batch[1:]:
        assert compiled.timings.cache_hit("parse")
        assert compiled.timings.cache_hit("ssa")
        assert compiled.timings.cache_hit("privatizability")


def test_batch_preserves_job_order_across_sources():
    sources = {
        "tomcatv": tomcatv_source(n=33, niter=1, procs=4),
        "dgefa": dgefa_source(n=50, procs=4),
    }
    jobs = [
        BatchJob(source=sources["tomcatv"], options=CompilerOptions(), label="t-sel"),
        BatchJob(source=sources["dgefa"], options=CompilerOptions(), label="d-sel"),
        BatchJob(
            source=sources["tomcatv"],
            options=CompilerOptions(strategy="replication"),
            label="t-rep",
        ),
    ]
    results = compile_many(jobs)
    assert results[0].proc.name == "TOMCATV"
    assert results[1].proc.name == "DGEFA"
    assert results[2].proc.name == "TOMCATV"
    assert results[2].options.strategy == "replication"
    # grouping by source: jobs 0 and 2 share one parsed procedure
    assert results[0].proc is results[2].proc


def test_batch_accepts_tuples_and_plain_sources():
    src = tomcatv_source(n=33, niter=1, procs=4)
    results = compile_many([src, (src, CompilerOptions(strategy="producer"))])
    assert results[0].options.strategy == "selected"
    assert results[1].options.strategy == "producer"


def test_batch_on_forced_process_pool():
    """Workers compile groups in their own processes and ship the
    CompiledPrograms back over pickle."""
    jobs = [
        BatchJob(tomcatv_source(n=33, niter=1, procs=4), CompilerOptions()),
        BatchJob(dgefa_source(n=50, procs=4), CompilerOptions(align_reductions=False)),
    ]
    results = compile_many(jobs, processes=2)
    fresh = [compile_source(j.source, j.options) for j in jobs]
    for compiled, expected in zip(results, fresh):
        assert canonical(compiled.report()) == canonical(expected.report())


def test_batch_with_explicit_manager_retains_cache():
    manager = PassManager()
    src = tomcatv_source(n=33, niter=1, procs=4)
    compile_many([(src, CompilerOptions())], processes=1, manager=manager)
    followup = compile_source(src, CompilerOptions(strategy="producer"), manager=manager)
    assert followup.timings.cache_hit("parse")
    assert followup.timings.cache_hit("ssa")


class TestNumProcsValidation:
    def test_zero_rejected(self):
        with pytest.raises(ValueError, match="num_procs"):
            CompilerOptions(num_procs=0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="num_procs"):
            CompilerOptions(num_procs=-4)

    def test_non_integer_rejected(self):
        with pytest.raises(ValueError, match="num_procs"):
            CompilerOptions(num_procs=2.5)

    def test_none_and_positive_accepted(self):
        assert CompilerOptions(num_procs=None).num_procs is None
        assert CompilerOptions(num_procs=16).num_procs == 16
