"""DetermineMapping algorithm tests beyond the paper figures: the
deferral list, consistency propagation, the veto, and edge cases."""

import pytest

from repro.core import (
    AlignedTo,
    CompilerOptions,
    PrivateNoAlign,
    Replicated,
    compile_source,
)
from repro.ir import ScalarRef


def mappings_of(compiled, name):
    out = []
    for stmt in compiled.proc.assignments():
        if isinstance(stmt.lhs, ScalarRef) and stmt.lhs.symbol.name == name:
            out.append(compiled.scalar_mapping_of(stmt.stmt_id))
    return out


def compile_body(body, decls="", procs=4, **opts):
    src = (
        "PROGRAM T\n  PARAMETER (n = 32)\n"
        "  REAL A(n), B(n), C(n), E(n)\n" + decls +
        "!HPF$ ALIGN (i) WITH A(i) :: B, C\n"
        "!HPF$ ALIGN (i) WITH A(*) :: E\n"
        "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
        + body + "\nEND PROGRAM\n"
    )
    return compile_source(src, CompilerOptions(num_procs=procs, **opts))


class TestNoAlignDeferral:
    def test_replicated_rhs_unique_def_becomes_noalign(self):
        compiled = compile_body(
            "  DO i = 1, n\n    x = E(i)\n    A(i) = x\n  END DO"
        )
        assert isinstance(mappings_of(compiled, "X")[0], PrivateNoAlign)

    def test_non_unique_def_not_noalign(self):
        compiled = compile_body(
            "  DO i = 1, n\n"
            "    IF (E(i) > 0.0) THEN\n      x = E(i)\n    ELSE\n      x = 0.0\n"
            "    END IF\n    A(i) = x\n  END DO"
        )
        for m in mappings_of(compiled, "X"):
            assert not isinstance(m, PrivateNoAlign)

    def test_rhs_becomes_partitioned_later(self):
        """y's rhs contains x; x ends aligned (partitioned), so y's
        deferred no-align candidacy must be rescinded in the final pass
        and the tentative alignment kept."""
        compiled = compile_body(
            "  DO i = 1, n\n"
            "    x = B(i)\n"       # x -> aligned (consumer chain)
            "    y = x\n"          # y's rhs *looked* replicated at first
            "    A(i) = y\n"
            "  END DO"
        )
        y = mappings_of(compiled, "Y")[0]
        assert isinstance(y, AlignedTo)


class TestConsistency:
    def test_all_reaching_defs_share_mapping(self):
        compiled = compile_body(
            "  DO i = 1, n\n"
            "    IF (E(i) > 0.0) THEN\n      x = B(i)\n    ELSE\n      x = C(i)\n"
            "    END IF\n    A(i) = x\n  END DO"
        )
        m1, m2 = mappings_of(compiled, "X")
        assert m1 == m2


class TestVeto:
    VETO_BODY = (
        "  DO i = 2, n - 1\n"
        "    y = A(i) + B(i)\n"
        "    A(i + 1) = y\n"
        "  END DO"
    )

    def test_selected_vetoes_consumer(self):
        compiled = compile_body(self.VETO_BODY)
        y = mappings_of(compiled, "Y")[0]
        assert isinstance(y, AlignedTo) and not y.is_consumer

    def test_consumer_strategy_skips_veto(self):
        compiled = compile_body(self.VETO_BODY, strategy="consumer")
        y = mappings_of(compiled, "Y")[0]
        assert isinstance(y, AlignedTo) and y.is_consumer

    def test_no_veto_when_rhs_not_written_in_loop(self):
        compiled = compile_body(
            "  DO i = 2, n - 1\n"
            "    y = B(i) + C(i)\n"
            "    A(i + 1) = y\n"
            "  END DO"
        )
        y = mappings_of(compiled, "Y")[0]
        assert isinstance(y, AlignedTo) and y.is_consumer


class TestReplicationForcing:
    def test_use_in_loop_bound_forces_replication(self):
        compiled = compile_body(
            "  DO i = 1, n\n"
            "    m = INT(B(i))\n"
            "    DO j = 1, m\n      A(j) = B(j)\n    END DO\n"
            "  END DO",
        )
        assert isinstance(mappings_of(compiled, "M")[0], Replicated)

    def test_use_in_lhs_subscript_forces_replication(self):
        compiled = compile_body(
            "  DO i = 1, n\n"
            "    m = INT(B(i)) + 1\n"
            "    A(m) = C(i)\n"
            "  END DO",
        )
        assert isinstance(mappings_of(compiled, "M")[0], Replicated)

    def test_if_condition_use_forces_replication(self):
        compiled = compile_body(
            "  DO i = 1, n\n"
            "    x = B(i)\n"
            "    IF (x > 0.0) THEN\n      A(i) = x\n    END IF\n"
            "  END DO",
        )
        assert isinstance(mappings_of(compiled, "X")[0], Replicated)

    def test_non_privatizable_stays_replicated(self):
        compiled = compile_body(
            "  x = 0.0\n"
            "  DO i = 1, n\n"
            "    A(i) = x\n"
            "    x = B(i)\n"
            "  END DO",
        )
        for m in mappings_of(compiled, "X"):
            assert isinstance(m, Replicated)


class TestAlignmentValidity:
    def test_invalid_alignlevel_prevents_alignment(self):
        """The consumer's subscripts vary deeper than the privatization
        level -> alignment rejected."""
        compiled = compile_body(
            "  DO i = 1, n\n"
            "    x = E(1)\n"
            "    DO j = 1, n\n"
            "      A(j) = x + B(j)\n"
            "    END DO\n"
            "  END DO",
        )
        x = mappings_of(compiled, "X")[0]
        # consumer A(j) has AlignLevel 2 but x is privatizable at level
        # 1; alignment is invalid, and since the rhs (E) is replicated
        # and the def unique, no-align privatization wins.
        assert not isinstance(x, AlignedTo)


class TestTraversalHeuristic:
    def test_prefers_traversed_reference(self):
        """Given consumers A(i) and A(1), the mapping should prefer the
        reference traversed in the common loop (paper: 'alignment with a
        reference A(i) would be preferred over ... A(1)')."""
        compiled = compile_body(
            "  DO i = 2, n\n"
            "    x = B(i) + C(i)\n"
            "    A(1) = x\n"
            "    A(i) = x\n"
            "  END DO",
        )
        x = mappings_of(compiled, "X")[0]
        assert isinstance(x, AlignedTo)
        sub = str(x.target.subscripts[0])
        assert "I" in sub
