"""Paper Figure 5: mapping of scalars involved in reductions.

"Hence, s is replicated in the second grid dimension and is aligned
with the ith row of A in the first dimension. As a result of this
alignment, the reduction computation can proceed without the need to
broadcast the ith row of A to other processors along the first grid
dimension."
"""

import numpy as np
import pytest

from repro.codegen import run_sequential
from repro.core import (
    CompilerOptions,
    FullyReplicatedReduction,
    ReductionMapping,
    compile_source,
)
from repro.ir import ScalarRef, parse_and_build
from repro.machine import simulate
from repro.programs import figure5_source


@pytest.fixture(scope="module")
def compiled():
    return compile_source(figure5_source(n=64, p0=2, p1=2), CompilerOptions())


def s_mapping(compiled, k):
    stmts = [
        s
        for s in compiled.proc.assignments()
        if isinstance(s.lhs, ScalarRef) and s.lhs.symbol.name == "S"
    ]
    return compiled.scalar_mapping_of(stmts[k].stmt_id)


class TestReductionMapping:
    def test_update_gets_reduction_mapping(self, compiled):
        mapping = s_mapping(compiled, 1)
        assert isinstance(mapping, ReductionMapping)

    def test_replicated_along_second_grid_dim(self, compiled):
        mapping = s_mapping(compiled, 1)
        assert mapping.replicated_grid_dims == (1,)

    def test_aligned_with_row_of_A(self, compiled):
        mapping = s_mapping(compiled, 1)
        assert mapping.target.symbol.name == "A"

    def test_init_adopts_same_mapping(self, compiled):
        """s = 0.0 must receive the identical mapping (consistency
        across all reaching definitions of each use)."""
        assert s_mapping(compiled, 0) == s_mapping(compiled, 1)

    def test_no_row_broadcast(self, compiled):
        """The whole point: A(i,j) is read locally by its owner."""
        assert not [e for e in compiled.comm.events if e.ref.symbol.name == "A"]

    def test_combine_event_emitted(self, compiled):
        assert len(compiled.comm.reduces) == 1
        combine = compiled.comm.reduces[0]
        assert combine.grid_dims == (1,)
        assert combine.op == "+"

    def test_combine_once_per_i_iteration(self, compiled):
        combine = compiled.comm.reduces[0]
        assert combine.loop_level == 2  # the j loop


class TestDisabledAlignment:
    def test_fallback_is_fully_replicated(self):
        compiled = compile_source(
            figure5_source(n=64, p0=2, p1=2),
            CompilerOptions(align_reductions=False),
        )
        mapping = s_mapping(compiled, 1)
        assert isinstance(mapping, FullyReplicatedReduction)

    def test_replication_broadcasts_rows(self):
        compiled = compile_source(
            figure5_source(n=64, p0=2, p1=2),
            CompilerOptions(align_reductions=False),
        )
        assert [e for e in compiled.comm.events if e.ref.symbol.name == "A"]


class TestSemantics:
    @pytest.mark.parametrize("align", [True, False])
    def test_simulation_matches_sequential(self, align):
        src = figure5_source(n=8, p0=2, p1=2)
        rng = np.random.default_rng(5)
        inputs = {"A": rng.uniform(0.0, 1.0, (8, 8))}
        seq = run_sequential(parse_and_build(src), inputs)
        sim = simulate(
            compile_source(src, CompilerOptions(align_reductions=align)), inputs
        )
        assert np.allclose(sim.gather("B"), seq.get_array("B"))
        assert sim.stats.unexpected_fetches == 0

    def test_row_sums_correct(self):
        src = figure5_source(n=8, p0=2, p1=2)
        inputs = {"A": np.arange(64, dtype=float).reshape(8, 8)}
        sim = simulate(compile_source(src, CompilerOptions()), inputs)
        assert np.allclose(sim.gather("B"), inputs["A"].sum(axis=1))
