"""Paper Figure 2: availability requirements for subscripts.

"Thus, for the example shown in Figure 2, the consumer reference for p
is A(i), and for q it is the dummy replicated reference."
"""

import pytest

from repro.core import (
    CompilerOptions,
    DummyReplicatedRef,
    PrivateNoAlign,
    Replicated,
    classify_use,
    compile_source,
    consumer_candidate,
)
from repro.ir import ArrayElemRef, ScalarRef
from repro.programs import figure2_source


@pytest.fixture(scope="module")
def compiled():
    return compile_source(figure2_source(n=64, procs=4), CompilerOptions())


def use_of(compiled, name):
    """The use of scalar `name` inside the A(i) = H(i,p) + G(q,i) stmt."""
    for stmt in compiled.proc.assignments():
        if isinstance(stmt.lhs, ArrayElemRef) and stmt.lhs.symbol.name == "A":
            for ref in stmt.rhs.refs():
                if isinstance(ref, ScalarRef) and ref.symbol.name == name:
                    return ref, stmt
    raise AssertionError(f"no use of {name}")


class TestUseClassification:
    def test_p_is_rhs_subscript(self, compiled):
        use, stmt = use_of(compiled, "P")
        ctx = classify_use(use, stmt)
        assert ctx.role == "rhs-subscript"
        assert ctx.enclosing_ref.symbol.name == "H"

    def test_q_is_rhs_subscript(self, compiled):
        use, stmt = use_of(compiled, "Q")
        ctx = classify_use(use, stmt)
        assert ctx.role == "rhs-subscript"
        assert ctx.enclosing_ref.symbol.name == "G"


class TestConsumerIdentification:
    def test_consumer_of_p_is_lhs(self, compiled):
        """H(i,p) needs no communication (row i is local to the owner of
        A(i)), so only the executing processor needs p."""
        use, stmt = use_of(compiled, "P")
        ctx = classify_use(use, stmt)
        candidate = consumer_candidate(ctx, compiled.scalar_pass)
        assert isinstance(candidate, ArrayElemRef)
        assert candidate.symbol.name == "A"

    def test_consumer_of_q_is_dummy_replicated(self, compiled):
        """G(q,i) needs communication, so its subscript q must be
        available on all processors."""
        use, stmt = use_of(compiled, "Q")
        ctx = classify_use(use, stmt)
        candidate = consumer_candidate(ctx, compiled.scalar_pass)
        assert isinstance(candidate, DummyReplicatedRef)


class TestResultingMappings:
    def test_p_not_replicated_by_force(self, compiled):
        """p's rhs (B(i)) is replicated data, so p ends up privatized
        without alignment — each executor computes it locally."""
        stmts = [
            s
            for s in compiled.proc.assignments()
            if isinstance(s.lhs, ScalarRef) and s.lhs.symbol.name == "P"
        ]
        mapping = compiled.scalar_mapping_of(stmts[0].stmt_id)
        assert isinstance(mapping, PrivateNoAlign)

    def test_q_stays_replicated(self, compiled):
        stmts = [
            s
            for s in compiled.proc.assignments()
            if isinstance(s.lhs, ScalarRef) and s.lhs.symbol.name == "Q"
        ]
        mapping = compiled.scalar_mapping_of(stmts[0].stmt_id)
        assert isinstance(mapping, Replicated)

    def test_h_row_access_needs_no_comm(self, compiled):
        assert not [e for e in compiled.comm.events if e.ref.symbol.name == "H"]

    def test_g_access_needs_comm(self, compiled):
        assert [e for e in compiled.comm.events if e.ref.symbol.name == "G"]

    def test_semantics_preserved(self):
        """Simulated execution matches sequential execution."""
        import numpy as np

        from repro.codegen import run_sequential
        from repro.ir import parse_and_build
        from repro.machine import simulate

        src = figure2_source(n=8, procs=4)
        rng = np.random.default_rng(3)
        inputs = {
            "H": rng.uniform(1, 2, (8, 8)),
            "G": rng.uniform(1, 2, (8, 8)),
            "B": rng.uniform(1, 8, 8),
            "C": rng.uniform(1, 8, 8),
        }
        seq = run_sequential(parse_and_build(src), inputs)
        sim = simulate(compile_source(src, CompilerOptions()), inputs)
        assert np.allclose(sim.gather("A"), seq.get_array("A"))
        assert sim.stats.unexpected_fetches == 0
