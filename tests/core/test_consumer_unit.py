"""Direct unit tests for use-classification and consumer-candidate
identification (beyond the Figure 2 integration tests)."""

import pytest

from repro.core import (
    CompilerOptions,
    DummyReplicatedRef,
    classify_use,
    compile_source,
    consumer_candidate,
)
from repro.ir import ArrayElemRef, ScalarRef


def compiled_with(body, decls=""):
    src = (
        "PROGRAM T\n  PARAMETER (n = 16)\n"
        "  REAL A(n), B(n), E(n)\n" + decls +
        "!HPF$ ALIGN B(i) WITH A(i)\n"
        "!HPF$ ALIGN E(i) WITH A(*)\n"
        "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
        + body + "\nEND PROGRAM\n"
    )
    return compile_source(src, CompilerOptions(num_procs=4))


def use_of(compiled, name):
    for stmt in compiled.proc.all_stmts():
        for ref in stmt.uses():
            if isinstance(ref, ScalarRef) and ref.symbol.name == name:
                return ref, stmt
    raise AssertionError(name)


class TestClassification:
    def test_rhs_value(self):
        compiled = compiled_with(
            "  DO i = 1, n\n    x = E(i)\n    A(i) = x\n  END DO"
        )
        # the use of X on the A(i) assignment
        for stmt in compiled.proc.assignments():
            for ref in stmt.rhs.refs():
                if isinstance(ref, ScalarRef) and ref.symbol.name == "X":
                    assert classify_use(ref, stmt).role == "rhs-value"
                    return
        raise AssertionError

    def test_loop_bound(self):
        compiled = compiled_with(
            "  m = 8\n  DO i = 1, m\n    A(i) = E(i)\n  END DO",
            decls="  INTEGER m\n",
        )
        use, stmt = use_of(compiled, "M")
        assert classify_use(use, stmt).role == "loop-bound"

    def test_if_condition(self):
        compiled = compiled_with(
            "  DO i = 1, n\n    x = E(i)\n"
            "    IF (x > 0.0) THEN\n      A(i) = x\n    END IF\n  END DO"
        )
        for stmt in compiled.proc.all_stmts():
            from repro.ir import IfStmt

            if isinstance(stmt, IfStmt):
                use = next(
                    r for r in stmt.uses() if isinstance(r, ScalarRef)
                )
                assert classify_use(use, stmt).role == "if-cond"
                return
        raise AssertionError

    def test_lhs_subscript(self):
        compiled = compiled_with(
            "  DO i = 1, n\n    l = i\n    A(l) = E(i)\n  END DO",
            decls="  INTEGER l\n",
        )
        for stmt in compiled.proc.assignments():
            if isinstance(stmt.lhs, ArrayElemRef):
                for sub in stmt.lhs.subscripts:
                    for ref in sub.refs():
                        if isinstance(ref, ScalarRef) and ref.symbol.name == "L":
                            assert classify_use(ref, stmt).role == "lhs-subscript"
                            return
        raise AssertionError

    def test_rhs_subscript_with_enclosing_ref(self):
        compiled = compiled_with(
            "  DO i = 1, n\n    l = i\n    A(i) = B(l)\n  END DO",
            decls="  INTEGER l\n",
        )
        for stmt in compiled.proc.assignments():
            for ref in stmt.rhs.refs():
                if isinstance(ref, ScalarRef) and ref.symbol.name == "L":
                    ctx = classify_use(ref, stmt)
                    assert ctx.role == "rhs-subscript"
                    assert ctx.enclosing_ref.symbol.name == "B"
                    return
        raise AssertionError


class TestCandidates:
    def test_loop_bound_forces_dummy(self):
        compiled = compiled_with(
            "  m = 8\n  DO i = 1, m\n    A(i) = E(i)\n  END DO",
            decls="  INTEGER m\n",
        )
        use, stmt = use_of(compiled, "M")
        ctx = classify_use(use, stmt)
        assert isinstance(
            consumer_candidate(ctx, compiled.scalar_pass), DummyReplicatedRef
        )

    def test_local_subscript_yields_lhs(self):
        compiled = compiled_with(
            "  DO i = 1, n\n    l = i\n    A(i) = B(l)\n  END DO",
            decls="  INTEGER l\n",
        )
        for stmt in compiled.proc.assignments():
            for ref in stmt.rhs.refs():
                if isinstance(ref, ScalarRef) and ref.symbol.name == "L":
                    ctx = classify_use(ref, stmt)
                    candidate = consumer_candidate(ctx, compiled.scalar_pass)
                    # B(l) may require communication (l unknown), so the
                    # candidate may be DUMMY; with l == i it is actually
                    # unknowable statically -> DUMMY expected.
                    assert isinstance(candidate, (DummyReplicatedRef, ArrayElemRef))
                    return
        raise AssertionError

    def test_rhs_value_yields_lhs(self):
        compiled = compiled_with(
            "  DO i = 1, n\n    x = E(i)\n    A(i) = x\n  END DO"
        )
        for stmt in compiled.proc.assignments():
            for ref in stmt.rhs.refs():
                if isinstance(ref, ScalarRef) and ref.symbol.name == "X":
                    ctx = classify_use(ref, stmt)
                    candidate = consumer_candidate(ctx, compiled.scalar_pass)
                    assert isinstance(candidate, ArrayElemRef)
                    assert candidate.symbol.name == "A"
                    return
        raise AssertionError
