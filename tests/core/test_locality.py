"""Locality algebra tests: positions, comm-freedom, transfer patterns."""

import pytest

from repro.core import (
    ANY,
    CompilerOptions,
    all_any,
    classify_transfer,
    comm_free,
    compile_source,
    position_of_array_ref,
)
from repro.core.locality import (
    DimPosition,
    forms_constant_offset,
    forms_equal,
    scale_shift,
)
from repro.ir import ArrayElemRef, affine_form, parse_and_build
from repro.mapping import ProcessorGrid, resolve_mappings


SRC = """
PROGRAM T
  PARAMETER (n = 16)
  REAL A(n), B(n), E(n)
!HPF$ ALIGN B(i) WITH A(i)
!HPF$ ALIGN E(i) WITH A(*)
!HPF$ DISTRIBUTE (BLOCK) :: A
  DO i = 2, n - 1
    A(i) = B(i) + B(i - 1) + E(i) + A(i + 1)
  END DO
END PROGRAM
"""


@pytest.fixture(scope="module")
def env():
    proc = parse_and_build(SRC)
    grid = ProcessorGrid(name="P", shape=(4,))
    maps = resolve_mappings(proc, grid)
    stmt = next(proc.assignments())
    refs = {str(r): r for r in stmt.rhs.refs() if isinstance(r, ArrayElemRef)}
    refs[str(stmt.lhs)] = stmt.lhs
    return proc, maps, refs


class TestPositions:
    def test_identity_aligned_positions_equal(self, env):
        proc, maps, refs = env
        pos_a = position_of_array_ref(refs["A(I)"], maps["A"])
        pos_b = position_of_array_ref(refs["B(I)"], maps["B"])
        assert comm_free(pos_b, pos_a)
        assert comm_free(pos_a, pos_b)

    def test_offset_positions_differ(self, env):
        proc, maps, refs = env
        pos_a = position_of_array_ref(refs["A(I)"], maps["A"])
        pos_b1 = position_of_array_ref(refs["B((I - 1))"], maps["B"])
        assert not comm_free(pos_b1, pos_a)

    def test_replicated_always_local(self, env):
        proc, maps, refs = env
        pos_e = position_of_array_ref(refs["E(I)"], maps["E"])
        assert pos_e == (ANY,)
        assert comm_free(pos_e, position_of_array_ref(refs["A(I)"], maps["A"]))

    def test_data_at_position_not_free_for_all(self, env):
        proc, maps, refs = env
        pos_a = position_of_array_ref(refs["A(I)"], maps["A"])
        assert not comm_free(pos_a, all_any(1))

    def test_single_proc_dim_is_any(self):
        proc = parse_and_build(SRC)
        maps = resolve_mappings(proc, ProcessorGrid(name="P", shape=(1,)))
        stmt = next(proc.assignments())
        pos = position_of_array_ref(stmt.lhs, maps["A"])
        assert pos == (ANY,)


class TestTransferClassification:
    def test_shift_detected(self, env):
        proc, maps, refs = env
        pos_a = position_of_array_ref(refs["A(I)"], maps["A"])
        pos_next = position_of_array_ref(refs["A((I + 1))"], maps["A"])
        pattern = classify_transfer(pos_next, pos_a)
        assert pattern.kind == "shift"
        assert pattern.offsets == (1,)

    def test_broadcast_detected(self, env):
        proc, maps, refs = env
        pos_a = position_of_array_ref(refs["A(I)"], maps["A"])
        pattern = classify_transfer(pos_a, all_any(1))
        assert pattern.kind == "broadcast"
        assert pattern.bcast_dims == (0,)

    def test_none_for_comm_free(self, env):
        proc, maps, refs = env
        pos_a = position_of_array_ref(refs["A(I)"], maps["A"])
        pos_b = position_of_array_ref(refs["B(I)"], maps["B"])
        assert classify_transfer(pos_b, pos_a).kind == "none"

    def test_general_for_different_variables(self):
        src = (
            "PROGRAM T\n  PARAMETER (n = 16)\n  REAL C(n, n)\n"
            "!HPF$ DISTRIBUTE (*, BLOCK) :: C\n"
            "  DO k = 1, n\n    DO j = 1, n\n      C(1, j) = C(2, k)\n"
            "    END DO\n  END DO\nEND PROGRAM\n"
        )
        proc = parse_and_build(src)
        maps = resolve_mappings(proc, ProcessorGrid(name="P", shape=(4,)))
        stmt = next(proc.assignments())
        read = next(r for r in stmt.rhs.refs() if isinstance(r, ArrayElemRef))
        pos_w = position_of_array_ref(stmt.lhs, maps["C"])
        pos_r = position_of_array_ref(read, maps["C"])
        assert classify_transfer(pos_r, pos_w).kind == "general"


class TestFormHelpers:
    def _form(self, proc, text_src):
        p = parse_and_build(text_src)
        stmt = next(p.assignments())
        return affine_form(stmt.lhs.subscripts[0])

    def test_forms_equal(self):
        src = "PROGRAM T\n  REAL A(9)\n  DO i = 1, 9\n    A(i) = 0.0\n  END DO\nEND\n"
        f1 = self._form(None, src)
        f2 = self._form(None, src)
        assert forms_equal(f1, f2)

    def test_forms_constant_offset(self):
        base = "PROGRAM T\n  REAL A(9)\n  DO i = 1, 8\n    A({sub}) = 0.0\n  END DO\nEND\n"
        f1 = self._form(None, base.format(sub="i + 1"))
        f2 = self._form(None, base.format(sub="i"))
        assert forms_constant_offset(f1, f2) == 1

    def test_forms_offset_none_for_different_vars(self):
        s1 = "PROGRAM T\n  REAL A(9)\n  DO i = 1, 9\n    A(i) = 0.0\n  END DO\nEND\n"
        s2 = "PROGRAM T\n  REAL A(9)\n  DO j = 1, 9\n    A(j) = 0.0\n  END DO\nEND\n"
        assert forms_constant_offset(self._form(None, s1), self._form(None, s2)) is None

    def test_scale_shift(self):
        src = "PROGRAM T\n  REAL A(9)\n  DO i = 1, 9\n    A(i) = 0.0\n  END DO\nEND\n"
        f = self._form(None, src)
        g = scale_shift(f, 2, 3)
        assert g.const == f.const * 2 + 3
        assert g.coeffs[0][1] == 2
