"""Paper Figure 6: partial privatization.

"The array c is privatizable with respect to the k-loop, but not with
respect to the j-loop. Correspondingly, the compiler will fail in its
attempt to privatize the array in both grid dimensions. ... the only
way to exploit parallelism in both the k and the j-loops is to
partition the second dimension of c across the first grid dimension,
and to privatize it along the second grid dimension."
"""

import numpy as np
import pytest

from repro.codegen import run_sequential
from repro.core import CompilerOptions, compile_source
from repro.ir import parse_and_build
from repro.machine import simulate
from repro.programs import figure6_source


@pytest.fixture(scope="module")
def compiled():
    return compile_source(figure6_source(n=12, p0=2, p1=2), CompilerOptions())


class TestPartialPrivatization:
    def test_partial_privatization_applied(self, compiled):
        privs = compiled.array_result.privatizations
        assert len(privs) == 1
        priv = privs[0]
        assert priv.array.name == "C"
        assert priv.is_partial

    def test_privatized_along_second_grid_dim(self, compiled):
        priv = compiled.array_result.privatizations[0]
        assert priv.privatized_grid_dims == (1,)

    def test_partitioned_j_dimension(self, compiled):
        priv = compiled.array_result.privatizations[0]
        # C's dim 1 (the j index) is partitioned onto grid dim 0.
        assert priv.partitioned_dims == {1: 0}

    def test_target_is_rsd(self, compiled):
        priv = compiled.array_result.privatizations[0]
        assert priv.target.symbol.name == "RSD"

    def test_effective_mapping_roles(self, compiled):
        mapping = compiled.mappings["C"]
        kinds = [r.kind for r in mapping.roles]
        assert kinds == ["dist", "priv"]

    def test_restricted_align_level(self, compiled):
        """With only the privatized dims considered, AlignLevel drops to
        the k loop (level 1) — the paper's modified rule."""
        priv = compiled.array_result.privatizations[0]
        assert priv.align_level <= priv.loop.level

    def test_c_j_shift_communication(self, compiled):
        """C(i, j-1, 1) is one j-plane away: a shift on grid dim 0."""
        events = [e for e in compiled.comm.events if e.ref.symbol.name == "C"]
        assert events
        assert all(e.pattern.kind == "shift" for e in events)


class TestFullPrivatizationFails:
    def test_failure_without_partial(self):
        compiled = compile_source(
            figure6_source(n=12, p0=2, p1=2),
            CompilerOptions(partial_privatization=False),
        )
        assert not compiled.array_result.privatizations
        assert compiled.array_result.failures
        name, loop, reason = compiled.array_result.failures[0]
        assert name == "C"
        assert "AlignLevel" in reason

    def test_replication_fallback_broadcasts(self):
        compiled = compile_source(
            figure6_source(n=12, p0=2, p1=2),
            CompilerOptions(partial_privatization=False),
        )
        # C stays replicated: its producers must be broadcast.
        assert compiled.mappings["C"].is_replicated
        broadcasts = compiled.comm.broadcast_events()
        assert broadcasts


class Test1DFullPrivatization:
    def test_full_privatization_under_1d(self):
        src = figure6_source(n=12, p0=4, p1=1)
        # On a (4,1) grid the j dimension spans one proc; still partial
        # machinery runs, but privatization succeeds.
        compiled = compile_source(src, CompilerOptions())
        assert compiled.array_result.privatizations


class TestSemantics:
    @pytest.mark.parametrize(
        "opts",
        [
            CompilerOptions(),
            CompilerOptions(partial_privatization=False),
            CompilerOptions(privatize_arrays=False),
        ],
        ids=["partial", "no-partial", "no-priv"],
    )
    def test_simulation_matches_sequential(self, opts):
        src = figure6_source(n=6, p0=2, p1=2)
        rng = np.random.default_rng(6)
        inputs = {"RSD": rng.uniform(0.5, 1.5, (5, 6, 6, 6))}
        seq = run_sequential(parse_and_build(src), inputs)
        sim = simulate(compile_source(src, opts), inputs)
        assert np.allclose(sim.gather("RSD"), seq.get_array("RSD"))
        assert sim.stats.unexpected_fetches == 0
