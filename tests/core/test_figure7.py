"""Paper Figure 7: privatized execution of control flow statements.

"In the example shown in Figure 7, both of the if statements transfer
control only to a statement inside the i-loop. Hence the execution of
those statements can be privatized. ... Therefore, no communication is
needed for the predicate of those if statements, as B(i) is owned by
the same processor as A(i)."
"""

import numpy as np
import pytest

from repro.codegen import run_sequential
from repro.core import CompilerOptions, compile_source
from repro.ir import IfStmt, parse_and_build
from repro.machine import simulate
from repro.programs import figure7_source


@pytest.fixture(scope="module")
def compiled():
    return compile_source(figure7_source(n=64, procs=4), CompilerOptions())


def if_decisions(compiled):
    return [
        compiled.cf_decisions[s.stmt_id]
        for s in compiled.proc.all_stmts()
        if isinstance(s, IfStmt)
    ]


class TestPrivatizedExecution:
    def test_both_ifs_privatized(self, compiled):
        decisions = if_decisions(compiled)
        assert len(decisions) == 2
        assert all(d.privatized for d in decisions)

    def test_goto_inside_loop_allows_privatization(self, compiled):
        """The GO TO 100 targets the labelled CONTINUE inside the loop
        body, so it does not escape the i loop."""
        inner = [
            d
            for d in if_decisions(compiled)
            if any("GO TO" in str(s) for s in d.stmt.walk())
        ]
        assert inner and inner[0].privatized

    def test_no_predicate_communication(self, compiled):
        """B(i) is aligned with A(i): the owners evaluating the
        dependents already hold the predicate data."""
        assert not [e for e in compiled.comm.events if e.ref.symbol.name == "B"]

    def test_no_communication_at_all(self, compiled):
        assert not compiled.comm.events

    def test_dependent_refs_recorded(self, compiled):
        outer = if_decisions(compiled)[0]
        names = {r.symbol.name for r in outer.dependent_refs}
        assert "A" in names


class TestEscapingControlFlow:
    def test_goto_out_of_loop_blocks_privatization(self):
        src = (
            "PROGRAM T\n  PARAMETER (n = 16)\n  REAL A(n), B(n)\n"
            "!HPF$ ALIGN B(i) WITH A(i)\n"
            "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
            "  DO i = 1, n\n"
            "    IF (B(i) < 0.0) GO TO 100\n"
            "    A(i) = B(i)\n"
            "  END DO\n"
            "100 CONTINUE\nEND PROGRAM\n"
        )
        compiled = compile_source(src, CompilerOptions(num_procs=4))
        decisions = [
            compiled.cf_decisions[s.stmt_id]
            for s in compiled.proc.all_stmts()
            if isinstance(s, IfStmt)
        ]
        assert not decisions[0].privatized

    def test_stop_blocks_privatization(self):
        src = (
            "PROGRAM T\n  PARAMETER (n = 16)\n  REAL A(n), B(n)\n"
            "!HPF$ ALIGN B(i) WITH A(i)\n"
            "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
            "  DO i = 1, n\n"
            "    IF (B(i) < 0.0) STOP\n"
            "    A(i) = B(i)\n"
            "  END DO\nEND PROGRAM\n"
        )
        compiled = compile_source(src, CompilerOptions(num_procs=4))
        decisions = [
            compiled.cf_decisions[s.stmt_id]
            for s in compiled.proc.all_stmts()
            if isinstance(s, IfStmt)
        ]
        assert not decisions[0].privatized

    def test_option_disables_privatization(self):
        compiled = compile_source(
            figure7_source(n=64, procs=4),
            CompilerOptions(privatize_control_flow=False),
        )
        assert not any(d.privatized for d in if_decisions(compiled))

    def test_unprivatized_predicate_broadcast(self):
        compiled = compile_source(
            figure7_source(n=64, procs=4),
            CompilerOptions(privatize_control_flow=False),
        )
        b_events = [e for e in compiled.comm.events if e.ref.symbol.name == "B"]
        assert b_events  # predicate must now reach all processors


class TestSemantics:
    @pytest.mark.parametrize("privatize", [True, False])
    def test_simulation_matches_sequential(self, privatize):
        src = figure7_source(n=10, procs=4)
        rng = np.random.default_rng(7)
        values = rng.uniform(-1.0, 1.0, 10)
        values[3] = 0.0  # exercise the ELSE branch
        inputs = {
            "A": rng.uniform(1.0, 2.0, 10),
            "B": values,
            "C": rng.uniform(1.0, 2.0, 10),
        }
        seq = run_sequential(parse_and_build(src), inputs)
        sim = simulate(
            compile_source(
                src, CompilerOptions(privatize_control_flow=privatize)
            ),
            inputs,
        )
        assert np.allclose(sim.gather("A"), seq.get_array("A"))
        assert np.allclose(sim.gather("C"), seq.get_array("C"))

    def test_goto_skips_square_when_negative(self):
        """Semantic check of the GOTO path: when B(i) < 0, C(i) keeps
        its original value (the squaring is skipped)."""
        src = figure7_source(n=6, procs=2)
        b = np.array([1.0, -2.0, 3.0, -4.0, 5.0, 0.0])
        c = np.array([2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        inputs = {"A": np.ones(6), "B": b, "C": c.copy()}
        sim = simulate(compile_source(src, CompilerOptions()), inputs)
        out = sim.gather("C")
        assert out[1] == 3.0 and out[3] == 5.0  # skipped
        assert out[0] == 4.0 and out[2] == 16.0  # squared
