"""Paper Sec. 3.1's weaker-directive inference: a bare INDEPENDENT
asserts no value-based dependences, so arrays whose lhs references
contribute memory-based carried dependences must be privatizable."""

import numpy as np
import pytest

from repro.codegen import run_sequential
from repro.core import CompilerOptions, compile_source
from repro.ir import parse_and_build
from repro.machine import simulate


def fig6_with(directive):
    return (
        "PROGRAM T\n  PARAMETER (nx = 12, ny = 12, nz = 12)\n"
        "  REAL RSD(5, nx, ny, nz)\n  REAL C(nx, ny, 2)\n"
        "!HPF$ PROCESSORS PROCS(2, 2)\n"
        "!HPF$ DISTRIBUTE (*, *, BLOCK, BLOCK) :: RSD\n"
        f"{directive}"
        "  DO k = 2, nz - 1\n"
        "    DO j = 2, ny - 1\n      DO i = 2, nx - 1\n"
        "        C(i, j, 1) = RSD(2, i, j, k)\n      END DO\n    END DO\n"
        "    DO j = 3, ny - 1\n      DO i = 2, nx - 1\n"
        "        RSD(1, i, j, k) = C(i, j - 1, 1)\n      END DO\n    END DO\n"
        "  END DO\nEND PROGRAM\n"
    )


class TestIndependentInference:
    def test_bare_independent_privatizes(self):
        compiled = compile_source(
            fig6_with("!HPF$ INDEPENDENT\n"), CompilerOptions()
        )
        privs = compiled.array_result.privatizations
        assert len(privs) == 1 and privs[0].array.name == "C"
        assert privs[0].is_partial

    def test_matches_new_clause_decision(self):
        bare = compile_source(fig6_with("!HPF$ INDEPENDENT\n"), CompilerOptions())
        declared = compile_source(
            fig6_with("!HPF$ INDEPENDENT, NEW(C)\n"), CompilerOptions()
        )
        a = bare.array_result.privatizations[0]
        b = declared.array_result.privatizations[0]
        assert a.privatized_grid_dims == b.privatized_grid_dims
        assert a.partitioned_dims == b.partitioned_dims

    def test_no_directive_no_inference(self):
        compiled = compile_source(fig6_with(""), CompilerOptions())
        assert not compiled.array_result.privatizations

    def test_arrays_indexed_by_loop_not_inferred(self):
        """RSD is written with k-varying subscripts: no memory-based
        carried dependence, hence no privatization proposal."""
        compiled = compile_source(
            fig6_with("!HPF$ INDEPENDENT\n"), CompilerOptions()
        )
        names = {p.array.name for p in compiled.array_result.privatizations}
        assert "RSD" not in names

    def test_semantics(self):
        src = fig6_with("!HPF$ INDEPENDENT\n")
        rng = np.random.default_rng(3)
        inputs = {"RSD": rng.uniform(0, 1, (5, 12, 12, 12))}
        seq = run_sequential(parse_and_build(src), inputs)
        sim = simulate(compile_source(src, CompilerOptions()), inputs)
        assert np.allclose(sim.gather("RSD"), seq.get_array("RSD"))
        assert sim.stats.unexpected_fetches == 0
