"""Computation partitioning (executor set) tests."""

import pytest

from repro.core import CompilerOptions, compile_source
from repro.ir import AssignStmt, IfStmt, LoopStmt, ScalarRef


SRC = """
PROGRAM T
  PARAMETER (n = 16)
  REAL A(n), B(n), E(n)
  REAL x, z
!HPF$ ALIGN B(i) WITH A(i)
!HPF$ ALIGN E(i) WITH A(*)
!HPF$ DISTRIBUTE (BLOCK) :: A
  z = 0.0
  DO i = 2, n - 1
    x = B(i)
    A(i) = x + E(i)
  END DO
END PROGRAM
"""


@pytest.fixture(scope="module")
def compiled():
    return compile_source(SRC, CompilerOptions(num_procs=4))


def stmt_named(compiled, fragment):
    for stmt in compiled.proc.all_stmts():
        if fragment in str(stmt):
            return stmt
    raise AssertionError(fragment)


class TestExecutors:
    def test_array_write_on_owner(self, compiled):
        stmt = stmt_named(compiled, "A(I) =")
        info = compiled.executors[stmt.stmt_id]
        assert info.kind == "owner"
        assert info.guard_ref is stmt.lhs

    def test_aligned_scalar_on_target_owner(self, compiled):
        stmt = stmt_named(compiled, "X =")
        info = compiled.executors[stmt.stmt_id]
        # x is privatized; executor either owner-of-target or union.
        assert info.kind in ("owner", "union")
        assert info.kind != "all"

    def test_top_level_scalar_on_all(self, compiled):
        stmt = stmt_named(compiled, "Z =")
        info = compiled.executors[stmt.stmt_id]
        assert info.kind == "all"

    def test_loop_header_on_all(self, compiled):
        loop = next(compiled.proc.loops())
        info = compiled.executors[loop.stmt_id]
        assert info.kind == "all"


class TestReplicationStrategy:
    def test_every_scalar_on_all(self):
        compiled = compile_source(
            SRC, CompilerOptions(num_procs=4, strategy="replication")
        )
        for stmt in compiled.proc.assignments():
            if isinstance(stmt.lhs, ScalarRef):
                assert compiled.executors[stmt.stmt_id].kind == "all"

    def test_array_writes_still_guarded(self):
        compiled = compile_source(
            SRC, CompilerOptions(num_procs=4, strategy="replication")
        )
        stmt = stmt_named(compiled, "A(I) =")
        assert compiled.executors[stmt.stmt_id].kind == "owner"


class TestControlFlowExecutors:
    SRC_CF = """
PROGRAM T
  PARAMETER (n = 16)
  REAL A(n), B(n)
!HPF$ ALIGN B(i) WITH A(i)
!HPF$ DISTRIBUTE (BLOCK) :: A
  DO i = 1, n
    IF (B(i) > 0.0) THEN
      A(i) = B(i)
    END IF
  END DO
END PROGRAM
"""

    def test_privatized_if_is_union(self):
        compiled = compile_source(self.SRC_CF, CompilerOptions(num_procs=4))
        if_stmt = next(
            s for s in compiled.proc.all_stmts() if isinstance(s, IfStmt)
        )
        assert compiled.executors[if_stmt.stmt_id].kind == "union"
        assert compiled.executors[if_stmt.stmt_id].no_guard

    def test_unprivatized_if_is_all(self):
        compiled = compile_source(
            self.SRC_CF,
            CompilerOptions(num_procs=4, privatize_control_flow=False),
        )
        if_stmt = next(
            s for s in compiled.proc.all_stmts() if isinstance(s, IfStmt)
        )
        assert compiled.executors[if_stmt.stmt_id].kind == "all"


class TestPrivatizedArrayExecutors:
    def test_priv_dims_follow_target(self):
        from repro.programs import figure6_source

        compiled = compile_source(
            figure6_source(n=12, p0=2, p1=2), CompilerOptions()
        )
        write = next(
            s
            for s in compiled.proc.assignments()
            if not isinstance(s.lhs, ScalarRef) and s.lhs.symbol.name == "C"
        )
        info = compiled.executors[write.stmt_id]
        # Along the privatized grid dim the executor follows the target
        # (rsd), so the position must be concrete, not 'any'.
        assert info.position[1].kind == "pos"
        assert info.union_dims == (1,)
