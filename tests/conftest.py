"""Shared fixtures: canonical paper program fragments."""

import pytest

from repro.ir import build_cfg, parse_and_build
from repro.analysis.ssa import build_ssa


FIG1_SRC = """
PROGRAM fig1
  PARAMETER (n = 10)
  REAL A(n), B(n), C(n), D(n), E(n), F(n)
  REAL x, y, z
  INTEGER m, i
!HPF$ PROCESSORS P(4)
!HPF$ ALIGN (i) WITH A(i) :: B, C, D
!HPF$ ALIGN (i) WITH A(*) :: E, F
!HPF$ DISTRIBUTE (BLOCK) :: A
  m = 2
  DO i = 2, n - 1
    m = m + 1
    x = B(i) + C(i)
    y = A(i) + B(i)
    z = E(i) + F(i)
    A(i + 1) = y / z
    D(m) = x / z
  END DO
END PROGRAM
"""


@pytest.fixture
def fig1_proc():
    return parse_and_build(FIG1_SRC)


@pytest.fixture
def fig1_cfg(fig1_proc):
    return build_cfg(fig1_proc)


@pytest.fixture
def fig1_ssa(fig1_cfg):
    return build_ssa(fig1_cfg)
