"""Every shipped example must run to completion — guards against
example rot. (The heavyweight table sweeps use their --fast paths.)"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load("quickstart").main()
        out = capsys.readouterr().out
        assert "simulated == sequential: True" in out

    def test_paper_tables_fast(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["paper_tables.py", "--fast"])
        load("paper_tables").main()
        out = capsys.readouterr().out
        assert "TOMCATV" in out and "DGEFA" in out and "APPSP" in out

    def test_figure_walkthrough(self, capsys):
        load("figure_walkthrough").main()
        out = capsys.readouterr().out
        for fragment in (
            "Figure 1", "Figure 2", "Figure 4", "Figure 5", "Figure 6", "Figure 7",
        ):
            assert fragment in out
        assert "AlignLevel(A(I,J,K)) = 2" in out

    def test_custom_stencil(self, capsys):
        load("custom_stencil").main()
        out = capsys.readouterr().out
        assert out.count("results match = True") == 3

    def test_future_work(self, capsys):
        load("future_work").main()
        out = capsys.readouterr().out
        assert "inferred: partial privatization" in out
        assert "duplicates removed" in out
        assert "expansion:" in out

    def test_spmd_codegen(self, capsys):
        load("spmd_codegen").main()
        out = capsys.readouterr().out
        assert "SPMD node program for TOMCATV" in out
        assert "ALLREDUCE" in out
