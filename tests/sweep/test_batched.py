"""The batched sweep evaluator: result parity with the pool path,
compile dedup accounting, worker tags, and the per-lane fallback
ladder."""

import dataclasses
import json

import pytest

from repro.model import SP2
from repro.obs import Metrics
from repro.programs import tomcatv_source
from repro.sweep import SweepSpec, run_sweep

FAST = dataclasses.replace(SP2, name="fast-net", alpha=5e-6, beta=1.0 / 300e6)
SLOW = dataclasses.replace(SP2, name="slow-cpu", flop_time=1.0 / 5e6)


def _spec(mode="simulate", procs=(2, 4), machines=(SP2, FAST, SLOW)):
    return SweepSpec(
        programs={"tomcatv": lambda p: tomcatv_source(n=10, niter=1, procs=p)},
        procs=procs,
        axes={"machine": machines},
        mode=mode,
    )


def _comparable(result):
    """Everything measurement-bearing; execution bookkeeping (worker,
    durations, cache/dedup provenance) legitimately differs by path."""
    record = result.as_dict()
    for name in ("worker", "duration_s", "cache_hit", "compile_dedup",
                 "attempts", "procs_lanes", "fallback_reason"):
        record.pop(name, None)
    return record


class TestParityWithPool:
    @pytest.mark.parametrize("mode", ["simulate", "estimate"])
    def test_batched_equals_pool_byte_for_byte(self, mode):
        spec = _spec(mode=mode)
        pool = run_sweep(spec, workers=0, mode="pool")
        batched = run_sweep(spec, workers=0, mode="batched")
        assert len(pool) == len(batched) == len(spec)
        for p, b in zip(pool, batched):
            assert json.dumps(_comparable(p), sort_keys=True) == json.dumps(
                _comparable(b), sort_keys=True
            )

    def test_auto_picks_batched_when_lanes_fuse(self):
        metrics = Metrics()
        results = run_sweep(_spec(), workers=0, mode="auto", metrics=metrics)
        assert all(r.worker == "batched" for r in results)
        # 2 procs values x 3 machines -> ONE batch of 6 lanes in two
        # procs sub-groups (the procs axis is a lane dimension now)
        assert metrics.counters["sweep.batched_groups"] == 1
        assert metrics.counters["sweep.batched_lanes"] == 6
        assert metrics.counters["sweep.procs_fused"] == 6
        assert all(r.procs_lanes == 2 for r in results)

    def test_single_procs_batch_reports_one_procs_lane(self):
        metrics = Metrics()
        results = run_sweep(
            _spec(procs=(2,)), workers=0, mode="batched", metrics=metrics
        )
        assert all(r.procs_lanes == 1 for r in results)
        assert "sweep.procs_fused" not in metrics.counters


class TestAccounting:
    def test_compile_dedup_counter(self):
        metrics = Metrics()
        results = run_sweep(
            _spec(), workers=0, mode="batched", metrics=metrics
        )
        # each batch compiles once; the other lanes reuse it
        deduped = [r for r in results if r.compile_dedup]
        assert len(deduped) == 4
        assert metrics.counters["sweep.compile_dedup"] == 4
        assert metrics.counters["sweep.jobs_ok"] == 6

    def test_pool_path_dedups_repeated_compiles_serially(self):
        metrics = Metrics()
        spec = SweepSpec(
            programs={"tomcatv": tomcatv_source(n=10, niter=1, procs=2)},
            procs=(2, 2),
            mode="compile",  # unbatchable: exercises the serial memo
        )
        results = run_sweep(spec, workers=0, mode="auto", metrics=metrics)
        assert [r.compile_dedup for r in results] == [False, True]
        assert metrics.counters["sweep.compile_dedup"] == 1

    def test_batched_duration_amortized_over_lanes(self):
        results = run_sweep(_spec(procs=(2,)), workers=0, mode="batched")
        durations = {r.duration_s for r in results}
        assert len(durations) == 1  # one batch wall clock, split evenly
        assert durations.pop() > 0


class TestFallback:
    def test_failing_batch_degrades_to_per_lane_execution(self, monkeypatch):
        import repro.sweep.batched as batched_mod

        def boom(batch, compiled):
            raise RuntimeError("vector evaluation exploded")

        monkeypatch.setattr(batched_mod, "_simulate_lanes", boom)
        metrics = Metrics()
        spec = _spec(procs=(2,))
        results = run_sweep(spec, workers=0, mode="batched", metrics=metrics)
        assert metrics.counters["sweep.batched_fallbacks"] == 1
        assert [r.worker for r in results] == ["batched-fallback"] * 3
        assert all(r.ok for r in results)
        # the fallback results match a plain pool run
        pool = run_sweep(spec, workers=0, mode="pool")
        for p, b in zip(pool, results):
            assert p.label == b.label
            assert p.canonical_stats == b.canonical_stats

    def test_fallback_reason_names_the_rung_and_failure(self, monkeypatch):
        import repro.sweep.batched as batched_mod

        def boom(batch, compiled):
            raise RuntimeError("vector evaluation exploded")

        monkeypatch.setattr(batched_mod, "_simulate_lanes", boom)
        metrics = Metrics()
        results = run_sweep(
            _spec(procs=(2,)), workers=0, mode="batched", metrics=metrics
        )
        for result in results:
            assert result.fallback_reason is not None
            assert result.fallback_reason.startswith("lane-eval: ")
            assert "RuntimeError: vector evaluation exploded" in (
                result.fallback_reason
            )
            assert result.as_dict()["fallback_reason"] == (
                result.fallback_reason
            )
        assert metrics.counters[
            "sweep.lane_fallback[reason=lane-eval]"
        ] == len(results)

    def test_fuse_degrade_stays_batched_but_records_reason(
        self, monkeypatch
    ):
        import repro.sweep.batched as batched_mod

        def nope(evaluated):
            raise ValueError("adoption refused")

        monkeypatch.setattr(batched_mod, "_fuse_simulations", nope)
        metrics = Metrics()
        spec = _spec(procs=(2, 4), machines=(SP2,))
        results = run_sweep(spec, workers=0, mode="batched", metrics=metrics)
        assert [r.worker for r in results] == ["batched"] * len(results)
        for result in results:
            assert result.fallback_reason.startswith("fuse: ")
            assert "ValueError: adoption refused" in result.fallback_reason
        assert metrics.counters["sweep.lane_fallback[reason=fuse]"] == len(
            results
        )
        # the degraded rung is byte-identical to the pool path
        pool = run_sweep(spec, workers=0, mode="pool")
        for p, b in zip(pool, results):
            assert p.canonical_stats == b.canonical_stats

    def test_healthy_batched_run_has_no_fallback_reason(self):
        results = run_sweep(_spec(procs=(2,)), workers=0, mode="batched")
        for result in results:
            assert result.fallback_reason is None
            assert "fallback_reason" not in result.as_dict()
