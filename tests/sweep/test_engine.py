"""The sweep engine: grid expansion, serial/parallel parity, and the
supervised failure paths (crash retry, timeout kill, serial
fallback)."""

import time

import pytest

from repro.core.driver import CompilerOptions
from repro.obs import Metrics
from repro.programs import dgefa_source, tomcatv_source
from repro.sweep import SweepJob, SweepResult, SweepSpec, run_sweep

SRC = dgefa_source(n=8, procs=2)
OPTS = CompilerOptions(num_procs=2)


def _job(label="", **kwargs):
    kwargs.setdefault("program", "dgefa")
    kwargs.setdefault("source", SRC)
    kwargs.setdefault("options", OPTS)
    kwargs.setdefault("procs", 2)
    return SweepJob(label=label, **kwargs)


class TestSpec:
    def test_grid_expansion_order(self):
        spec = SweepSpec(
            programs={"a": "SRC-A", "b": "SRC-B"},
            procs=(2, 4),
            axes={"strategy": ("consumer", "selected")},
        )
        jobs = spec.jobs()
        assert len(jobs) == len(spec) == 8
        # programs outermost, then procs, then axes
        assert [j.program for j in jobs] == ["a"] * 4 + ["b"] * 4
        assert [j.procs for j in jobs[:4]] == [2, 2, 4, 4]
        assert jobs[0].options.strategy == "consumer"
        assert jobs[1].options.strategy == "selected"
        assert jobs[0].options.num_procs == 2

    def test_callable_program_source(self):
        spec = SweepSpec(
            programs={"tomcatv": lambda p: tomcatv_source(n=8, niter=1, procs=p)},
            procs=(2, 4),
        )
        jobs = spec.jobs()
        assert "PROCS(2)" in jobs[0].source and "PROCS(4)" in jobs[1].source

    def test_rejects_unknown_axis(self):
        with pytest.raises(ValueError, match="no_such_flag"):
            SweepSpec(programs={"a": "x"}, axes={"no_such_flag": (1,)})

    def test_rejects_num_procs_axis(self):
        with pytest.raises(ValueError, match="SweepSpec.procs"):
            SweepSpec(programs={"a": "x"}, axes={"num_procs": (2, 4)})

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            SweepSpec(programs={"a": "x"}, mode="fly")

    def test_job_label_auto(self):
        job = _job(procs=4, options=CompilerOptions(num_procs=4, strategy="producer"))
        assert job.label == "dgefa[p=4,strategy=producer]"

    def test_result_as_dict_is_flat_json(self):
        import json

        result = SweepResult(
            label="x", program="p", mode="estimate", procs=2, options=OPTS,
            total_time=1.5,
        )
        record = result.as_dict()
        json.dumps(record)
        assert record["total_time"] == 1.5
        assert "elapsed" not in record  # other modes' fields stay out


class TestSerial:
    def test_estimate_mode(self):
        results = run_sweep([_job()], workers=0)
        (r,) = results
        assert r.ok and r.worker == "serial"
        assert r.total_time == pytest.approx(r.compute_time + r.comm_time)
        assert r.grid_size == 2

    def test_simulate_mode(self):
        (r,) = run_sweep([_job(mode="simulate")], workers=0)
        assert r.ok
        assert r.elapsed > 0
        assert set(r.canonical_stats) == {"procs", "clocks", "stats", "tiers"}
        assert r.messages is not None and r.fetches is not None

    def test_compile_mode(self):
        (r,) = run_sweep([_job(mode="compile")], workers=0)
        assert r.ok and "grid:" in r.report

    def test_on_result_streams_in_order(self):
        seen = []
        jobs = [_job(), _job(mode="compile")]
        run_sweep(jobs, workers=0, on_result=lambda r: seen.append(r.mode))
        assert seen == ["estimate", "compile"]

    def test_bad_source_reports_not_raises(self):
        (r,) = run_sweep(
            [_job(program="bad", source="garbage ! source")], workers=0
        )
        assert not r.ok and "ParseError" in r.error

    def test_injection_is_inert_outside_workers(self):
        (r,) = run_sweep(
            [_job(inject={"crash_attempts": 99, "fail_attempts": 99})],
            workers=0,
        )
        assert r.ok and r.worker == "serial"


class TestParallel:
    def test_parity_with_serial(self):
        spec = SweepSpec(
            programs={"tomcatv": lambda p: tomcatv_source(n=8, niter=1, procs=p)},
            procs=(2, 4),
            axes={"strategy": ("consumer", "selected")},
        )
        serial = run_sweep(spec, workers=0, mode="pool")
        # force the pool: in auto mode the procs axis now fuses into
        # batches and this grid would never reach a worker process
        parallel = run_sweep(spec, workers=2, timeout=120, mode="pool")
        assert [r.label for r in serial] == [r.label for r in parallel]
        for s, p in zip(serial, parallel):
            assert s.ok and p.ok
            assert p.total_time == pytest.approx(s.total_time, abs=0, rel=0)
            assert p.worker.startswith("worker-")

    def test_crash_is_retried(self):
        metrics = Metrics()
        jobs = [
            _job("crashy", inject={"crash_attempts": 1}),
            _job(),
        ]
        results = run_sweep(
            jobs, workers=2, retries=2, backoff=0.02, timeout=120,
            metrics=metrics,
        )
        crashy = next(r for r in results if r.label == "crashy")
        assert crashy.ok and crashy.attempts == 2
        assert metrics.counters["sweep.worker_crashes"] == 1
        assert metrics.counters["sweep.retries"] == 1

    def test_exhausted_retries_fall_back_to_serial(self):
        metrics = Metrics()
        jobs = [
            _job("doomed", inject={"crash_attempts": 99}),
            _job(),
        ]
        results = run_sweep(
            jobs, workers=2, retries=1, backoff=0.02, timeout=120,
            metrics=metrics,
        )
        doomed = next(r for r in results if r.label == "doomed")
        assert doomed.ok
        assert doomed.worker == "serial-fallback"
        assert metrics.counters["sweep.serial_fallbacks"] == 1
        # the fallback's numbers agree with a plain serial run
        (reference,) = run_sweep([_job()], workers=0)
        assert doomed.total_time == pytest.approx(reference.total_time)

    def test_timeout_kills_and_retries(self):
        metrics = Metrics()
        jobs = [
            _job("hang", inject={"hang_attempts": 1, "hang_seconds": 120}),
            _job(),
        ]
        start = time.monotonic()
        results = run_sweep(
            jobs, workers=2, retries=2, backoff=0.02, timeout=2.0,
            metrics=metrics,
        )
        assert time.monotonic() - start < 60
        hang = next(r for r in results if r.label == "hang")
        assert hang.ok and hang.attempts == 2
        assert metrics.counters["sweep.timeouts"] == 1

    def test_deterministic_failure_is_not_retried(self):
        jobs = [
            _job("raiser", inject={"fail_attempts": 5}),
            _job(),
        ]
        results = run_sweep(jobs, workers=2, retries=3, timeout=120)
        raiser = next(r for r in results if r.label == "raiser")
        assert not raiser.ok
        assert raiser.attempts == 1
        assert "injected failure" in raiser.error

    def test_disk_cache_shared_across_workers(self, tmp_path):
        jobs = [_job(), _job(options=CompilerOptions(num_procs=4), procs=4)]
        cold = run_sweep(jobs, workers=2, cache=tmp_path, timeout=120)
        assert not any(r.cache_hit for r in cold)
        warm = run_sweep(jobs, workers=2, cache=tmp_path, timeout=120)
        assert all(r.cache_hit for r in warm)
        for c, w in zip(cold, warm):
            assert w.total_time == pytest.approx(c.total_time, abs=0, rel=0)
