"""Grid-expansion edge cases and the batched/pool partition invariant:
however a job list is split, every grid point lands in exactly one
execution path, and the result list the caller sees is the job list —
same count, same order, same labels."""

import dataclasses

import pytest

from repro.core.driver import CompilerOptions
from repro.model import SP2
from repro.programs import dgefa_source
from repro.sweep import SweepJob, SweepSpec, plan_batches, run_sweep

FAST = MachineVariant = dataclasses.replace(
    SP2, name="fast-net", alpha=5e-6, beta=1.0 / 300e6
)
SRC = dgefa_source(n=8, procs=2)


def _job(**kwargs):
    kwargs.setdefault("program", "dgefa")
    kwargs.setdefault("source", SRC)
    kwargs.setdefault("options", CompilerOptions(num_procs=2))
    kwargs.setdefault("procs", 2)
    kwargs.setdefault("mode", "simulate")
    return SweepJob(**kwargs)


class TestSpecEdges:
    def test_empty_procs_axis(self):
        spec = SweepSpec(programs={"dgefa": SRC}, procs=())
        assert len(spec) == 0
        assert spec.jobs() == []
        assert run_sweep(spec, workers=0) == []

    def test_empty_programs(self):
        spec = SweepSpec(programs={}, procs=(2, 4))
        assert len(spec) == 0
        assert run_sweep(spec, workers=0) == []

    def test_duplicate_grid_points_all_survive(self):
        """Identical points (procs repeated) batch into one evaluation
        but still come back as distinct results, in grid order."""
        spec = SweepSpec(
            programs={"dgefa": SRC}, procs=(2, 2, 2), mode="simulate"
        )
        jobs = spec.jobs()
        assert len(jobs) == 3
        results = run_sweep(spec, workers=0, mode="batched")
        assert [r.label for r in results] == [j.label for j in jobs]
        assert all(r.ok for r in results)
        assert all(r.worker == "batched" for r in results)
        # the duplicates shared one compile
        assert [r.compile_dedup for r in results] == [False, True, True]
        assert results[0].canonical_stats == results[1].canonical_stats

    def test_none_procs_mixed_with_concrete(self):
        """procs=None (source directive decides) coexists with
        explicit counts in one grid."""
        spec = SweepSpec(
            programs={"dgefa": lambda p: dgefa_source(n=8, procs=p or 2)},
            procs=(None, 2, 4),
            mode="simulate",
        )
        jobs = spec.jobs()
        assert [j.procs for j in jobs] == [None, 2, 4]
        results = run_sweep(spec, workers=0, mode="auto")
        assert [r.label for r in results] == [j.label for j in jobs]
        assert all(r.ok for r in results)
        # None defers to the PROCESSORS directive; explicit counts win
        assert [r.grid_size for r in results] == [2, 2, 4]


class TestPartitionInvariant:
    def test_every_job_in_exactly_one_place(self):
        jobs = [
            _job(),  # lane 0 of batch A
            _job(options=CompilerOptions(num_procs=2, machine=FAST)),  # lane 1
            _job(mode="compile"),  # leftover: not batchable
            _job(mode="estimate"),  # batch B (mode differs)
            _job(inject={"fail_attempts": 1}),  # leftover: inject
            # lane 2 of batch A: the procs axis is a lane dimension
            # now, so a different count is a sub-group, not a new batch
            _job(procs=4, options=CompilerOptions(num_procs=4)),
            _job(),  # lane 3 of batch A (duplicate point)
        ]
        batches, leftover = plan_batches(jobs)
        batched_indices = [i for b in batches for i in b.indices]
        assert sorted(batched_indices + leftover) == list(range(len(jobs)))
        assert len(set(batched_indices)) == len(batched_indices)
        assert leftover == [2, 4]
        by_len = sorted(len(b) for b in batches)
        assert by_len == [1, 4]
        # batch A splits into one sub-group per compiled program
        big = next(b for b in batches if len(b) == 4)
        assert [len(g) for g in big.subgroups()] == [3, 1]

    def test_grouping_never_drops_or_duplicates_results(self):
        """The caller-visible contract: mixed batchable/unbatchable
        grids return one result per job, labels in job order,
        identically for every mode."""
        jobs = [
            _job(label="a"),
            _job(label="b", mode="compile"),
            _job(label="c", options=CompilerOptions(num_procs=2, machine=FAST)),
            _job(label="d", mode="estimate"),
            _job(label="e"),
        ]
        for mode in ("auto", "pool", "batched"):
            results = run_sweep(list(jobs), workers=0, mode=mode)
            assert [r.label for r in results] == ["a", "b", "c", "d", "e"]
            assert all(r.ok for r in results), mode

    def test_single_lane_batches_take_pool_path_in_auto(self):
        """auto only pays the batched machinery when some batch has
        lanes to fuse — points differing in a non-lane option (which
        changes the experiment) stay on the pool path."""
        jobs = [
            _job(),
            _job(options=CompilerOptions(num_procs=2, strategy="consumer")),
        ]
        results = run_sweep(jobs, workers=0, mode="auto")
        assert all(r.worker == "serial" for r in results)

    def test_procs_only_grid_fuses_in_auto(self):
        """The tentpole payoff: a pure procs sweep (one machine) is one
        batch of procs sub-groups, not one simulation per point."""
        jobs = [_job(), _job(procs=4, options=CompilerOptions(num_procs=4))]
        results = run_sweep(jobs, workers=0, mode="auto")
        assert all(r.worker == "batched" for r in results)
        assert all(r.procs_lanes == 2 for r in results)

    def test_rejects_unknown_exec_mode(self):
        with pytest.raises(ValueError, match="mode"):
            run_sweep([_job()], workers=0, mode="warp")
