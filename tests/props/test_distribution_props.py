"""Property-based tests: distribution ownership is a partition and
local↔global translation round-trips, for every format."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping import DimFormat

formats = st.builds(
    DimFormat,
    kind=st.sampled_from(["block", "cyclic"]),
    extent=st.integers(min_value=1, max_value=200),
    procs=st.integers(min_value=1, max_value=17),
    chunk=st.integers(min_value=1, max_value=5),
)


@given(formats)
def test_every_index_has_exactly_one_owner(fmt):
    for index in range(fmt.extent):
        owner = fmt.owner(index)
        assert 0 <= owner < fmt.procs


@given(formats)
def test_local_counts_partition_extent(fmt):
    assert sum(fmt.local_count(c) for c in range(fmt.procs)) == fmt.extent


@given(formats)
def test_owned_indices_match_owner(fmt):
    for coord in range(fmt.procs):
        for index in fmt.owned_indices(coord):
            assert fmt.owner(index) == coord


@given(formats)
def test_local_global_roundtrip(fmt):
    for index in range(fmt.extent):
        coord = fmt.owner(index)
        local = fmt.to_local(index)
        assert 0 <= local < fmt.local_count(coord)
        assert fmt.to_global(coord, local) == index


@given(formats)
def test_local_packing_is_dense_and_ordered(fmt):
    for coord in range(fmt.procs):
        locals_seen = [fmt.to_local(i) for i in fmt.owned_indices(coord)]
        assert locals_seen == list(range(fmt.local_count(coord)))


@given(formats)
def test_max_local_count_bounds_all(fmt):
    cap = fmt.max_local_count()
    assert all(fmt.local_count(c) <= cap for c in range(fmt.procs))


@given(
    st.integers(min_value=1, max_value=100),
    st.integers(min_value=1, max_value=8),
)
def test_block_owners_are_monotone(extent, procs):
    fmt = DimFormat(kind="block", extent=extent, procs=procs)
    owners = [fmt.owner(i) for i in range(extent)]
    assert owners == sorted(owners)
