"""Minimized fuzz divergences as pinned regressions, plus the
generator's validity invariants as properties.

Every divergence class a ``repro fuzz`` campaign has found lands here
minimized: the program from ``tests/corpus/`` re-runs through the same
differential lens that caught it, and a companion test pins the
*diagnosis* (what the engines are allowed to differ on) so a later
change cannot silently re-widen the parity surface.
"""

import pathlib

import numpy as np
import pytest

from repro.core.driver import CompilerOptions, compile_source
from repro.fuzz import GenConfig, check_program, check_tiers, generate, shrink
from repro.fuzz.generator import _array_roles
from repro.fuzz.harness import make_inputs, tier_payload
from repro.machine.simulator import simulate

CORPUS = pathlib.Path(__file__).resolve().parent.parent / "corpus"


# ---------------------------------------------------------------------------
# Divergence class 1: lazy vs eager per-rank array materialization
# ---------------------------------------------------------------------------
#
# Campaign seed 0, program seed 1 (minimized): a replicated-execution
# scalar reduction reading remote rows.  The walker never touches rank
# 0's copy of C (it stays deferred); the fast-path engines allocate it
# during setup.  The materialized contents are byte-identical — tiers
# may differ in *when* they allocate, never in semantic state — so the
# harness compares every declared array with materialization forced.


def _memory_repro() -> str:
    return (CORPUS / "regression_memory_materialization.hpf").read_text()


def test_memory_materialization_repro_is_tier_clean():
    divergences, reference = check_tiers(_memory_repro(), 3)
    assert divergences == []
    assert reference is not None


def test_materialization_timing_differs_but_state_matches():
    """The diagnosis, pinned: the walker leaves untouched per-rank
    copies unmaterialized where the lowered engine allocates them, and
    forcing materialization yields byte-identical data + validity."""
    source = _memory_repro()
    compiled = compile_source(source, CompilerOptions(num_procs=3))
    inputs = make_inputs(source, 0)
    walk = simulate(compiled, dict(inputs), fast_path=False)
    low = simulate(compiled, dict(inputs), fast_path=True, slab_path=False)
    walk_keys = set(walk.memories[0].arrays)
    low_keys = set(low.memories[0].arrays)
    assert walk_keys <= low_keys  # the class this regression pinned
    for rank in range(3):
        wm, lm = walk.memories[rank], low.memories[rank]
        for name in ("A", "B", "C", "W"):
            # indexing forces lazy storage to its semantic state
            assert wm.arrays[name].tobytes() == lm.arrays[name].tobytes()
            assert wm.valid[name].tobytes() == lm.valid[name].tobytes()


def test_tier_payload_covers_every_declared_array():
    """The harness's memory lens is total: every declared array appears
    in every rank's digest record, whether or not that tier touched it."""
    source = _memory_repro()
    compiled = compile_source(source, CompilerOptions(num_procs=3))
    sim = simulate(compiled, make_inputs(source, 0), fast_path=False)
    payload = tier_payload(sim)
    for record in payload["memories"]:
        assert {"A", "B", "C", "W"} <= set(record)


# ---------------------------------------------------------------------------
# Generator validity properties
# ---------------------------------------------------------------------------

SEEDS = range(0, 40)


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_programs_compile_everywhere(seed):
    program = generate(seed)
    for procs in (1, 3, 4):
        compile_source(
            program.emit(procs), CompilerOptions(num_procs=procs)
        )


def test_generation_is_deterministic():
    for seed in (0, 7, 123456789):
        assert generate(seed).emit() == generate(seed).emit()
        assert generate(seed).seed == seed


def test_independent_is_asserted_conservatively():
    """INDEPENDENT only lands on nests where every shared array is
    read-only or written-only (no loop-carried array flow), the outer
    step is forward, and the bounds are rectangular."""
    asserted = 0
    for seed in range(200):
        program = generate(seed)
        for nest in program.nests:
            if not nest.independent:
                continue
            asserted += 1
            assert nest.step == 1
            for loop in nest.inner:
                assert nest.var not in loop.low
                assert nest.var not in loop.high
            writes, reads = _array_roles(nest.all_stmts(), program.arrays)
            assert not (writes & reads)
    assert asserted > 0  # the property is exercised, not vacuous


def test_every_scalar_is_written_before_read():
    """Def-before-use for scalars: the interpreter rejects reads of
    unset scalars, so a clean run at procs=1 is the property."""
    for seed in range(20):
        program = generate(seed)
        source = program.emit(1)
        compiled = compile_source(source, CompilerOptions(num_procs=1))
        simulate(compiled, make_inputs(source, 0), fast_path=False)


def test_inputs_match_session_convention():
    program = generate(3)
    source = program.emit()
    inputs = make_inputs(source, 0)
    assert set(inputs) >= set(program.arrays)
    for name in program.arrays:
        assert inputs[name].shape == (program.n, program.n)
        assert np.all((inputs[name] >= 0.5) & (inputs[name] <= 1.5))


def test_scaled_config_grows_programs():
    big = GenConfig().scaled(2.0)
    assert big.max_nests >= GenConfig().max_nests
    program = generate(11, big)
    assert program.stmt_count() >= 1


def test_clone_is_deeply_independent():
    program = generate(5)
    clone = program.clone()
    stmt = clone.nests[0].all_stmts()[0]
    stmt.rhs = "0.0"
    stmt.guard = None
    assert program.emit() != clone.emit() or program.emit() == generate(5).emit()
    assert generate(5).emit() == program.emit()  # original untouched


def test_shrinker_preserves_the_failure_and_shrinks():
    """Shrinking under a syntactic predicate converges to a small
    program that still satisfies it and never grows."""
    program = next(
        p for p in (generate(seed) for seed in range(40))
        if p.stmt_count() >= 2
        and any("MAX" in s.rhs for n in p.nests for s in n.all_stmts())
    )

    def still_fails(candidate):
        return any(
            "MAX" in stmt.rhs
            for nest in candidate.nests
            for stmt in nest.all_stmts()
        ) if candidate.nests else False

    small = shrink(program, still_fails)
    assert still_fails(small)
    assert small.stmt_count() <= program.stmt_count()


def test_check_program_passes_on_survivors():
    for seed in (2, 3):
        assert check_program(generate(seed)) == []
