"""Tier parity over the checked-in fuzz corpus.

``tests/corpus/*.hpf`` holds surviving fuzz programs chosen for
feature coverage (every distribution plan, INDEPENDENT/NEW work
arrays, triangular/downward/imperfect nests, guards, folds) plus the
minimized reproducer of every divergence class a campaign has found.
Each file runs through the same differential battery the fuzzer
applies — all three forced tiers plus ``tier="auto"`` byte-identical,
and the parallel result matching the sequential interpreter — so the
corpus is a standing regression net, not documentation.
"""

import pathlib

import pytest

from repro.fuzz import check_sequential, check_tiers

CORPUS = pathlib.Path(__file__).resolve().parent.parent / "corpus"
FILES = sorted(CORPUS.glob("*.hpf"))


def test_corpus_is_populated():
    assert len(FILES) >= 10


@pytest.mark.parametrize("path", FILES, ids=[p.stem for p in FILES])
def test_corpus_tier_parity(path):
    source = path.read_text()
    for procs in (1, 3, 4):
        divergences, reference = check_tiers(source, procs)
        assert divergences == [], [d.describe() for d in divergences]
        assert reference is not None


@pytest.mark.parametrize("path", FILES, ids=[p.stem for p in FILES])
def test_corpus_matches_sequential(path):
    divergences = check_sequential(path.read_text(), 3)
    assert divergences == [], [d.describe() for d in divergences]
