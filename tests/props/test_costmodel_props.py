"""Property-based tests on the cost model: monotonicity and positivity
— the invariants the mapping algorithm's comparisons rely on."""

from hypothesis import given
from hypothesis import strategies as st

from repro.model import SP2, MachineModel

sizes = st.integers(min_value=0, max_value=10**6)
procs = st.integers(min_value=1, max_value=1024)


@given(sizes, sizes)
def test_message_time_monotone(a, b):
    small, large = sorted((a, b))
    assert SP2.message_time(small) <= SP2.message_time(large)


@given(sizes, procs, procs)
def test_broadcast_monotone_in_procs(elems, p1, p2):
    small, large = sorted((p1, p2))
    assert SP2.broadcast_time(elems, small) <= SP2.broadcast_time(elems, large)


@given(sizes, procs)
def test_collectives_nonnegative(elems, p):
    assert SP2.broadcast_time(elems, p) >= 0
    assert SP2.reduce_time(elems, p) >= 0
    assert SP2.gather_time(elems, p) >= 0


@given(sizes, procs)
def test_gather_at_least_broadcast(elems, p):
    assert SP2.gather_time(elems, p) >= SP2.broadcast_time(elems, p)


@given(sizes)
def test_shift_at_least_latency(elems):
    assert SP2.shift_time(elems) >= SP2.alpha


@given(st.integers(min_value=0, max_value=1000), st.integers(min_value=1, max_value=10**6))
def test_compute_time_linear_in_instances(flops, instances):
    one = SP2.compute_time(flops, 1)
    many = SP2.compute_time(flops, instances)
    assert abs(many - instances * one) < 1e-9 * max(1.0, many)


@given(
    st.floats(min_value=1e-7, max_value=1e-3),
    st.floats(min_value=1e-10, max_value=1e-6),
)
def test_custom_machine_parameters_respected(alpha, beta):
    machine = MachineModel(alpha=alpha, beta=beta)
    assert machine.message_time(0) == alpha
    assert machine.message_time(1) > alpha
