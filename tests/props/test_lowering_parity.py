"""Parity: the lowered fast path (``repro.machine.lowering``) is
bit-for-bit identical to the tree-walking interpreter.

Every IR expression and statement kind — unary ops, every binary op
(including Fortran integer division), every intrinsic, GOTO into a
loop body, zero-trip loops, negative steps, reductions, privatized
control flow — runs through both the lowered and the interpreted path
of the sequential interpreter *and* of the SPMD simulator, asserting
identical values, virtual clocks, and message counts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import run_sequential
from repro.core import CompilerOptions, compile_source
from repro.ir import parse_and_build
from repro.machine import simulate


def assert_parity(source, inputs=None, procs=4, strategy="selected", **opts):
    """Run ``source`` four ways and require exact agreement.

    Sequential fast vs slow: identical stores. SPMD fast vs slow:
    identical clocks, traffic stats, gathered arrays, and per-rank
    memory state. The simulator result must also match the sequential
    ground truth numerically.
    """
    fast_seq = run_sequential(parse_and_build(source), inputs, fast_path=True)
    slow_seq = run_sequential(parse_and_build(source), inputs, fast_path=False)
    assert fast_seq.scalars == slow_seq.scalars
    for name, values in slow_seq.arrays.items():
        assert fast_seq.arrays[name].tobytes() == values.tobytes(), name

    compiled = compile_source(
        source, CompilerOptions(strategy=strategy, num_procs=procs, **opts)
    )
    fast = simulate(compiled, inputs, fast_path=True)
    slow = simulate(compiled, inputs, fast_path=False)
    assert fast.clocks.snapshot() == slow.clocks.snapshot()
    assert fast.stats.as_dict() == slow.stats.as_dict()
    for name, values in slow_seq.arrays.items():
        gathered = fast.gather(name)
        assert gathered.tobytes() == slow.gather(name).tobytes(), name
        assert np.allclose(gathered, values), name
    for fm, sm in zip(fast.memories, slow.memories):
        for name in sm.arrays:
            assert fm.arrays[name].tobytes() == sm.arrays[name].tobytes()
            assert fm.valid[name].tobytes() == sm.valid[name].tobytes()
        assert fm.scalars == sm.scalars
        assert fm.scalar_valid == sm.scalar_valid
    return fast, slow


def _inputs(names, n, seed=0, lo=1.0, hi=2.0):
    rng = np.random.default_rng(seed)
    return {name: rng.uniform(lo, hi, n) for name in names}


HEADER = (
    "PROGRAM P\n  PARAMETER (n = {n})\n"
    "  REAL A(n), B(n), C(n)\n{decls}"
    "!HPF$ ALIGN (i) WITH A(i) :: B, C\n"
    "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
)


def program(body, n=12, decls=""):
    return HEADER.format(n=n, decls=decls) + body + "END PROGRAM\n"


class TestStatementKinds:
    def test_unops_and_logical_binops(self):
        # UnOp -, .NOT.; BinOp .AND./.OR. and every comparison,
        # stored through a LOGICAL scalar and through predicates.
        src = program(
            "  DO i = 1, n\n"
            "    f = (B(i) > 1.5) .AND. .NOT. (B(i) >= 1.9)\n"
            "    g = (B(i) <= 1.1) .OR. (B(i) < 1.05) .OR. (B(i) == C(i))\n"
            "    IF (f .OR. g) THEN\n"
            "      A(i) = -B(i)\n"
            "    ELSE\n"
            "      A(i) = -(-C(i))\n"
            "    END IF\n"
            "    IF (B(i) /= C(i)) THEN\n"
            "      A(i) = A(i) + 0.5\n"
            "    END IF\n"
            "  END DO\n",
            decls="  LOGICAL f, g\n",
        )
        assert_parity(src, _inputs("ABC", 12))

    def test_arithmetic_binops_and_integer_division(self):
        # + - * / ** on reals; Fortran toward-zero integer division
        # with every sign combination; MOD on negatives.
        src = program(
            "  DO i = 1, n\n"
            "    k = 2 * i - n\n"
            "    m = k / 3 + (-k) / 3 + k / (-3) + (0 - 7) / (i + 1)\n"
            "    m = m + MOD(k, 4) + MOD(-k, 4)\n"
            "    A(i) = (B(i) + 1.5) * 2.0 / 4.0 + C(i) ** 2 - 0.25\n"
            "    A(i) = A(i) + REAL(m) / 8.0\n"
            "  END DO\n",
            decls="  INTEGER k, m\n",
        )
        assert_parity(src, _inputs("ABC", 12))

    def test_every_intrinsic(self):
        src = program(
            "  DO i = 1, n\n"
            "    A(i) = SQRT(ABS(B(i) - 1.5)) + EXP(B(i) * 0.1) + LOG(B(i))\n"
            "    A(i) = A(i) + SIN(B(i)) + COS(C(i)) + SIGN(0.5, B(i) - 1.5)\n"
            "    A(i) = A(i) + MAX(B(i), C(i), 1.2) + MIN(B(i), C(i))\n"
            "    k = INT(B(i) * 10.0)\n"
            "    A(i) = A(i) + REAL(MOD(k, 3)) + FLOAT(k) / 100.0\n"
            "  END DO\n",
            decls="  INTEGER k\n",
        )
        assert_parity(src, _inputs("ABC", 12))

    def test_goto_into_loop_body(self):
        # Figure 7 shape: a forward GO TO targeting a label inside the
        # loop, skipping statements, under privatized control flow.
        src = program(
            "  DO i = 1, n\n"
            "    IF (B(i) /= 0.0) THEN\n"
            "      A(i) = A(i) / B(i)\n"
            "      IF (B(i) < 1.3) GO TO 100\n"
            "    ELSE\n"
            "      A(i) = C(i)\n"
            "    END IF\n"
            "    C(i) = C(i) * C(i)\n"
            "100 CONTINUE\n"
            "  END DO\n"
        )
        assert_parity(src, _inputs("ABC", 12))

    def test_zero_trip_and_negative_step_loops(self):
        src = program(
            "  DO i = n, 1, -1\n"
            "    A(i) = B(i) + 1.0\n"
            "  END DO\n"
            "  DO i = 5, 1\n"
            "    A(i) = 999.0\n"
            "  END DO\n"
            "  DO i = n, 2, -2\n"
            "    A(i) = A(i) * 2.0 - C(i)\n"
            "  END DO\n"
        )
        assert_parity(src, _inputs("ABC", 12))

    def test_reduction_and_broadcast(self):
        src = program(
            "  s = 0.0\n"
            "  DO i = 1, n\n"
            "    s = s + B(i) * B(i)\n"
            "  END DO\n"
            "  DO i = 1, n\n"
            "    A(i) = s + C(i)\n"
            "  END DO\n",
            decls="  REAL s\n",
        )
        assert_parity(src, _inputs("ABC", 12))

    def test_loop_bounds_from_expressions(self):
        # Lowered bound closures: bounds depending on scalars and
        # arithmetic, plus a triangular nest.
        src = program(
            "  k = n / 2\n"
            "  DO i = k - 1, 2 * k - 2\n"
            "    A(i) = B(i) + 1.0\n"
            "  END DO\n"
            "  DO i = 1, n\n"
            "    DO j = i, n\n"
            "      C(j) = C(j) + 0.001\n"
            "    END DO\n"
            "  END DO\n",
            decls="  INTEGER k\n",
        )
        assert_parity(src, _inputs("ABC", 12))


@pytest.mark.parametrize(
    "strategy", ["selected", "producer", "replication", "noalign"]
)
def test_parity_under_every_strategy(strategy):
    src = program(
        "  DO i = 2, n - 1\n"
        "    t = B(i - 1) + B(i + 1)\n"
        "    A(i) = t * 0.5 + C(i)\n"
        "  END DO\n",
        decls="  REAL t\n",
    )
    assert_parity(src, _inputs("ABC", 12), strategy=strategy)


@pytest.mark.parametrize(
    "opts",
    [
        {"message_vectorization": False},
        {"combine_messages": True},
        {"align_reductions": False},
        {"partial_privatization": False},
    ],
)
def test_parity_under_option_ablations(opts):
    src = program(
        "  s = 0.0\n"
        "  DO i = 2, n - 1\n"
        "    A(i) = B(i - 1) + C(i + 1)\n"
        "    s = s + A(i)\n"
        "  END DO\n"
        "  DO i = 1, n\n"
        "    C(i) = s\n"
        "  END DO\n",
        decls="  REAL s\n",
    )
    assert_parity(src, _inputs("ABC", 12), **opts)


# ---------------------------------------------------------------------------
# Property: random expression trees agree in both paths.
# ---------------------------------------------------------------------------


@st.composite
def expressions(draw, depth=0):
    """A random, numerically safe expression over B(i), C(i), i."""
    if depth >= 3 or draw(st.booleans()):
        return draw(
            st.sampled_from(
                ["B(i)", "C(i)", "REAL(i)", "1.25", "0.5", "B(i + 1)"]
            )
        )
    kind = draw(st.sampled_from(["bin", "un", "call", "call2"]))
    a = draw(expressions(depth=depth + 1))
    if kind == "un":
        return f"(-{a})"
    if kind == "call":
        name = draw(st.sampled_from(["ABS", "SQRT", "COS", "SIN"]))
        inner = f"ABS({a})" if name == "SQRT" else a
        return f"{name}({inner})"
    b = draw(expressions(depth=depth + 1))
    if kind == "call2":
        name = draw(st.sampled_from(["MAX", "MIN", "SIGN"]))
        return f"{name}({a}, {b})"
    op = draw(st.sampled_from(["+", "-", "*"]))
    return f"({a} {op} {b})"


@given(expressions(), st.integers(min_value=2, max_value=5))
@settings(max_examples=20, deadline=None)
def test_random_expressions_agree(expr, procs):
    n = 10
    src = program(
        f"  DO i = 2, n - 1\n    A(i) = {expr}\n  END DO\n", n=n
    )
    assert_parity(src, _inputs("ABC", n, seed=3), procs=procs)
