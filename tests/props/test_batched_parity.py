"""Property: the batched sweep fast path is byte-for-bit invisible.

Machine parameters are *write-only* during a simulated run — they price
the virtual clocks but never steer control flow, fetch schedules, or
tier decisions — so a lane-vector simulation over N machine variants
must reproduce each variant's dedicated scalar run exactly.  These
tests byte-compare (canonical JSON) the batched sweep's per-lane
records against per-point ``tier="auto"`` simulations for the three
paper kernels over a ≥7-point grid each, and a hypothesis property
hammers the lane arithmetic with randomized machine parameters."""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.driver import CompilerOptions, compile_source
from repro.machine.batchexec import VectorMachine
from repro.machine.simulator import simulate
from repro.model import SP2, MachineModel
from repro.programs import appsp_source, dgefa_source, tomcatv_source
from repro.sweep import SweepSpec, run_sweep

FAST = dataclasses.replace(SP2, name="fast-net", alpha=5e-6, beta=1.0 / 300e6)
SLOW = dataclasses.replace(SP2, name="slow-cpu", flop_time=1.0 / 5e6)
WAN = dataclasses.replace(SP2, name="wan", alpha=5e-3, beta=1.0 / 1e6)

#: program name -> (source builder, procs values); each grid is
#: procs x machines >= 7 points (the ISSUE's parity floor)
GRIDS = {
    "tomcatv": (lambda p: tomcatv_source(n=10, niter=1, procs=p), (1, 2, 4)),
    "dgefa": (lambda p: dgefa_source(n=10, procs=p), (1, 2, 4)),
    "appsp": (
        lambda p: appsp_source(nx=8, ny=8, nz=8, niter=1, procs=p),
        (2, 4),
    ),
}
MACHINES = (SP2, FAST, SLOW, WAN)


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def _reference_stats(source: str, options: CompilerOptions, seed: int):
    """What one dedicated scalar grid point produces: fresh compile,
    deterministic inputs, tier="auto" simulation."""
    compiled = compile_source(source, options)
    rng = np.random.default_rng(seed)
    inputs = {
        s.name: rng.uniform(0.5, 1.5, tuple(s.extent(d) for d in range(s.rank)))
        for s in compiled.proc.symbols.arrays()
    }
    sim = simulate(compiled, inputs, tier="auto")
    return sim.canonical_stats(), sim.elapsed, sim.stats.messages


@pytest.mark.parametrize("program", sorted(GRIDS))
def test_batched_sweep_matches_per_point_simulation(program):
    builder, procs = GRIDS[program]
    spec = SweepSpec(
        programs={program: builder},
        procs=procs,
        axes={"machine": MACHINES},
        mode="simulate",
        seed=3,
    )
    jobs = spec.jobs()
    assert len(jobs) >= 7
    results = run_sweep(spec, workers=0, mode="batched")
    assert [r.label for r in results] == [j.label for j in jobs]
    for job, result in zip(jobs, results):
        assert result.ok, result.error
        assert result.worker == "batched"
        stats, elapsed, messages = _reference_stats(
            job.source, job.options, job.seed
        )
        assert _canonical(result.canonical_stats) == _canonical(stats)
        assert result.elapsed == elapsed  # bitwise, not approx
        assert result.messages == messages


COMPILED = None


def _compiled():
    """One shared tomcatv compile for the hypothesis property (machine
    parameters cannot influence compilation)."""
    global COMPILED
    if COMPILED is None:
        COMPILED = compile_source(
            tomcatv_source(n=8, niter=1, procs=2),
            CompilerOptions(num_procs=2),
        )
    return COMPILED


def _inputs(compiled, seed=11):
    rng = np.random.default_rng(seed)
    return {
        s.name: rng.uniform(0.5, 1.5, tuple(s.extent(d) for d in range(s.rank)))
        for s in compiled.proc.symbols.arrays()
    }


@st.composite
def machine_models(draw):
    return MachineModel(
        name="drawn",
        alpha=draw(st.floats(min_value=1e-9, max_value=1e-2)),
        beta=draw(st.floats(min_value=1e-10, max_value=1e-5)),
        flop_time=draw(st.floats(min_value=1e-10, max_value=1e-6)),
        stmt_overhead=draw(st.floats(min_value=0.0, max_value=1e-6)),
    )


@settings(max_examples=10, deadline=None)
@given(models=st.lists(machine_models(), min_size=1, max_size=4))
def test_lane_vector_clocks_match_scalar_runs(models):
    compiled = _compiled()
    sim = simulate(
        compiled, _inputs(compiled), machine=VectorMachine(models),
        tier="auto",
    )
    for lane, model in enumerate(models):
        scalar = simulate(
            compiled, _inputs(compiled), machine=model, tier="auto"
        )
        assert _canonical(sim.clocks.lane_snapshot(lane)) == _canonical(
            scalar.canonical_stats()["clocks"]
        )
        assert sim.clocks.lane_elapsed(lane) == scalar.elapsed
