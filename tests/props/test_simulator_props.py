"""Property: the SPMD simulator agrees with the sequential interpreter
on randomized stencil-ish programs, under every strategy."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import run_sequential
from repro.core import CompilerOptions, compile_source
from repro.ir import parse_and_build
from repro.machine import simulate


@st.composite
def stencil_programs(draw):
    """Random single-nest programs over aligned 1-D arrays."""
    n = draw(st.integers(min_value=6, max_value=12))
    stmts = []
    n_stmts = draw(st.integers(min_value=1, max_value=4))
    temps_defined = []
    for k in range(n_stmts):
        use_temp = temps_defined and draw(st.booleans())
        off1 = draw(st.integers(min_value=-1, max_value=1))
        off2 = draw(st.integers(min_value=-1, max_value=1))
        src1 = f"B(i {'+' if off1 >= 0 else '-'} {abs(off1)})" if off1 else "B(i)"
        src2 = f"C(i {'+' if off2 >= 0 else '-'} {abs(off2)})" if off2 else "C(i)"
        rhs = f"{src1} + {src2}"
        if use_temp:
            rhs += f" + {temps_defined[-1]}"
        kind = draw(st.sampled_from(["temp", "array"]))
        if kind == "temp":
            temp = f"T{k}"
            stmts.append(f"{temp} = {rhs}")
            temps_defined.append(temp)
        else:
            stmts.append(f"A(i) = {rhs}")
    if not any(s.startswith("A(") for s in stmts):
        stmts.append(f"A(i) = {temps_defined[-1]}" if temps_defined else "A(i) = B(i)")
    body = "".join(f"    {s}\n" for s in stmts)
    temp_decl = ""
    if temps_defined:
        temp_decl = "  REAL " + ", ".join(temps_defined) + "\n"
    source = (
        f"PROGRAM R\n  PARAMETER (n = {n})\n"
        "  REAL A(n), B(n), C(n)\n" + temp_decl +
        "!HPF$ ALIGN (i) WITH A(i) :: B, C\n"
        "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
        "  DO i = 2, n - 1\n" + body + "  END DO\n"
        "END PROGRAM\n"
    )
    return source, n


@given(stencil_programs(), st.sampled_from(["selected", "producer", "replication", "noalign"]))
@settings(max_examples=25, deadline=None)
def test_simulator_matches_sequential(case, strategy):
    source, n = case
    rng = np.random.default_rng(42)
    inputs = {
        "A": rng.uniform(1, 2, n),
        "B": rng.uniform(1, 2, n),
        "C": rng.uniform(1, 2, n),
    }
    seq = run_sequential(parse_and_build(source), inputs)
    compiled = compile_source(source, CompilerOptions(strategy=strategy, num_procs=3))
    sim = simulate(compiled, inputs)
    assert np.allclose(sim.gather("A"), seq.get_array("A"))
    assert sim.stats.unexpected_fetches == 0


@given(stencil_programs(), st.integers(min_value=1, max_value=6))
@settings(max_examples=20, deadline=None)
def test_result_independent_of_processor_count(case, procs):
    source, n = case
    rng = np.random.default_rng(7)
    inputs = {
        "A": rng.uniform(1, 2, n),
        "B": rng.uniform(1, 2, n),
        "C": rng.uniform(1, 2, n),
    }
    compiled = compile_source(source, CompilerOptions(num_procs=procs))
    sim = simulate(compiled, inputs)
    seq = run_sequential(parse_and_build(source), inputs)
    assert np.allclose(sim.gather("A"), seq.get_array("A"))
