"""Property-based tests on SSA invariants over generated straight-line
and structured programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import build_ssa, compute_dominance
from repro.ir import ScalarRef, build_cfg, parse_and_build

SCALARS = ["X", "Y", "Z", "W"]
ARRAYS = ["A", "B"]


@st.composite
def statements(draw, depth=0):
    kind = draw(
        st.sampled_from(
            ["assign", "assign", "assign", "if", "loop"] if depth < 2 else ["assign"]
        )
    )
    if kind == "assign":
        target = draw(st.sampled_from(SCALARS))
        op1 = draw(st.sampled_from(SCALARS + ["1.0", "2.0"]))
        op2 = draw(st.sampled_from(SCALARS + ["3.0"]))
        return [f"{target} = {op1} + {op2}"]
    if kind == "if":
        cond_var = draw(st.sampled_from(SCALARS))
        then_body = draw(st.lists(statements(depth + 1), min_size=1, max_size=2))
        else_body = draw(st.lists(statements(depth + 1), min_size=0, max_size=2))
        lines = [f"IF ({cond_var} > 0.0) THEN"]
        for block in then_body:
            lines.extend("  " + l for l in block)
        if else_body:
            lines.append("ELSE")
            for block in else_body:
                lines.extend("  " + l for l in block)
        lines.append("END IF")
        return lines
    loop_var = draw(st.sampled_from(["I", "J"]))
    body = draw(st.lists(statements(depth + 1), min_size=1, max_size=2))
    lines = [f"DO {loop_var} = 1, 4"]
    for block in body:
        lines.extend("  " + l for l in block)
    lines.append("END DO")
    return lines


@st.composite
def programs(draw):
    init = [f"{s} = 1.0" for s in SCALARS]
    blocks = draw(st.lists(statements(), min_size=1, max_size=5))
    body = init + [line for block in blocks for line in block]
    text = "PROGRAM G\n  REAL X, Y, Z, W\n"
    text += "".join(f"  {line}\n" for line in body)
    text += "END PROGRAM\n"
    return text


@given(programs())
@settings(max_examples=40, deadline=None)
def test_every_use_has_reaching_defs(source):
    proc = parse_and_build(source)
    cfg = build_cfg(proc)
    ssa = build_ssa(cfg)
    for stmt in proc.all_stmts():
        for ref in stmt.uses():
            if isinstance(ref, ScalarRef) and ref.symbol.is_scalar:
                if ref.symbol.is_loop_var:
                    continue
                assert ssa.reaching_real_defs(ref), f"no defs reach {ref} in:\n{source}"


@given(programs())
@settings(max_examples=40, deadline=None)
def test_defs_dominate_direct_uses(source):
    """A (non-phi) definition dominates every use that directly sees it."""
    proc = parse_and_build(source)
    cfg = build_cfg(proc)
    dom = compute_dominance(cfg)
    ssa = build_ssa(cfg, dom=dom)
    for def_id, use_refs in ssa.direct_uses.items():
        d = ssa.defs[def_id]
        if d.kind == "phi":
            continue
        for ref_id in use_refs:
            use_node = ssa.use_info[ref_id][1]
            assert dom.dominates(d.node, use_node)


@given(programs())
@settings(max_examples=40, deadline=None)
def test_phi_operand_count_matches_preds(source):
    proc = parse_and_build(source)
    cfg = build_cfg(proc)
    ssa = build_ssa(cfg)
    for node_index, phis in ssa.phis_at.items():
        node = cfg.nodes[node_index]
        for def_id in phis:
            phi = ssa.defs[def_id]
            assert 1 <= len(phi.operands) <= len(node.preds)


@given(programs())
@settings(max_examples=40, deadline=None)
def test_reached_uses_inverse_of_reaching_defs(source):
    """If u is a reached use of d, then d is a reaching def of u."""
    proc = parse_and_build(source)
    cfg = build_cfg(proc)
    ssa = build_ssa(cfg)
    for d in list(ssa.defs.values()):
        if not d.is_real:
            continue
        for use in ssa.reached_uses(d):
            assert d in ssa.reaching_real_defs(use)
