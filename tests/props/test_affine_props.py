"""Property: affine-form extraction is semantics-preserving — for
expressions over integer scalars, evaluating the affine form equals
evaluating the original expression."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.expr import (
    BinOp,
    Const,
    ScalarRef,
    UnOp,
    affine_form,
)
from repro.ir.symbols import ScalarType, Symbol, SymbolKind

VARS = [
    Symbol(name=name, kind=SymbolKind.SCALAR, type=ScalarType.INT)
    for name in ("I", "J", "K")
]


@st.composite
def int_exprs(draw, depth=0):
    if depth >= 4:
        choice = draw(st.sampled_from(["const", "var"]))
    else:
        choice = draw(
            st.sampled_from(["const", "var", "add", "sub", "mul_const", "neg"])
        )
    if choice == "const":
        return Const(value=draw(st.integers(min_value=-20, max_value=20)))
    if choice == "var":
        return ScalarRef(symbol=draw(st.sampled_from(VARS)))
    if choice == "neg":
        return UnOp(op="-", operand=draw(int_exprs(depth + 1)))
    if choice == "mul_const":
        factor = Const(value=draw(st.integers(min_value=-5, max_value=5)))
        inner = draw(int_exprs(depth + 1))
        if draw(st.booleans()):
            return BinOp(op="*", left=factor, right=inner)
        return BinOp(op="*", left=inner, right=factor)
    op = "+" if choice == "add" else "-"
    return BinOp(op=op, left=draw(int_exprs(depth + 1)), right=draw(int_exprs(depth + 1)))


def eval_plain(expr, env):
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, ScalarRef):
        return env[expr.symbol.name]
    if isinstance(expr, UnOp):
        return -eval_plain(expr.operand, env)
    if expr.op == "+":
        return eval_plain(expr.left, env) + eval_plain(expr.right, env)
    if expr.op == "-":
        return eval_plain(expr.left, env) - eval_plain(expr.right, env)
    if expr.op == "*":
        return eval_plain(expr.left, env) * eval_plain(expr.right, env)
    raise AssertionError(expr.op)


def eval_form(form, env):
    total = form.const
    for symbol, coeff in form.coeffs:
        total += coeff * env[symbol.name]
    return total


@given(
    int_exprs(),
    st.integers(min_value=-50, max_value=50),
    st.integers(min_value=-50, max_value=50),
    st.integers(min_value=-50, max_value=50),
)
@settings(max_examples=200)
def test_affine_form_preserves_value(expr, i, j, k):
    env = {"I": i, "J": j, "K": k}
    form = affine_form(expr)
    assert form is not None, f"generated expr should be affine: {expr}"
    assert eval_form(form, env) == eval_plain(expr, env)


@given(int_exprs())
@settings(max_examples=100)
def test_affine_form_has_no_zero_coeffs(expr):
    form = affine_form(expr)
    assert form is not None
    assert all(c != 0 for _, c in form.coeffs)


@given(int_exprs(), int_exprs())
@settings(max_examples=100)
def test_affine_addition_is_componentwise(a, b):
    combined = affine_form(BinOp(op="+", left=a, right=b))
    fa, fb = affine_form(a), affine_form(b)
    assert combined.const == fa.const + fb.const
    for symbol in VARS:
        assert combined.coeff(symbol) == fa.coeff(symbol) + fb.coeff(symbol)
