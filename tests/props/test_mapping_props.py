"""Property tests on the mapping pass's own invariants:

* the paper's consistency rule — "given a use (read reference) of a
  scalar variable, all reaching definitions are given an identical
  mapping";
* the alignment-validity rule — every AlignedTo decision satisfies
  ``AlignLevel(target) <= privatization level``;
* determinism — recompiling yields identical decisions;
* executor sanity — owner-guarded statements always have at least one
  concrete position dimension.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AlignedTo,
    CompilerOptions,
    compile_source,
)
from repro.ir import ScalarRef

SCALARS = ["X", "Y", "Z"]


@st.composite
def mapped_programs(draw):
    """Random single-nest programs over aligned arrays with scalar
    temporaries, conditionals, and optional cross-statement chains."""
    n = draw(st.integers(min_value=8, max_value=20))
    lines = []
    n_stmts = draw(st.integers(min_value=2, max_value=6))
    defined: list[str] = []
    for k in range(n_stmts):
        kind = draw(st.sampled_from(["temp", "array", "cond-temp"]))
        operand1 = draw(st.sampled_from(["B(i)", "C(i)", "E(i)", "1.5"]))
        operand2 = draw(
            st.sampled_from(["B(i)", "C(i)", "E(i)"] + defined[-1:])
        )
        rhs = f"{operand1} + {operand2}"
        if kind == "temp":
            target = draw(st.sampled_from(SCALARS))
            lines.append(f"    {target} = {rhs}")
            defined.append(target)
        elif kind == "cond-temp":
            target = draw(st.sampled_from(SCALARS))
            lines.append(f"    IF (E(i) > 0.5) THEN")
            lines.append(f"      {target} = {rhs}")
            lines.append(f"    ELSE")
            lines.append(f"      {target} = {operand1}")
            lines.append(f"    END IF")
            defined.append(target)
        else:
            lines.append(f"    A(i) = {rhs}")
    if defined:
        lines.append(f"    A(i) = {defined[-1]}")
    body = "\n".join(lines)
    return (
        f"PROGRAM R\n  PARAMETER (n = {n})\n"
        "  REAL A(n), B(n), C(n), E(n)\n"
        "  REAL X, Y, Z\n"
        "!HPF$ ALIGN (i) WITH A(i) :: B, C\n"
        "!HPF$ ALIGN (i) WITH A(*) :: E\n"
        "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
        f"  DO i = 2, n - 1\n{body}\n  END DO\n"
        "END PROGRAM\n"
    )


@given(mapped_programs(), st.sampled_from(["selected", "producer", "consumer"]))
@settings(max_examples=40, deadline=None)
def test_consistency_rule(source, strategy):
    """All reaching defs of every scalar use share one mapping."""
    compiled = compile_source(
        source, CompilerOptions(strategy=strategy, num_procs=4)
    )
    ssa = compiled.ctx.ssa
    decisions = compiled.scalar_pass.decisions
    for stmt in compiled.proc.all_stmts():
        for use in stmt.uses():
            if not isinstance(use, ScalarRef) or use.symbol.is_loop_var:
                continue
            reaching = [
                d for d in ssa.reaching_real_defs(use) if d.is_real
            ]
            mappings = {
                str(decisions.get(d.def_id))
                for d in reaching
                if d.def_id in decisions
            }
            assert len(mappings) <= 1, (
                f"use {use} sees inconsistent mappings {mappings} in\n{source}"
            )


@given(mapped_programs())
@settings(max_examples=40, deadline=None)
def test_alignment_validity_invariant(source):
    """AlignLevel(target) never exceeds the def's privatization level."""
    compiled = compile_source(source, CompilerOptions(num_procs=4))
    ctx = compiled.ctx
    for stmt in compiled.proc.assignments():
        if not isinstance(stmt.lhs, ScalarRef):
            continue
        mapping = compiled.scalar_mapping_of(stmt.stmt_id)
        if not isinstance(mapping, AlignedTo):
            continue
        d = ctx.ssa.def_of_assignment(stmt)
        level = ctx.priv.deepest_privatization_level(d)
        # The decision may have been propagated from a related def; the
        # invariant must still hold for any def it is attached to.
        if level is not None:
            assert mapping.align_level <= level, (stmt, mapping, source)


@given(mapped_programs(), st.sampled_from(["selected", "replication", "noalign"]))
@settings(max_examples=25, deadline=None)
def test_compilation_deterministic(source, strategy):
    a = compile_source(source, CompilerOptions(strategy=strategy, num_procs=4))
    b = compile_source(source, CompilerOptions(strategy=strategy, num_procs=4))
    decisions_a = sorted(
        (s.stmt_id - a.proc.body[0].stmt_id, str(a.scalar_mapping_of(s.stmt_id)))
        for s in a.proc.assignments()
        if isinstance(s.lhs, ScalarRef)
    )
    decisions_b = sorted(
        (s.stmt_id - b.proc.body[0].stmt_id, str(b.scalar_mapping_of(s.stmt_id)))
        for s in b.proc.assignments()
        if isinstance(s.lhs, ScalarRef)
    )
    assert [d for _, d in decisions_a] == [d for _, d in decisions_b]
    assert len(a.comm.events) == len(b.comm.events)


@given(mapped_programs())
@settings(max_examples=25, deadline=None)
def test_owner_executors_have_concrete_position(source):
    compiled = compile_source(source, CompilerOptions(num_procs=4))
    for info in compiled.executors.values():
        if info.kind == "owner":
            assert any(p.kind != "any" for p in info.position) or all(
                p.kind == "any" for p in info.position
            )
            assert info.guard_ref is not None
