"""Property-based tests for processor grids and array mappings."""

import itertools

from hypothesis import given
from hypothesis import strategies as st

from repro.ir import parse_and_build
from repro.mapping import ProcessorGrid, resolve_mappings

shapes = st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=3)


@given(shapes)
def test_rank_coords_bijection(shape):
    grid = ProcessorGrid(name="P", shape=tuple(shape))
    seen = set()
    for rank in grid.all_ranks():
        coords = grid.coords_of(rank)
        assert grid.rank_of(coords) == rank
        seen.add(coords)
    assert len(seen) == grid.size


@given(shapes)
def test_all_coords_enumerates_grid(shape):
    grid = ProcessorGrid(name="P", shape=tuple(shape))
    assert len(list(grid.all_coords())) == grid.size


@given(
    st.integers(min_value=4, max_value=40),
    st.integers(min_value=1, max_value=6),
    st.sampled_from(["BLOCK", "CYCLIC"]),
)
def test_ownership_partitions_index_space(n, procs, fmt):
    src = (
        f"PROGRAM T\n  REAL A({n})\n"
        f"!HPF$ DISTRIBUTE ({fmt}) :: A\nEND PROGRAM\n"
    )
    proc = parse_and_build(src)
    grid = ProcessorGrid(name="P", shape=(procs,))
    mapping = resolve_mappings(proc, grid)["A"]
    all_owned = []
    for rank in grid.all_ranks():
        all_owned.extend(mapping.owned_global_indices(rank))
    assert sorted(all_owned) == [(i,) for i in range(1, n + 1)]


@given(
    st.integers(min_value=4, max_value=24),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=-3, max_value=3),
)
def test_aligned_arrays_colocate(n, procs, offset):
    """B(i) aligned with A(i+off) lives exactly where A(i+off) lives."""
    b_extent = n - abs(offset)
    if b_extent < 1:
        return
    lo = 1 - min(offset, 0)
    src = (
        f"PROGRAM T\n  REAL A({n}), B({b_extent})\n"
        f"!HPF$ ALIGN B(i) WITH A(i + {offset})\n"
        f"!HPF$ DISTRIBUTE (BLOCK) :: A\nEND PROGRAM\n"
    )
    if offset < 0:
        src = src.replace(f"A(i + {offset})", f"A(i - {-offset})")
    proc = parse_and_build(src)
    grid = ProcessorGrid(name="P", shape=(procs,))
    maps = resolve_mappings(proc, grid)
    for i in range(lo, b_extent + 1):
        target = i + offset
        if 1 <= target <= n:
            assert maps["B"].owner_coords((i,)) == maps["A"].owner_coords((target,))


@given(st.integers(min_value=2, max_value=30), st.integers(min_value=1, max_value=5))
def test_local_index_within_shape(n, procs):
    src = f"PROGRAM T\n  REAL A({n})\n!HPF$ DISTRIBUTE (BLOCK) :: A\nEND PROGRAM\n"
    proc = parse_and_build(src)
    mapping = resolve_mappings(proc, ProcessorGrid(name="P", shape=(procs,)))["A"]
    shape = mapping.local_shape()
    for i in range(1, n + 1):
        local = mapping.local_index((i,))
        assert all(0 <= l < s for l, s in zip(local, shape))
