"""Property: the tier-3 slab engine is bit-for-bit invisible.

Randomized affine loop nests — block/cyclic/replicated mappings,
guards, reductions, negative steps — run through all three engines
(slab kernels, lowered closures, tree-walker).  Clocks, traffic
statistics, and gathered arrays must be identical down to the last bit;
nests the slab engine cannot take must fall back without a trace.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompilerOptions, compile_source
from repro.machine import simulate

DISTRIBUTIONS = [
    "!HPF$ DISTRIBUTE (*, BLOCK) :: A\n",  # column-owned: slab-eligible
    "!HPF$ DISTRIBUTE (*, CYCLIC) :: A\n",  # cyclic columns: eligible
    "!HPF$ DISTRIBUTE (BLOCK, *) :: A\n",  # row-owned: executor varies
    "",  # replicated
]


@st.composite
def affine_nests(draw):
    """Random two-level nests over aligned 2-D arrays: affine stencil
    reads, optional guard, optional MAX reduction, either sweep
    direction."""
    n = draw(st.integers(min_value=6, max_value=10))
    dist = draw(st.sampled_from(DISTRIBUTIONS))
    oi = draw(st.integers(min_value=-1, max_value=1))
    oj = draw(st.integers(min_value=-1, max_value=1))
    guarded = draw(st.booleans())
    reduced = draw(st.booleans())
    downward = draw(st.booleans())
    body = [
        f"      A(i,j) = B(i {'+' if oi >= 0 else '-'} {abs(oi)},"
        f" j {'+' if oj >= 0 else '-'} {abs(oj)}) + 0.5 * C(i,j)",
        "      C(i,j) = A(i,j) * 1.25 + B(i,j)",
    ]
    if guarded:  # an IfStmt keeps the nest off the slab path entirely
        body.append("      IF (B(i,j) .GT. 1.5) A(i,j) = C(i,j)")
    if reduced:
        body.append("      S = MAX(S, ABS(B(i,j)))")
    irange = "n - 1, 2, -1" if downward else "2, n - 1"
    # an ALIGN chain needs a DISTRIBUTE target; fully replicated
    # programs simply carry no directives at all
    directives = (
        "!HPF$ ALIGN (i,j) WITH A(i,j) :: B, C\n" + dist if dist else ""
    )
    source = (
        f"PROGRAM R\n  PARAMETER (n = {n})\n"
        "  REAL A(n,n), B(n,n), C(n,n)\n  REAL S\n"
        + directives
        + "  S = 0.0\n"
        "  DO j = 2, n - 1\n"
        f"    DO i = {irange}\n"
        + "".join(line + "\n" for line in body)
        + "    END DO\n  END DO\nEND PROGRAM\n"
    )
    eligible = not guarded and dist in DISTRIBUTIONS[:2]
    return source, n, eligible


def run_three_ways(source, n, procs):
    rng = np.random.default_rng(n * 31 + procs)
    inputs = {
        name: rng.uniform(1, 2, (n, n)) for name in ("A", "B", "C")
    }
    compiled = compile_source(source, CompilerOptions(num_procs=procs))
    slab = simulate(compiled, inputs, fast_path=True, slab_path=True)
    lowered = simulate(compiled, inputs, fast_path=True, slab_path=False)
    walker = simulate(compiled, inputs, fast_path=False)
    return slab, lowered, walker


def assert_invisible(slab, other):
    assert slab.clocks.snapshot() == other.clocks.snapshot()
    assert slab.stats.as_dict() == other.stats.as_dict()
    for sm, om in zip(slab.memories, other.memories):
        for name in om.arrays:
            assert sm.arrays[name].tobytes() == om.arrays[name].tobytes()
            assert sm.valid[name].tobytes() == om.valid[name].tobytes()
        assert sm.scalars == om.scalars
        assert sm.scalar_valid == om.scalar_valid
    for name in ("A", "B", "C"):
        assert slab.gather(name).tobytes() == other.gather(name).tobytes()


@given(affine_nests(), st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_slab_engine_is_bit_for_bit_invisible(case, procs):
    source, n, eligible = case
    slab, lowered, walker = run_three_ways(source, n, procs)
    assert_invisible(slab, lowered)
    assert_invisible(slab, walker)
    if eligible:
        # the slab path must actually have executed these nests
        assert slab.slab_instances > 0
    assert lowered.slab_instances == 0


TRI_DISTS = [
    "!HPF$ DISTRIBUTE (*, BLOCK) :: A\n",
    "!HPF$ DISTRIBUTE (*, CYCLIC) :: A\n",
]


@st.composite
def triangular_nests(draw):
    """Imperfect triangular nests in the dgefa mould: inner bounds
    depend on the outer loop variable, with optional scalar prologue
    and epilogue statements and an optional reduction into one element
    of the owned column."""
    n = draw(st.integers(min_value=8, max_value=12))
    dist = draw(st.sampled_from(TRI_DISTS))
    lower = draw(st.booleans())
    prologue = draw(st.booleans())
    epilogue = draw(st.booleans())
    col_reduce = draw(st.booleans())
    irange = "j, n - 1" if lower else "2, j"
    lines = []
    if prologue:
        lines.append("    S = 0.5 * j")
    lines.append(f"    DO i = {irange}")
    if col_reduce:
        # reduction into one element of the owned column, dgefa-style:
        # A appears only as the fold accumulator
        lines.append(
            "      C(i,j) = B(i,j) * 1.25 + S" if prologue
            else "      C(i,j) = B(i,j) * 1.25 + C(i,j)"
        )
        lines.append("      A(1,j) = A(1,j) + B(i,j)")
    else:
        lines.append("      A(i,j) = B(i,j) * 1.25 + C(i,j)")
        lines.append(
            "      C(i,j) = A(i,j) + S" if prologue
            else "      C(i,j) = A(i,j) + B(i,j)"
        )
    lines.append("    END DO")
    if epilogue:
        lines.append("    T = 1.0 + 0.25 * j")
    source = (
        f"PROGRAM R\n  PARAMETER (n = {n})\n"
        "  REAL A(n,n), B(n,n), C(n,n)\n  REAL S, T\n"
        "!HPF$ ALIGN (i,j) WITH A(i,j) :: B, C\n"
        + dist
        + "  S = 0.0\n  T = 0.0\n"
        "  DO j = 2, n - 1\n"
        + "".join(line + "\n" for line in lines)
        + "  END DO\nEND PROGRAM\n"
    )
    return source, n, dist is TRI_DISTS[0]


@given(triangular_nests(), st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_triangular_nests_are_bit_for_bit_invisible(case, procs):
    source, n, block_dist = case
    slab, lowered, walker = run_three_ways(source, n, procs)
    assert_invisible(slab, lowered)
    assert_invisible(slab, walker)
    assert lowered.slab_instances == 0
    if block_dist:
        # column-block triangular nests are squarely in the classifier's
        # extended repertoire: the slab path must actually run
        assert slab.slab_instances > 0


@given(triangular_nests(), st.integers(min_value=1, max_value=4))
@settings(max_examples=15, deadline=None)
def test_auto_tier_matches_forced_tiers(case, procs):
    """tier="auto" consults the TierPlan per nest but must stay
    bit-for-bit identical to every forced tier."""
    source, n, _ = case
    rng = np.random.default_rng(n * 31 + procs)
    inputs = {name: rng.uniform(1, 2, (n, n)) for name in ("A", "B", "C")}
    compiled = compile_source(source, CompilerOptions(num_procs=procs))
    auto = simulate(compiled, inputs, tier="auto")
    walker = simulate(compiled, inputs, tier="interpreted")
    assert_invisible(auto, walker)
    assert set(auto.tier_decisions.values()) <= {"slab", "lowered"}


@given(st.integers(min_value=1, max_value=5))
@settings(max_examples=5, deadline=None)
def test_reduction_slab_keeps_combine_tree(procs):
    """A MAX reduction vectorizes its private accumulation but the
    log-tree combine (and its collective charges) must be unchanged."""
    n = 9
    source = (
        f"PROGRAM R\n  PARAMETER (n = {n})\n"
        "  REAL B(n,n)\n  REAL S\n"
        "!HPF$ DISTRIBUTE (*, BLOCK) :: B\n"
        "  S = 0.0\n"
        "  DO j = 2, n - 1\n    DO i = 2, n - 1\n"
        "      S = MAX(S, ABS(B(i,j)))\n"
        "    END DO\n  END DO\nEND PROGRAM\n"
    )
    rng = np.random.default_rng(procs)
    inputs = {"B": rng.uniform(-2, 2, (n, n))}
    compiled = compile_source(source, CompilerOptions(num_procs=procs))
    slab = simulate(compiled, inputs, fast_path=True, slab_path=True)
    walker = simulate(compiled, inputs, fast_path=False)
    assert slab.clocks.snapshot() == walker.clocks.snapshot()
    assert slab.stats.as_dict() == walker.stats.as_dict()
    for sm, om in zip(slab.memories, walker.memories):
        assert sm.scalars == om.scalars
        assert sm.scalar_valid == om.scalar_valid
