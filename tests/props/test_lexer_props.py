"""Property-based tests on the front end: lexer totality on printable
input classes, parser/printer round-trip stability."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.lang import parse_program, print_program, tokenize

identifiers = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True)
numbers = st.one_of(
    st.integers(min_value=0, max_value=10**6).map(str),
    st.floats(
        min_value=0.001, max_value=1e6, allow_nan=False, allow_infinity=False
    ).map(lambda f: f"{f:.4f}"),
)
operators = st.sampled_from(
    ["+", "-", "*", "/", "**", "(", ")", ",", "=", "==", "<", ">", ".AND.", ".NOT."]
)


@given(st.lists(st.one_of(identifiers, numbers, operators), max_size=30))
def test_lexer_total_on_token_soup(pieces):
    """Any whitespace-joined sequence of valid tokens lexes cleanly."""
    tokenize(" ".join(pieces))


@given(st.text(alphabet="abcxyz0123456789+-*/()=<>., \n", max_size=60))
def test_lexer_never_crashes_unexpectedly(text):
    """On arbitrary input from the token alphabet, the lexer either
    succeeds or raises a ReproError — never anything else."""
    try:
        tokenize(text)
    except ReproError:
        pass


@st.composite
def simple_programs(draw):
    n = draw(st.integers(min_value=4, max_value=50))
    n_stmts = draw(st.integers(min_value=1, max_value=5))
    lines = []
    for _ in range(n_stmts):
        target = draw(st.sampled_from(["A(i)", "B(i)", "x"]))
        a = draw(st.sampled_from(["A(i)", "B(i)", "x", "1.0", "2.5"]))
        b = draw(st.sampled_from(["A(i)", "B(i)", "x", "3.0"]))
        op = draw(st.sampled_from(["+", "-", "*"]))
        lines.append(f"    {target} = {a} {op} {b}")
    body = "\n".join(lines)
    return (
        f"PROGRAM G\n  PARAMETER (n = {n})\n  REAL A(n), B(n)\n  REAL x\n"
        f"  x = 0.0\n  DO i = 1, n\n{body}\n  END DO\nEND PROGRAM\n"
    )


@given(simple_programs())
@settings(max_examples=50, deadline=None)
def test_print_parse_fixpoint(source):
    once = print_program(parse_program(source))
    twice = print_program(parse_program(once))
    assert once == twice


@given(simple_programs())
@settings(max_examples=30, deadline=None)
def test_roundtrip_preserves_semantics(source):
    """Parsing the printed form executes identically."""
    import numpy as np

    from repro.codegen import run_sequential
    from repro.ir import build_procedure, parse_and_build

    proc1 = parse_and_build(source)
    proc2 = parse_and_build(print_program(parse_program(source)))
    n = proc1.symbols.require("A").extent(0)
    rng = np.random.default_rng(0)
    inputs = {"A": rng.uniform(1, 2, n), "B": rng.uniform(1, 2, n)}
    out1 = run_sequential(proc1, inputs)
    out2 = run_sequential(proc2, inputs)
    assert np.array_equal(out1.get_array("A"), out2.get_array("A"), equal_nan=True)
    assert np.array_equal(out1.get_array("B"), out2.get_array("B"), equal_nan=True)
