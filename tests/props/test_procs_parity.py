"""Property: the procs axis as a lane dimension is byte-for-bit
invisible.

The batched sweep evaluator fuses grid points that differ only in the
requested processor count into one batch of procs sub-groups (one
compile + one sub-simulation each, adopted into a batch-wide lane
vector at extraction).  Unlike machine parameters, the processor count
*does* steer behaviour — executor sets, memory layouts, comm schedules,
and tier decisions all depend on P — which is exactly why the evaluator
simulates per procs sub-group and fuses at extract.  These tests
byte-compare (canonical JSON) the procs-fused batched records against
per-procs dedicated runs for the three paper kernels, hammer randomized
procs subsets with a hypothesis property, and prove the parity survives
a nest that demotes to tier 2 mid-run (the slab executor gives up after
``GIVE_UP_AFTER`` consecutive prepare bails)."""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.driver import CompilerOptions, compile_source
from repro.machine import slabexec
from repro.machine.simulator import simulate
from repro.model import SP2
from repro.obs import Metrics
from repro.programs import appsp_source, dgefa_source, tomcatv_source
from repro.sweep import SweepSpec, run_sweep

FAST = dataclasses.replace(SP2, name="fast-net", alpha=5e-6, beta=1.0 / 300e6)
SLOW = dataclasses.replace(SP2, name="slow-cpu", flop_time=1.0 / 5e6)
WAN = dataclasses.replace(SP2, name="wan", alpha=5e-3, beta=1.0 / 1e6)

#: program name -> (source builder, procs values); every grid fuses
#: len(procs) sub-groups per batch
GRIDS = {
    "tomcatv": (lambda p: tomcatv_source(n=10, niter=1, procs=p), (1, 2, 4)),
    "dgefa": (lambda p: dgefa_source(n=10, procs=p), (1, 2, 4)),
    "appsp": (
        lambda p: appsp_source(nx=8, ny=8, nz=8, niter=1, procs=p),
        (2, 4),
    ),
}
MACHINES = (SP2, FAST, SLOW, WAN)


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def _reference_stats(source: str, options: CompilerOptions, seed: int):
    """One dedicated per-procs grid point: fresh compile, deterministic
    inputs, tier="auto" simulation."""
    compiled = compile_source(source, options)
    rng = np.random.default_rng(seed)
    inputs = {
        s.name: rng.uniform(0.5, 1.5, tuple(s.extent(d) for d in range(s.rank)))
        for s in compiled.proc.symbols.arrays()
    }
    sim = simulate(compiled, inputs, tier="auto")
    return sim.canonical_stats(), sim.elapsed, sim.stats.messages


def _grid_spec(program, machines=MACHINES, procs=None):
    builder, default_procs = GRIDS[program]
    return SweepSpec(
        programs={program: builder},
        procs=tuple(procs if procs is not None else default_procs),
        axes={"machine": machines},
        mode="simulate",
        seed=3,
    )


@pytest.mark.parametrize("program", sorted(GRIDS))
def test_procs_fused_batch_matches_per_procs_runs(program):
    spec = _grid_spec(program)
    jobs = spec.jobs()
    results = run_sweep(spec, workers=0, mode="batched")
    assert [r.label for r in results] == [j.label for j in jobs]
    for job, result in zip(jobs, results):
        assert result.ok, result.error
        assert result.worker == "batched"
        # the whole procs axis fused into this point's batch
        assert result.procs_lanes == len(spec.procs)
        stats, elapsed, messages = _reference_stats(
            job.source, job.options, job.seed
        )
        assert _canonical(result.canonical_stats) == _canonical(stats)
        assert result.elapsed == elapsed  # bitwise, not approx
        assert result.messages == messages


@pytest.mark.parametrize("program", sorted(GRIDS))
def test_procs_fused_batch_matches_pool_mode(program):
    """The same grid through mode="pool" (per-job execution) — every
    measurement field identical, only execution bookkeeping differs."""
    spec = _grid_spec(program)
    batched = run_sweep(spec, workers=0, mode="batched")
    pooled = run_sweep(spec, workers=0, mode="pool")
    # execution bookkeeping (who ran it, how fast, what was shared)
    # legitimately differs between modes; the measurements must not
    strip = ("worker", "duration_s", "procs_lanes", "compile_dedup",
             "cache_hit")
    for fast, ref in zip(batched, pooled):
        a, b = fast.as_dict(), ref.as_dict()
        for key in strip:
            a.pop(key), b.pop(key)
        assert _canonical(a) == _canonical(b)


PROCS_CHOICES = (1, 2, 3, 4, 6, 8)


@settings(max_examples=6, deadline=None)
@given(
    procs=st.lists(
        st.sampled_from(PROCS_CHOICES), min_size=2, max_size=4, unique=True
    ),
    machines=st.sampled_from([(SP2,), (SP2, WAN), (FAST, SLOW)]),
)
def test_random_procs_subsets_stay_byte_identical(procs, machines):
    spec = SweepSpec(
        programs={"tomcatv": lambda p: tomcatv_source(n=8, niter=1, procs=p)},
        procs=tuple(procs),
        axes={"machine": machines},
        mode="simulate",
        seed=7,
    )
    jobs = spec.jobs()
    results = run_sweep(spec, workers=0, mode="batched")
    for job, result in zip(jobs, results):
        assert result.ok, result.error
        assert result.procs_lanes == len(procs)
        stats, elapsed, _ = _reference_stats(job.source, job.options, job.seed)
        assert _canonical(result.canonical_stats) == _canonical(stats)
        assert result.elapsed == elapsed


# -- mid-run tier demotion ---------------------------------------------------

#: mirrors SlabExecutor.GIVE_UP_AFTER (an instance attribute)
GIVE_UP_AFTER = 8

#: enough outer iterations that tomcatv's slab-approved nests are
#: entered well past GIVE_UP_AFTER times
DEMOTE_SOURCE_NITER = 3


def _force_prepare_bails(monkeypatch):
    """Every slab takeover attempt bails at prepare: statically eligible
    nests are approved, build plans, then fail GIVE_UP_AFTER consecutive
    prepares and are demoted to tier 2 for the rest of the run."""

    def bailing(self, low, high, step, env):
        raise slabexec._Bail("forced bail (demotion test)")

    for cls in ("InnerPlan", "ColumnPlan", "TriangularPlan"):
        plan = getattr(slabexec, cls, None)
        if plan is not None:
            monkeypatch.setattr(plan, "prepare", bailing)


def test_forced_bails_actually_demote(monkeypatch):
    """Sanity for the parity test below: with prepare always bailing,
    some nest is entered more often than GIVE_UP_AFTER but pays exactly
    GIVE_UP_AFTER prepares — i.e. it was demoted mid-run."""
    source = tomcatv_source(n=10, niter=DEMOTE_SOURCE_NITER, procs=4)
    options = CompilerOptions(num_procs=4)
    baseline = Metrics()
    compiled = compile_source(source, options)
    rng = np.random.default_rng(3)
    inputs = {
        s.name: rng.uniform(0.5, 1.5, tuple(s.extent(d) for d in range(s.rank)))
        for s in compiled.proc.symbols.arrays()
    }
    simulate(compiled, inputs, tier="auto", metrics=baseline)
    entries = {
        key.split("loop=")[1].split(",")[0]: count
        for key, count in baseline.counters.items()
        if key.startswith("tier.decision[") and "choice=slab" in key
    }
    busy = {loop for loop, count in entries.items() if count > GIVE_UP_AFTER}
    assert busy, "grid too small: no slab nest entered > GIVE_UP_AFTER times"

    _force_prepare_bails(monkeypatch)
    demoted = Metrics()
    simulate(compiled, inputs, tier="auto", metrics=demoted)
    for loop in busy:
        bails = demoted.counters.get(f"slab.fallback[loop={loop}]", 0)
        assert bails == GIVE_UP_AFTER, (
            f"{loop}: entered {entries[loop]} times but paid {bails} "
            f"prepares — demotion did not engage"
        )


def test_demoting_nests_stay_byte_identical(monkeypatch):
    """Demotion is per-simulation state; the procs-fused batch must
    reproduce each per-procs run's demotion trajectory exactly."""
    _force_prepare_bails(monkeypatch)
    spec = SweepSpec(
        programs={
            "tomcatv": lambda p: tomcatv_source(
                n=10, niter=DEMOTE_SOURCE_NITER, procs=p
            )
        },
        procs=(1, 2, 4),
        axes={"machine": (SP2, WAN)},
        mode="simulate",
        seed=3,
    )
    jobs = spec.jobs()
    results = run_sweep(spec, workers=0, mode="batched")
    for job, result in zip(jobs, results):
        assert result.ok, result.error
        assert result.worker == "batched"
        assert result.procs_lanes == 3
        stats, elapsed, messages = _reference_stats(
            job.source, job.options, job.seed
        )
        assert _canonical(result.canonical_stats) == _canonical(stats)
        assert result.elapsed == elapsed
        assert result.messages == messages
