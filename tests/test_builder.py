"""Python program-builder API tests."""

import numpy as np
import pytest

from repro.builder import BuilderError, ProgramBuilder, intrinsic
from repro.codegen import run_sequential
from repro.core import AlignedTo, CompilerOptions
from repro.ir import ScalarRef, parse_and_build
from repro.machine import simulate


def smooth_builder():
    b = ProgramBuilder("SMOOTH", procs=(4,))
    U = b.array("U", (64,), distribute=("BLOCK",))
    V = b.array("V", (64,), align_with=U)
    t = b.scalar("t")
    i = b.index("i")
    with b.loop(i, 2, 63):
        b.assign(t, U[i - 1] + 2.0 * U[i] + U[i + 1])
        b.assign(V[i], 0.25 * t)
    return b


class TestSourceGeneration:
    def test_source_parses(self):
        proc = parse_and_build(smooth_builder().source())
        assert proc.symbols.require("U").is_array
        assert proc.symbols.require("V").is_array

    def test_directives_emitted(self):
        text = smooth_builder().source()
        assert "!HPF$ PROCESSORS PGRID(4)" in text
        assert "!HPF$ DISTRIBUTE (BLOCK) :: U" in text
        assert "!HPF$ ALIGN V(d0) WITH U(d0)" in text

    def test_expression_rendering(self):
        b = ProgramBuilder("E")
        A = b.array("A", (8,))
        x = b.scalar("x")
        i = b.index("i")
        with b.loop(i, 1, 8):
            b.assign(x, (A[i] + 1.0) * 2.0 - A[i] / 4.0)
            b.assign(A[i], -x ** 2)
            b.assign(A[i], intrinsic("MAX", x, 0.0))
        parse_and_build(b.source())

    def test_reverse_operand_order(self):
        b = ProgramBuilder("R")
        x = b.scalar("x")
        b.assign(x, 1.0)
        b.assign(x, 2.0 * x + 1.0)
        b.assign(x, 3.0 - x)
        parse_and_build(b.source())

    def test_conditionals(self):
        b = ProgramBuilder("C")
        A = b.array("A", (8,))
        i = b.index("i")
        with b.loop(i, 1, 8):
            with b.when(A[i] > 0.5) as branch:
                b.assign(A[i], 1.0)
                branch.otherwise()
                b.assign(A[i], 0.0)
        proc = parse_and_build(b.source())
        text = b.source()
        assert "ELSE" in text and "END IF" in text

    def test_new_and_reduction_clauses(self):
        b = ProgramBuilder("N")
        A = b.array("A", (8,))
        W = b.array("W", (8,))
        s = b.scalar("s")
        i = b.index("i")
        b.assign(s, 0.0)
        with b.loop(i, 1, 8, new=[W], reduction=[s]):
            b.assign(W[i], A[i])
            b.assign(s, s + W[i])
        b.assign(A[1], s)
        text = b.source()
        assert "!HPF$ INDEPENDENT, NEW(W), REDUCTION(S)" in text
        parse_and_build(text)


class TestValidation:
    def test_duplicate_name_rejected(self):
        b = ProgramBuilder("D")
        b.scalar("x")
        with pytest.raises(BuilderError):
            b.scalar("X")

    def test_rank_mismatch_rejected(self):
        b = ProgramBuilder("D")
        A = b.array("A", (4, 4))
        with pytest.raises(BuilderError):
            A[1]

    def test_distribute_and_align_conflict(self):
        b = ProgramBuilder("D")
        U = b.array("U", (8,), distribute=("BLOCK",))
        with pytest.raises(BuilderError):
            b.array("V", (8,), distribute=("BLOCK",), align_with=U)

    def test_bad_expression_operand(self):
        b = ProgramBuilder("D")
        x = b.scalar("x")
        with pytest.raises(BuilderError):
            b.assign(x, object())


class TestCompilation:
    def test_compile_and_decisions(self):
        compiled = smooth_builder().compile()
        t_stmts = [
            s
            for s in compiled.proc.assignments()
            if isinstance(s.lhs, ScalarRef) and s.lhs.symbol.name == "T"
        ]
        mapping = compiled.scalar_mapping_of(t_stmts[0].stmt_id)
        assert isinstance(mapping, AlignedTo)

    def test_built_program_simulates_correctly(self):
        compiled = smooth_builder().compile(CompilerOptions())
        rng = np.random.default_rng(5)
        inputs = {"U": rng.uniform(0, 1, 64), "V": np.zeros(64)}
        seq = run_sequential(parse_and_build(smooth_builder().source()), inputs)
        sim = simulate(compiled, inputs)
        assert np.allclose(sim.gather("V"), seq.get_array("V"))
        assert sim.stats.unexpected_fetches == 0
