"""Report/table module tests (small sizes for speed)."""

import pytest

from repro.report import Table, table1_tomcatv, table2_dgefa, table3_appsp


class TestTableContainer:
    def test_cell_lookup(self):
        table = Table(title="t", columns=["a", "b"], rows=[(2, [1.0, 2.0])])
        assert table.cell(2, "a") == 1.0
        assert table.cell(2, "b") == 2.0

    def test_missing_row(self):
        table = Table(title="t", columns=["a"], rows=[(2, [1.0])])
        with pytest.raises(KeyError):
            table.cell(4, "a")

    def test_missing_column(self):
        table = Table(title="t", columns=["a"], rows=[(2, [1.0])])
        with pytest.raises(ValueError):
            table.cell(2, "zz")

    def test_render_layout(self):
        table = Table(
            title="Demo", columns=["left", "right"],
            rows=[(1, [0.5, 1.5]), (2, [0.25, 0.75])],
            notes="a note",
        )
        text = table.render()
        assert "Demo" in text
        assert "#Procs" in text
        assert "a note" in text
        assert "0.500" in text and "0.750" in text


class TestTableGenerators:
    def test_table1_small(self):
        table = table1_tomcatv(n=33, niter=1, procs=(1, 4))
        assert table.columns == [
            "Replication",
            "Producer Alignment",
            "Selected Alignment",
        ]
        assert len(table.rows) == 2
        assert all(v > 0 for _, row in table.rows for v in row)

    def test_table2_small(self):
        table = table2_dgefa(n=64, procs=(2, 4))
        assert table.columns == ["Default", "Alignment"]
        assert len(table.rows) == 2

    def test_table3_small(self):
        table = table3_appsp(n=8, niter=1, procs=(2, 4))
        assert len(table.columns) == 4
        assert len(table.rows) == 2

    def test_custom_machine(self):
        from repro.model import MachineModel

        fast = MachineModel(alpha=1e-9, beta=1e-12, flop_time=1e-10)
        t_default = table2_dgefa(n=64, procs=(4,))
        t_fast = table2_dgefa(n=64, procs=(4,), machine=fast)
        assert t_fast.cell(4, "Alignment") < t_default.cell(4, "Alignment")


class TestProgramSources:
    """The benchmark program generators emit valid, compilable source."""

    def test_tomcatv_parses(self):
        from repro.ir import parse_and_build
        from repro.programs import tomcatv_source

        proc = parse_and_build(tomcatv_source(n=16, niter=1, procs=2))
        assert proc.symbols.require("X").rank == 2

    def test_dgefa_parses(self):
        from repro.ir import parse_and_build
        from repro.programs import dgefa_source

        proc = parse_and_build(dgefa_source(n=16, procs=2))
        assert proc.symbols.require("A").dims == ((1, 16), (1, 16))

    def test_appsp_variants_parse(self):
        from repro.ir import parse_and_build
        from repro.programs import appsp_source

        for dist in ("1d", "2d"):
            for clause in (True, False):
                proc = parse_and_build(
                    appsp_source(
                        nx=8, ny=8, nz=8, niter=1, procs=4,
                        distribution=dist, use_new_clause=clause,
                    )
                )
                loops = list(proc.loops())
                has_new = any(l.new_vars for l in loops)
                assert has_new == clause

    def test_appsp_bad_distribution(self):
        from repro.programs import appsp_source

        with pytest.raises(ValueError):
            appsp_source(distribution="3d")

    def test_figures_parse(self):
        from repro.ir import parse_and_build
        from repro.programs import (
            figure1_source,
            figure2_source,
            figure4_source,
            figure5_source,
            figure6_source,
            figure7_source,
        )

        for source in (
            figure1_source(),
            figure2_source(),
            figure4_source(),
            figure5_source(),
            figure6_source(),
            figure7_source(),
        ):
            parse_and_build(source)

    def test_input_generators_deterministic(self):
        import numpy as np

        from repro.programs import dgefa_inputs, tomcatv_inputs

        a1 = dgefa_inputs(8)["A"]
        a2 = dgefa_inputs(8)["A"]
        assert np.array_equal(a1, a2)
        x1 = tomcatv_inputs(8)["X"]
        x2 = tomcatv_inputs(8)["X"]
        assert np.array_equal(x1, x2)

    def test_dgefa_inputs_diagonally_dominant(self):
        import numpy as np

        a = dgefa_inputs = __import__(
            "repro.programs", fromlist=["dgefa_inputs"]
        ).dgefa_inputs(8)["A"]
        for k in range(8):
            assert abs(a[k, k]) > np.abs(np.delete(a[k], k)).sum() / 8


class TestSimulatorBackedTables:
    def test_table1_simulated_shape(self):
        from repro.report import table1_tomcatv_simulated

        table = table1_tomcatv_simulated(n=12, niter=2, procs=(4,))
        selected = table.cell(4, "Selected Alignment")
        assert selected < table.cell(4, "Replication")
        assert selected < table.cell(4, "Producer Alignment")

    def test_table3_simulated_shape(self):
        from repro.report import table3_appsp_simulated

        table = table3_appsp_simulated(n=8, niter=2, procs=(4,))
        assert table.cell(4, "2-D, Partial Priv.") < table.cell(
            4, "2-D, No Partial Priv."
        )
        assert table.cell(4, "1-D, Priv.") < table.cell(4, "1-D, No Array Priv.")
