"""Unit tests for node memory, clocks, and traffic statistics."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.ir import parse_and_build
from repro.machine import NodeMemory, initialize_array
from repro.machine.stats import Clocks, TrafficStats
from repro.mapping import ProcessorGrid, resolve_mappings
from repro.model import MachineModel


SRC = """
PROGRAM T
  REAL A(12), E(12)
!HPF$ ALIGN E(i) WITH A(*)
!HPF$ DISTRIBUTE (BLOCK) :: A
END PROGRAM
"""


@pytest.fixture
def setup():
    proc = parse_and_build(SRC)
    grid = ProcessorGrid(name="P", shape=(4,))
    mappings = resolve_mappings(proc, grid)
    memories = [NodeMemory(r, proc) for r in range(4)]
    return proc, grid, mappings, memories


class TestNodeMemory:
    def test_array_store_and_read(self, setup):
        proc, grid, mappings, memories = setup
        memories[0].array_store("A", (3,), 7.5)
        assert memories[0].array_is_valid("A", (3,))
        assert memories[0].array_value("A", (3,)) == 7.5

    def test_invalidate(self, setup):
        proc, grid, mappings, memories = setup
        memories[0].array_store("A", (3,), 7.5)
        memories[0].array_invalidate("A", (3,))
        assert not memories[0].array_is_valid("A", (3,))

    def test_scalar_roundtrip(self, setup):
        proc, grid, mappings, memories = setup
        memories[1].scalar_store("X", 3)
        assert memories[1].scalar_is_valid("X")
        assert memories[1].scalar_value("X") == 3

    def test_invalid_scalar_read_raises(self, setup):
        proc, grid, mappings, memories = setup
        with pytest.raises(SimulationError):
            memories[2].scalar_value("NOPE")

    def test_offset_respects_lower_bounds(self):
        proc = parse_and_build(
            "PROGRAM T\n  REAL A(0:5)\nEND PROGRAM\n"
        )
        memory = NodeMemory(0, proc)
        assert memory.offset("A", (0,)) == (0,)
        assert memory.offset("A", (5,)) == (5,)


class TestInitializeArray:
    def test_validity_follows_ownership(self, setup):
        proc, grid, mappings, memories = setup
        values = np.arange(12, dtype=float)
        initialize_array(memories, mappings["A"], values)
        for rank in range(4):
            owned = set(mappings["A"].owned_global_indices(rank))
            for i in range(1, 13):
                assert memories[rank].array_is_valid("A", (i,)) == ((i,) in owned)

    def test_replicated_valid_everywhere(self, setup):
        proc, grid, mappings, memories = setup
        initialize_array(memories, mappings["E"], np.zeros(12))
        assert all(m.array_is_valid("E", (7,)) for m in memories)

    def test_shape_mismatch_rejected(self, setup):
        proc, grid, mappings, memories = setup
        with pytest.raises(SimulationError):
            initialize_array(memories, mappings["A"], np.zeros(5))


class TestClocks:
    def test_compute_charging(self):
        clocks = Clocks(2, MachineModel())
        clocks.charge_compute(0, 100)
        assert clocks.time[0] > 0 and clocks.time[1] == 0
        assert clocks.elapsed == clocks.time[0]

    def test_message_synchronizes(self):
        machine = MachineModel()
        clocks = Clocks(2, machine)
        clocks.charge_compute(0, 10**6)
        t0 = clocks.time[0]
        clocks.charge_message(0, 1, 10)
        # The receiver waits for the (later) sender.
        assert clocks.time[1] == pytest.approx(t0 + machine.message_time(10))

    def test_amortized_startup(self):
        machine = MachineModel()
        clocks = Clocks(2, machine)
        clocks.charge_message_amortized(0, 1, 1, startup=True)
        with_startup = clocks.time[1]
        clocks2 = Clocks(2, machine)
        clocks2.charge_message_amortized(0, 1, 1, startup=False)
        assert clocks2.time[1] < with_startup

    def test_collective_synchronizes_all(self):
        clocks = Clocks(4, MachineModel())
        clocks.charge_compute(2, 10**6)
        clocks.charge_collective([0, 1, 2, 3], 1, "reduce")
        assert len({round(t, 12) for t in clocks.time}) == 1

    def test_collective_single_rank_free(self):
        clocks = Clocks(4, MachineModel())
        clocks.charge_collective([1], 100, "bcast")
        assert clocks.elapsed == 0.0

    def test_totals(self):
        clocks = Clocks(2, MachineModel())
        clocks.charge_compute(0, 10)
        clocks.charge_message(0, 1, 1)
        assert clocks.total_compute > 0
        assert clocks.total_comm > 0


class TestTrafficStats:
    def test_fetch_recording(self):
        stats = TrafficStats()
        stats.record_fetch((1, 2), elements=3)
        stats.record_fetch(None)
        assert stats.fetches == 2
        assert stats.unexpected_fetches == 1
        assert stats.elements == 4
        assert stats.per_event_fetches[(1, 2)] == 1


class TestTrace:
    def test_disabled_by_default(self):
        from repro.machine.stats import Trace

        trace = Trace()
        trace.record("fetch", "x")
        assert not trace.enabled
        assert trace.render() == "no traced events"

    def test_capacity_bound(self):
        from repro.machine.stats import Trace

        trace = Trace(capacity=2)
        for k in range(5):
            trace.record("fetch", f"e{k}", src=0, dst=1)
        assert len(trace.records) == 2
        assert trace.dropped == 3
        assert "3 further event(s)" in trace.render()

    def test_simulator_records_fetches(self):
        import numpy as np

        from repro.core import CompilerOptions, compile_source
        from repro.machine import simulate

        src = (
            "PROGRAM T\n  PARAMETER (n = 16)\n  REAL A(n), B(n)\n"
            "!HPF$ ALIGN B(i) WITH A(i)\n"
            "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
            "  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO\nEND PROGRAM\n"
        )
        compiled = compile_source(src, CompilerOptions(num_procs=4))
        sim = simulate(
            compiled, {"B": np.arange(16, dtype=float)}, trace_capacity=16
        )
        text = sim.trace.render()
        assert "fetch" in text and "B(" in text

    def test_simulator_records_reduces(self):
        import numpy as np

        from repro.core import CompilerOptions, compile_source
        from repro.machine import simulate
        from repro.programs import tomcatv_inputs, tomcatv_source

        compiled = compile_source(
            tomcatv_source(n=8, niter=1, procs=4), CompilerOptions()
        )
        sim = simulate(compiled, tomcatv_inputs(8), trace_capacity=400)
        assert "reduce" in sim.trace.render()
