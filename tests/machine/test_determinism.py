"""Determinism of communication charging and error transparency.

The coalescing key used to embed ``id(event)``, which varies across
runs, GC, and pickle round-trips; it is now the event's stable
per-compile ordinal.  These tests pin the guarantee: the same compiled
program charges identically on every tier no matter how many times it
runs or how it traveled — and the narrowed lowering/slab guards let
genuine programming errors surface instead of silently changing tier.
"""

import pickle

import numpy as np
import pytest

from repro.core import CompilerOptions, compile_source
from repro.machine import simulate
from repro.machine.simulator import SPMDSimulator
from repro.programs import tomcatv_inputs, tomcatv_source

TIERS = {
    "interpreted": dict(fast_path=False),
    "lowered": dict(fast_path=True, slab_path=False),
    "slab": dict(fast_path=True, slab_path=True),
}


def _observables(sim: SPMDSimulator):
    memory = [
        (
            {n: a.tobytes() for n, a in m.arrays.items()},
            {n: v.tobytes() for n, v in m.valid.items()},
            dict(m.scalars),
            dict(m.scalar_valid),
        )
        for m in sim.memories
    ]
    return sim.clocks.snapshot(), sim.stats.as_dict(), memory


@pytest.fixture(scope="module")
def compiled():
    return compile_source(
        tomcatv_source(n=16, niter=2, procs=4), CompilerOptions()
    )


@pytest.fixture(scope="module")
def inputs():
    return tomcatv_inputs(16)


class TestOrdinals:
    def test_every_event_gets_a_distinct_ordinal(self, compiled):
        ordinals = [e.ordinal for e in compiled.comm.events]
        assert ordinals == list(range(len(ordinals)))

    def test_ordinals_survive_pickle(self, compiled):
        clone = pickle.loads(pickle.dumps(compiled))
        assert [e.ordinal for e in clone.comm.events] == [
            e.ordinal for e in compiled.comm.events
        ]

    def test_combined_events_keep_their_ordinal(self):
        compiled = compile_source(
            tomcatv_source(n=12, niter=1, procs=4),
            CompilerOptions(combine_messages=True),
        )
        ordinals = [e.ordinal for e in compiled.comm.events]
        assert all(o >= 0 for o in ordinals)
        assert len(set(ordinals)) == len(ordinals)
        for event in compiled.comm.events:
            for absorbed in event.aliases + event.combined_with:
                assert absorbed.ordinal >= 0


class TestDeterministicCharging:
    @pytest.mark.parametrize("tier", TIERS, ids=list(TIERS))
    def test_same_program_twice_charges_identically(
        self, compiled, inputs, tier
    ):
        first = simulate(compiled, inputs, **TIERS[tier])
        second = simulate(compiled, inputs, **TIERS[tier])
        assert _observables(first) == _observables(second)

    @pytest.mark.parametrize("tier", TIERS, ids=list(TIERS))
    def test_pickle_round_trip_charges_identically(
        self, compiled, inputs, tier
    ):
        clone = pickle.loads(pickle.dumps(compiled))
        original = simulate(compiled, inputs, **TIERS[tier])
        round_tripped = simulate(clone, inputs, **TIERS[tier])
        assert _observables(original) == _observables(round_tripped)

    def test_unassigned_ordinals_are_normalized(self, compiled, inputs):
        """Hand-built reports (ordinal = -1 everywhere) still charge
        deterministically: the simulator assigns list-order ordinals."""
        clone = pickle.loads(pickle.dumps(compiled))
        for event in clone.comm.events:
            event.ordinal = -1
        sim = SPMDSimulator(clone)
        assert [e.ordinal for e in clone.comm.events] == list(
            range(len(clone.comm.events))
        )
        for name, values in inputs.items():
            sim.set_array(name, values)
        sim.run()
        reference = simulate(compiled, inputs)
        assert _observables(sim) == _observables(reference)


class TestErrorTransparency:
    def test_injected_nameerror_propagates_from_lowering(
        self, compiled, monkeypatch
    ):
        """A programming error hit while lowering a statement must
        surface — the old bare ``except Exception`` guards silently
        left the statement interpreted."""
        from repro.ir.stmt import AssignStmt
        from repro.machine import lowering

        original = lowering._ExprCompiler.emit

        def sabotaged(self, expr):
            _undefined_helper_  # noqa: F821 — the injected bug
            return original(self, expr)

        monkeypatch.setattr(lowering._ExprCompiler, "emit", sabotaged)
        lowering._LOWERED_CACHE.clear()
        try:
            assert any(
                isinstance(s, AssignStmt) for s in compiled.proc.all_stmts()
            )
            with pytest.raises(NameError):
                lowering.lower_procedure(compiled.proc)
        finally:
            lowering._LOWERED_CACHE.clear()

    def test_runtime_nameerror_in_closure_propagates(self, inputs):
        """A NameError raised while *executing* a lowered closure also
        surfaces instead of being swallowed into a fallback."""
        from repro.machine import lowering

        compiled_fresh = compile_source(
            tomcatv_source(n=16, niter=2, procs=4), CompilerOptions()
        )
        original = lowering._ExprCompiler.emit

        def sabotaged(self, expr):
            emitted = original(self, expr)
            return lowering._Emitted(
                f"(_undefined_helper_ and {emitted.code})",
                is_int=emitted.is_int,
            )

        monkeypatch_ctx = pytest.MonkeyPatch()
        try:
            monkeypatch_ctx.setattr(
                lowering._ExprCompiler, "emit", sabotaged
            )
            lowering._LOWERED_CACHE.clear()
            lowered = lowering.lower_procedure(compiled_fresh.proc)
        finally:
            monkeypatch_ctx.undo()
            lowering._LOWERED_CACHE.clear()
        compiled_fresh.lowering = lowered
        with pytest.raises(NameError):
            simulate(compiled_fresh, inputs, fast_path=True, slab_path=False)

    def test_injected_nameerror_propagates_from_slab_prepare(
        self, compiled, inputs, monkeypatch
    ):
        from repro.machine import slabexec

        def exploding_prepare(self, low, high, step, env):
            raise NameError("injected bug in slab prepare")

        monkeypatch.setattr(slabexec.InnerPlan, "prepare", exploding_prepare)
        monkeypatch.setattr(slabexec.ColumnPlan, "prepare", exploding_prepare)
        with pytest.raises(NameError):
            simulate(compiled, inputs, fast_path=True, slab_path=True)

    def test_numeric_fold_errors_still_fall_back(self):
        """Constant division by zero keeps the interpreter's runtime
        error semantics — lowering declines the fold, and the guarded
        statement never executes."""
        src = """
PROGRAM guard
  REAL A(8)
  INTEGER i
!HPF$ PROCESSORS P(2)
!HPF$ DISTRIBUTE (BLOCK) :: A
  DO i = 1, 8
    IF (i .GT. 99) THEN
      A(i) = 1.0 / (1 - 1)
    ELSE
      A(i) = 2.0
    END IF
  END DO
END PROGRAM
"""
        compiled = compile_source(src, CompilerOptions())
        sim = simulate(compiled, {"A": np.zeros(8)})
        assert np.all(sim.gather("A") == 2.0)


class TestNarrowedSlabGuards:
    """The three remaining slab-side guards (inner-bound evaluation in
    ColumnPlan/TriangularPlan.prepare, owner lookup in the vectorized
    fetch path) bail only on their canonical error types; programming
    errors propagate."""

    @staticmethod
    def _patch_eval_bound(monkeypatch, exc):
        import sys

        from repro.machine import lowering

        original = lowering.FastPath.eval_bound

        def sabotaged(self, expr, env):
            if "Plan.prepare" in sys._getframe(1).f_code.co_qualname:
                raise exc
            return original(self, expr, env)

        monkeypatch.setattr(lowering.FastPath, "eval_bound", sabotaged)

    def test_nameerror_in_inner_bound_eval_propagates(
        self, compiled, inputs, monkeypatch
    ):
        self._patch_eval_bound(
            monkeypatch, NameError("injected bug in bound lowering")
        )
        with pytest.raises(NameError):
            simulate(compiled, inputs, fast_path=True, slab_path=True)

    def test_interpreter_error_in_inner_bound_eval_bails(
        self, compiled, inputs, monkeypatch
    ):
        from repro.errors import InterpreterError
        from repro.obs import Metrics

        self._patch_eval_bound(
            monkeypatch, InterpreterError("bound not evaluable here")
        )
        metrics = Metrics()
        sim = simulate(
            compiled, inputs, fast_path=True, slab_path=True,
            metrics=metrics,
        )
        reference = simulate(compiled, inputs, fast_path=False)
        assert _observables(sim) == _observables(reference)
        assert metrics.counters[
            "slab.bail[inner bounds not evaluable]"
        ] >= 1

    @staticmethod
    def _patch_candidates(monkeypatch, exc):
        import sys

        from repro.machine import lowering

        original = lowering._ArrayAccess.candidates

        def sabotaged(self, index):
            if "_fetch_read" in sys._getframe(1).f_code.co_qualname:
                raise exc
            return original(self, index)

        monkeypatch.setattr(lowering._ArrayAccess, "candidates", sabotaged)

    def test_typeerror_in_owner_lookup_propagates(
        self, compiled, inputs, monkeypatch
    ):
        self._patch_candidates(
            monkeypatch, TypeError("injected bug in owner lookup")
        )
        with pytest.raises(TypeError):
            simulate(compiled, inputs, fast_path=True, slab_path=True)

    def test_mapping_error_in_owner_lookup_bails(
        self, compiled, inputs, monkeypatch
    ):
        from repro.errors import MappingError
        from repro.obs import Metrics

        self._patch_candidates(
            monkeypatch, MappingError("index outside the template")
        )
        metrics = Metrics()
        sim = simulate(
            compiled, inputs, fast_path=True, slab_path=True,
            metrics=metrics,
        )
        reference = simulate(compiled, inputs, fast_path=False)
        assert _observables(sim) == _observables(reference)
        assert metrics.counters["slab.bail[owner lookup failed]"] >= 1
