"""SPMD simulator unit tests: memory discipline, fetch accounting,
collectives, and clock behaviour."""

import numpy as np
import pytest

from repro.codegen import run_sequential
from repro.core import CompilerOptions, compile_source
from repro.errors import SimulationError
from repro.ir import parse_and_build
from repro.machine import SPMDSimulator, simulate


def compile_body(body, decls="", procs=4, **opts):
    src = (
        "PROGRAM T\n  PARAMETER (n = 16)\n"
        "  REAL A(n), B(n), E(n)\n" + decls +
        "!HPF$ ALIGN B(i) WITH A(i)\n"
        "!HPF$ ALIGN E(i) WITH A(*)\n"
        "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
        + body + "\nEND PROGRAM\n"
    )
    return compile_source(src, CompilerOptions(num_procs=procs, **opts))


def rand_inputs(seed=1):
    rng = np.random.default_rng(seed)
    return {
        "A": rng.uniform(1, 2, 16),
        "B": rng.uniform(1, 2, 16),
        "E": rng.uniform(1, 2, 16),
    }


class TestMemoryDiscipline:
    def test_local_run_no_messages(self):
        compiled = compile_body("  DO i = 1, n\n    A(i) = B(i)\n  END DO")
        sim = simulate(compiled, rand_inputs())
        assert sim.stats.messages == 0
        assert sim.stats.fetches == 0

    def test_shift_produces_fetches(self):
        compiled = compile_body("  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO")
        sim = simulate(compiled, rand_inputs())
        # Only block-boundary elements cross processors: 3 boundaries.
        assert sim.stats.fetches == 3
        assert sim.stats.unexpected_fetches == 0

    def test_every_fetch_is_analyzed(self):
        compiled = compile_body(
            "  DO i = 2, n - 1\n    A(i) = B(i - 1) + B(i + 1) + E(i)\n  END DO"
        )
        sim = simulate(compiled, rand_inputs())
        assert sim.stats.unexpected_fetches == 0

    def test_gather_requires_valid_data(self):
        compiled = compile_body("  A(1) = 1.0")
        sim = SPMDSimulator(compiled)
        sim.run()
        # B was never initialized via set_array: zero-filled and owned.
        assert sim.gather("B").shape == (16,)

    def test_invalid_scalar_read_raises(self):
        compiled = compile_body("  A(1) = 1.0")
        sim = SPMDSimulator(compiled)
        with pytest.raises(SimulationError):
            sim.gather_scalar("q")


class TestClocks:
    def test_elapsed_positive_after_work(self):
        compiled = compile_body("  DO i = 1, n\n    A(i) = B(i) * 2.0\n  END DO")
        sim = simulate(compiled, rand_inputs())
        assert sim.elapsed > 0.0

    def test_comm_increases_elapsed(self):
        local = compile_body("  DO i = 1, n\n    A(i) = B(i)\n  END DO")
        remote = compile_body("  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO")
        inputs = rand_inputs()
        t_local = simulate(local, inputs).elapsed
        t_remote = simulate(remote, inputs).elapsed
        assert t_remote > t_local

    def test_replication_slower_than_selected(self):
        body = (
            "  DO i = 2, n - 1\n    x = B(i - 1) + B(i + 1)\n    A(i) = x\n"
            "  END DO"
        )
        inputs = rand_inputs()
        t_sel = simulate(compile_body(body), inputs).elapsed
        t_rep = simulate(
            compile_body(body, strategy="replication"), inputs
        ).elapsed
        assert t_rep > t_sel

    def test_per_rank_clock_accounting(self):
        compiled = compile_body("  DO i = 1, n\n    A(i) = B(i)\n  END DO")
        sim = simulate(compiled, rand_inputs())
        assert len(sim.clocks.time) == 4
        assert sim.clocks.total_compute > 0


class TestCoalescing:
    def test_vectorized_fetches_share_startup(self):
        """16 boundary fetches from one hoisted event must not pay 16
        startups."""
        compiled = compile_body(
            "  DO it = 1, 2\n    DO i = 2, n\n      A(i) = A(i) + B(i - 1)\n"
            "    END DO\n  END DO",
        )
        sim = simulate(compiled, rand_inputs())
        # fetches happen but messages (startups) are far fewer
        assert sim.stats.messages <= sim.stats.fetches

    def test_inner_loop_comm_pays_more_startups(self):
        vec = compile_body("  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO")
        novec = compile_body(
            "  DO i = 2, n\n    A(i) = B(i - 1)\n  END DO",
            message_vectorization=False,
        )
        inputs = rand_inputs()
        m_vec = simulate(vec, inputs).stats.messages
        m_novec = simulate(novec, inputs).stats.messages
        assert m_novec >= m_vec


class TestReductions:
    SRC = (
        "PROGRAM T\n  PARAMETER (n = 8)\n  REAL A(n, n), B(n)\n  REAL s\n"
        "!HPF$ PROCESSORS P(2, 2)\n"
        "!HPF$ ALIGN B(i) WITH A(i, *)\n"
        "!HPF$ DISTRIBUTE (BLOCK, BLOCK) :: A\n"
        "  DO i = 1, n\n    s = 0.0\n    DO j = 1, n\n      s = s + A(i, j)\n"
        "    END DO\n    B(i) = s\n  END DO\nEND PROGRAM\n"
    )

    def test_combines_charged(self):
        compiled = compile_source(self.SRC, CompilerOptions())
        inputs = {"A": np.arange(64, dtype=float).reshape(8, 8)}
        sim = simulate(compiled, inputs)
        assert sim.stats.reductions == 8  # one combine per i iteration

    def test_partial_sums_correct(self):
        compiled = compile_source(self.SRC, CompilerOptions())
        inputs = {"A": np.arange(64, dtype=float).reshape(8, 8)}
        sim = simulate(compiled, inputs)
        assert np.allclose(sim.gather("B"), inputs["A"].sum(axis=1))

    def test_nonzero_init_sum_exact(self):
        """The delta-based combine handles non-identity initial values."""
        src = self.SRC.replace("s = 0.0", "s = 5.0")
        compiled = compile_source(src, CompilerOptions())
        inputs = {"A": np.arange(64, dtype=float).reshape(8, 8)}
        seq = run_sequential(parse_and_build(src), inputs)
        sim = simulate(compiled, inputs)
        assert np.allclose(sim.gather("B"), seq.get_array("B"))


class TestControlFlowExecution:
    def test_predicate_disagreement_impossible_on_consistent_data(self):
        compiled = compile_body(
            "  DO i = 1, n\n    IF (B(i) > 1.5) THEN\n      A(i) = B(i)\n"
            "    END IF\n  END DO"
        )
        sim = simulate(compiled, rand_inputs())  # must not raise
        assert sim.stats.unexpected_fetches == 0


class TestRaggedBlocks:
    def test_non_dividing_processor_count(self):
        """n=16 over P=6: ragged blocks, one processor nearly idle."""
        from repro.ir import parse_and_build
        from repro.codegen import run_sequential
        from repro.programs import tomcatv_inputs, tomcatv_source

        src = tomcatv_source(n=16, niter=1, procs=6)
        inputs = tomcatv_inputs(16)
        seq = run_sequential(parse_and_build(src), inputs)
        compiled = compile_source(src, CompilerOptions())
        sim = simulate(compiled, inputs)
        assert np.allclose(sim.gather("X"), seq.get_array("X"))
        assert sim.stats.unexpected_fetches == 0

    def test_more_processors_than_elements(self):
        src = (
            "PROGRAM T\n  REAL A(3), B(3)\n"
            "!HPF$ ALIGN B(i) WITH A(i)\n"
            "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
            "  DO i = 1, 3\n    A(i) = B(i) + 1.0\n  END DO\nEND PROGRAM\n"
        )
        compiled = compile_source(src, CompilerOptions(num_procs=8))
        sim = simulate(compiled, {"B": np.arange(3, dtype=float)})
        assert list(sim.gather("A")) == [1.0, 2.0, 3.0]
