"""Unit tests for the statement-lowering layer (`repro.machine.lowering`)."""

import math
import pickle

import numpy as np
import pytest

from repro.codegen import run_sequential
from repro.codegen.evalexpr import eval_expr, fortran_int_div
from repro.codegen.seq import GlobalStore
from repro.core import CompilerOptions, compile_source
from repro.errors import InterpreterError
from repro.ir import parse_and_build
from repro.ir.stmt import AssignStmt
from repro.machine import LoweredIR, lower_procedure, simulate
from repro.machine.lowering import ExecutorTables, FastPath
from repro.machine.simulator import SPMDSimulator

SOURCE = """
PROGRAM UNIT
  PARAMETER (n = 10)
  REAL A(n), B(n), C(n)
  REAL s
!HPF$ ALIGN (i) WITH A(i) :: B, C
!HPF$ DISTRIBUTE (BLOCK) :: A
  s = 0.0
  DO i = 2, n - 1
    A(i) = SQRT(ABS(B(i - 1))) + C(i + 1) * 2.0
    s = s + A(i)
  END DO
  DO i = 1, n
    C(i) = s
  END DO
END PROGRAM
"""


def _inputs(n=10, seed=1):
    rng = np.random.default_rng(seed)
    return {name: rng.uniform(1, 2, n) for name in "ABC"}


class TestFortranIntDiv:
    @pytest.mark.parametrize(
        "left,right",
        [(7, 2), (-7, 2), (7, -2), (-7, -2), (6, 3), (-6, 3), (0, 5), (1, 7)],
    )
    def test_truncates_toward_zero(self, left, right):
        assert fortran_int_div(left, right) == math.trunc(left / right)

    def test_exact_beyond_float_precision(self):
        # int(left / right) loses bits above 2**53; // arithmetic must not.
        left = 2**60 + 1
        assert fortran_int_div(left, 1) == left
        assert fortran_int_div(-left, 1) == -left
        assert fortran_int_div(left, 3) == left // 3
        assert fortran_int_div(-left, 3) == -(left // 3)


class TestLoweringCache:
    def test_same_epoch_hits_cache(self):
        proc = parse_and_build(SOURCE)
        assert lower_procedure(proc) is lower_procedure(proc)

    def test_finalize_invalidates(self):
        proc = parse_and_build(SOURCE)
        before = lower_procedure(proc)
        proc.finalize()
        after = lower_procedure(proc)
        assert after is not before
        assert after.ir_epoch == proc.ir_epoch

    def test_pickle_round_trip_relowers(self):
        # LoweredIR holds exec'd closures; pickling reduces to the IR
        # and arrives as a lazy stand-in that re-lowers on first touch
        # (so CompiledProgram crosses the compile_many pool and the
        # disk cache without paying builtins.compile up front).
        proc = parse_and_build(SOURCE)
        lowered = lower_procedure(proc)
        clone = pickle.loads(pickle.dumps(lowered))
        assert not isinstance(clone, LoweredIR)  # lazy until touched
        assert set(clone.assigns) == set(lowered.assigns)
        assert isinstance(clone.force(), LoweredIR)
        assert set(clone.conds) == set(lowered.conds)
        assert clone.flops == lowered.flops


class TestExpressionClosures:
    def test_closures_match_eval_expr(self):
        proc = parse_and_build(SOURCE)
        lowered = lower_procedure(proc)
        store = GlobalStore(proc)
        for name, values in _inputs().items():
            store.set_array(name, values)
        store.scalars["S"] = 0.25
        env = {"I": 4}
        for stmt in proc.all_stmts():
            if not isinstance(stmt, AssignStmt):
                continue
            fn = lowered.assigns[stmt.stmt_id]
            index, value = fn(store, env)
            assert value == eval_expr(stmt.rhs, store, env), stmt

    def test_subscript_error_matches_interpreter(self):
        src = SOURCE.replace("DO i = 2, n - 1", "DO i = 2, n + 1")
        fast_err = slow_err = None
        try:
            run_sequential(parse_and_build(src), _inputs(), fast_path=True)
        except InterpreterError as e:
            fast_err = str(e)
        try:
            run_sequential(parse_and_build(src), _inputs(), fast_path=False)
        except InterpreterError as e:
            slow_err = str(e)
        assert fast_err is not None
        assert fast_err == slow_err

    def test_integer_division_by_zero_matches_interpreter(self):
        src = (
            "PROGRAM Z\n  PARAMETER (n = 4)\n  REAL A(n)\n  INTEGER k\n"
            "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
            "  DO i = 1, n\n    k = i / (i - 1)\n    A(i) = REAL(k)\n"
            "  END DO\nEND PROGRAM\n"
        )
        for fast in (True, False):
            with pytest.raises(InterpreterError, match="integer division by zero"):
                run_sequential(parse_and_build(src), fast_path=fast)


class TestExecutorTables:
    def test_ranks_match_interpreted_executor_sets(self):
        compiled = compile_source(SOURCE, CompilerOptions(num_procs=4))
        sim = SPMDSimulator(compiled, fast_path=True)
        for name, values in _inputs().items():
            sim.set_array(name, values)
        tables = ExecutorTables(sim)
        for stmt in compiled.proc.all_stmts():
            if stmt.stmt_id not in compiled.executors:
                continue
            loops = [lp.var.name for lp in stmt.loops_enclosing()]
            for i in range(1, 11):
                env = dict.fromkeys(loops, i)
                assert tables.ranks(stmt, env) == sim.executor_ranks(stmt, env), (
                    stmt,
                    env,
                )

    def test_fast_path_prefers_compiled_lowering(self):
        compiled = compile_source(SOURCE, CompilerOptions(num_procs=4))
        assert compiled.lowering is not None
        sim = SPMDSimulator(compiled, fast_path=True)
        assert FastPath(sim).lowered is compiled.lowering

    def test_fast_path_relowers_on_stale_epoch(self):
        compiled = compile_source(SOURCE, CompilerOptions(num_procs=4))
        stale = compiled.lowering
        compiled.proc.finalize()
        sim = SPMDSimulator(compiled, fast_path=True)
        fp = FastPath(sim)
        assert fp.lowered is not stale
        assert fp.lowered.ir_epoch == compiled.proc.ir_epoch


class TestFetchCharging:
    def test_block_staging_preserves_traffic_totals(self):
        # The coalescing stage changes only where fetched values are
        # read from; every per-element charge is identical.
        compiled = compile_source(SOURCE, CompilerOptions(num_procs=4))
        fast = simulate(compiled, _inputs(), fast_path=True)
        slow = simulate(compiled, _inputs(), fast_path=False)
        assert fast.stats.as_dict() == slow.stats.as_dict()
        assert fast.clocks.snapshot() == slow.clocks.snapshot()
