"""Unit tests for the tier-3 slab engine (`repro.machine.slabexec`).

Covers the static classifier (eligibility decisions on the paper
benchmarks), report plumbing through the pass manager, and runtime
behaviour: coverage, fallback, ghost-column fetch replay.
"""

import pickle
from collections import Counter

import numpy as np

from repro.core import CompilerOptions, compile_source
from repro.machine import simulate
from repro.programs import dgefa_source, tomcatv_inputs, tomcatv_source


def _compile_tomcatv(n=12, procs=4):
    return compile_source(
        tomcatv_source(n=n, niter=1, procs=procs),
        CompilerOptions(num_procs=procs),
    )


class TestClassifier:
    def test_tomcatv_eligibility(self):
        report = _compile_tomcatv().slabs
        assert report is not None
        verdicts = Counter(report.inner.values())
        # residual/new-coordinate/SOR sweeps vectorize; the two
        # tridiagonal elimination loops carry a recurrence
        assert verdicts["ok"] == 3
        carried = [r for r in report.inner.values() if r != "ok"]
        assert len(carried) == 2
        assert all("loop-carried" in r for r in carried)
        # both J sweeps over whole columns take the column plan
        assert list(report.column.values()) == ["ok", "ok"]

    def test_dgefa_eligibility(self):
        compiled = compile_source(
            dgefa_source(n=12, procs=4), CompilerOptions(num_procs=4)
        )
        report = compiled.slabs
        reasons = set(report.inner.values()) | set(report.column.values())
        assert "body contains IfStmt" in reasons  # pivot search
        assert any("executor position varies" in r for r in reasons)
        assert "ok" in report.inner.values()  # elimination updates

    def test_report_is_pickle_safe(self):
        report = _compile_tomcatv().slabs
        clone = pickle.loads(pickle.dumps(report))
        assert clone.inner == report.inner
        assert clone.column == report.column
        assert clone.ir_epoch == report.ir_epoch


class TestRuntime:
    def test_tomcatv_coverage_and_parity(self):
        compiled = _compile_tomcatv()
        inputs = tomcatv_inputs(12)
        slab = simulate(compiled, inputs, fast_path=True, slab_path=True)
        walker = simulate(compiled, inputs, fast_path=False)
        assert slab.slab_instances > 0
        assert slab.slab_coverage > 0.9
        assert slab.clocks.snapshot() == walker.clocks.snapshot()
        assert slab.stats.as_dict() == walker.stats.as_dict()
        for name in ("X", "Y"):
            assert (
                slab.gather(name).tobytes() == walker.gather(name).tobytes()
            )

    def test_slab_path_off_executes_nothing_in_tier3(self):
        compiled = _compile_tomcatv()
        sim = simulate(
            compiled, tomcatv_inputs(12), fast_path=True, slab_path=False
        )
        assert sim.slab_instances == 0

    def test_missing_report_is_rebuilt_at_runtime(self):
        compiled = _compile_tomcatv()
        compiled.slabs = None  # e.g. compiled artifact from an old cache
        sim = simulate(
            compiled, tomcatv_inputs(12), fast_path=True, slab_path=True
        )
        assert sim.slab_instances > 0

    def test_ghost_column_fetches_replay_inside_slab(self):
        """A (*, BLOCK) stencil reads the neighbour rank's boundary
        column; the slab engine must replay those demand fetches with
        tier-2's exact coalescing, charging, and delivery."""
        n = 10
        source = (
            f"PROGRAM G\n  PARAMETER (n = {n})\n"
            "  REAL A(n,n), B(n,n)\n"
            "!HPF$ ALIGN (i,j) WITH A(i,j) :: B\n"
            "!HPF$ DISTRIBUTE (*, BLOCK) :: A\n"
            "  DO j = 2, n - 1\n    DO i = 2, n - 1\n"
            "      A(i,j) = B(i, j - 1) + B(i, j + 1)\n"
            "    END DO\n  END DO\nEND PROGRAM\n"
        )
        rng = np.random.default_rng(3)
        inputs = {nm: rng.uniform(1, 2, (n, n)) for nm in "AB"}
        compiled = compile_source(source, CompilerOptions(num_procs=4))
        slab = simulate(compiled, inputs, fast_path=True, slab_path=True)
        walker = simulate(compiled, inputs, fast_path=False)
        assert slab.slab_instances > 0
        assert slab.stats.messages > 0  # ghost columns really moved
        assert slab.clocks.snapshot() == walker.clocks.snapshot()
        assert slab.stats.as_dict() == walker.stats.as_dict()
        assert slab.gather("A").tobytes() == walker.gather("A").tobytes()
