"""Unit tests for the procs-lane machine and clocks.

:class:`ProcsVectorMachine` carries a per-lane processor count on top
of the machine-parameter lanes; :class:`ProcsVectorClocks` lays per-rank
clock state out over the *maximum* rank count with validity masks, so a
charge addressed to rank ``r`` advances exactly the lanes where rank
``r`` exists.  The contract under test everywhere: each lane is bitwise
what a dedicated scalar run with that lane's model and rank count would
produce."""

import dataclasses
import math

import numpy as np
import pytest

from repro.machine.batchexec import (
    ProcsVectorClocks,
    ProcsVectorMachine,
    VectorClocks,
    VectorMachine,
)
from repro.machine.stats import Clocks, sequential_prefix_sum
from repro.model import SP2

FAST = dataclasses.replace(SP2, name="fast-net", alpha=5e-6, beta=1.0 / 300e6)
WAN = dataclasses.replace(SP2, name="wan", alpha=5e-3, beta=1.0 / 1e6)
MODELS = (SP2, FAST, WAN)
PROCS = (1, 2, 4)


class TestProcsVectorMachine:
    def test_validation(self):
        with pytest.raises(ValueError, match="one count per lane"):
            ProcsVectorMachine(MODELS, procs=(2, 4))
        with pytest.raises(ValueError, match="procs >= 1"):
            ProcsVectorMachine(MODELS, procs=(1, 0, 4))
        with pytest.raises(ValueError, match="one shape per lane"):
            ProcsVectorMachine(MODELS, procs=PROCS, grid_shapes=((1,), (2,)))
        with pytest.raises(ValueError, match="does not hold"):
            ProcsVectorMachine(
                MODELS, procs=PROCS, grid_shapes=((1,), (2,), (2, 3))
            )

    def test_default_grid_shapes_are_1d(self):
        machine = ProcsVectorMachine(MODELS, procs=PROCS)
        assert machine.grid_shapes == ((1,), (2,), (4,))
        assert machine.max_procs == 4

    def test_explicit_grid_shapes_kept(self):
        machine = ProcsVectorMachine(
            MODELS, procs=(1, 4, 4), grid_shapes=((1,), (2, 2), (4,))
        )
        assert machine.grid_shapes == ((1,), (2, 2), (4,))

    @pytest.mark.parametrize("elements", [1, 10, 4096])
    def test_lane_collectives_match_per_lane_scalar_models(self, elements):
        machine = ProcsVectorMachine(MODELS, procs=PROCS)
        for lane, (model, procs) in enumerate(zip(MODELS, PROCS)):
            assert machine.lane_broadcast_time(elements)[lane] == (
                model.broadcast_time(elements, procs)
            )
            assert machine.lane_reduce_time(elements)[lane] == (
                model.reduce_time(elements, procs)
            )
            assert machine.lane_gather_time(elements)[lane] == (
                model.gather_time(elements, procs)
            )
            assert machine.lane_alltoall_time(elements)[lane] == (
                model.alltoall_time(elements, procs)
            )

    def test_vector_collectives_accept_per_lane_spans(self):
        machine = ProcsVectorMachine(MODELS, procs=PROCS)
        spans = np.asarray([1, 2, 3])
        got = machine.broadcast_time(16, spans)
        for lane, (model, span) in enumerate(zip(MODELS, spans)):
            assert got[lane] == model.broadcast_time(16, int(span))


def _charge_script(clocks, machine, live_ranks):
    """One mixed charge sequence; ``live_ranks`` restricts every op to
    the ranks that exist (the scalar-replay filter) while the masked
    vector clocks receive the unrestricted global addresses."""

    def has(*ranks):
        return all(r in live_ranks for r in ranks)

    if has(0):
        clocks.charge_compute(0, 12)
    if has(1):
        clocks.charge_compute(1, 7)
    if has(3):
        clocks.charge_compute(3, 30)
    if has(0, 1):
        clocks.charge_message(0, 1, 5)
    if has(2, 3):
        clocks.charge_message(2, 3, 7)
    if has(0, 1):
        clocks.charge_message_amortized(0, 1, 9, startup=True)
        clocks.charge_message_amortized(0, 1, 9, startup=False)
    members = [r for r in (0, 1, 2, 3) if r in live_ranks]
    clocks.charge_collective(members, 4, "broadcast")
    clocks.charge_collective(members, 2, "reduce")
    pair = [r for r in (0, 1) if r in live_ranks]
    clocks.charge_collective(pair, 3, "reduce")
    if has(0):
        dts = [machine.compute_time(f, 1) for f in (3, 5, 8)]
        clocks.charge_compute_tape(0, clocks.tape(dts))


class TestProcsVectorClocks:
    def test_masked_charging_matches_scalar_replays(self):
        machine = ProcsVectorMachine(MODELS, procs=PROCS)
        vec = ProcsVectorClocks(machine)
        # the vector clocks see the global addresses; masking must keep
        # nonexistent ranks' lanes frozen
        _charge_script(vec, machine, live_ranks=set(range(machine.max_procs)))
        for lane, (model, procs) in enumerate(zip(MODELS, PROCS)):
            scalar = Clocks(procs, model)
            _charge_script(scalar, model, live_ranks=set(range(procs)))
            assert vec.lane_snapshot(lane) == scalar.snapshot()
            assert vec.lane_elapsed(lane) == scalar.elapsed

    def test_snapshot_covers_only_the_lanes_ranks(self):
        machine = ProcsVectorMachine(MODELS, procs=PROCS)
        vec = ProcsVectorClocks(machine)
        vec.charge_compute(0, 10)
        for lane, procs in enumerate(PROCS):
            snap = vec.lane_snapshot(lane)
            assert len(snap["time"]) == procs
            assert len(snap["compute_time"]) == procs

    def test_charges_to_missing_ranks_freeze_small_lanes(self):
        machine = ProcsVectorMachine(MODELS, procs=PROCS)
        vec = ProcsVectorClocks(machine)
        vec.charge_compute(2, 100)  # rank 2 exists only in the P=4 lane
        vec.charge_message(2, 3, 11)
        vec.charge_compute_tape(
            3, vec.tape([machine.compute_time(4, 1)])
        )
        assert vec.lane_elapsed(0) == 0.0
        assert vec.lane_elapsed(1) == 0.0
        assert vec.lane_elapsed(2) > 0.0

    def test_collective_span_is_per_lane(self):
        machine = ProcsVectorMachine(MODELS, procs=PROCS)
        vec = ProcsVectorClocks(machine)
        vec.charge_collective([0, 1, 2, 3], 8, "broadcast")
        # P=1 lane: span 1 -> scalar early-return, clocks untouched
        assert vec.lane_elapsed(0) == 0.0
        # P=2 lane: a 2-wide broadcast, not a 4-wide one
        two = Clocks(2, FAST)
        two.charge_collective([0, 1], 8, "broadcast")
        assert vec.lane_snapshot(1) == two.snapshot()
        four = Clocks(4, WAN)
        four.charge_collective([0, 1, 2, 3], 8, "broadcast")
        assert vec.lane_snapshot(2) == four.snapshot()

    def test_adopt_copies_sub_run_columns(self):
        machine = ProcsVectorMachine(MODELS, procs=(2, 2, 4))
        vec = ProcsVectorClocks(machine)
        # lanes 0-1: one 2-rank sub-simulation over two machine lanes
        sub2 = VectorClocks(2, VectorMachine([SP2, FAST]))
        sub2.charge_compute(0, 9)
        sub2.charge_message(0, 1, 6)
        # lane 2: a 4-rank single-lane sub-simulation
        sub4 = VectorClocks(4, VectorMachine([WAN]))
        sub4.charge_collective([0, 1, 2, 3], 5, "reduce")
        vec.adopt(0, sub2)
        vec.adopt(2, sub4)
        assert vec.lane_snapshot(0) == sub2.lane_snapshot(0)
        assert vec.lane_snapshot(1) == sub2.lane_snapshot(1)
        assert vec.lane_snapshot(2) == sub4.lane_snapshot(0)
        assert vec.lane_elapsed(2) == sub4.lane_elapsed(0)

    def test_adopt_validates_rank_counts(self):
        machine = ProcsVectorMachine(MODELS, procs=(2, 2, 4))
        vec = ProcsVectorClocks(machine)
        wrong = VectorClocks(4, VectorMachine([SP2, FAST]))
        with pytest.raises(ValueError, match="declare"):
            vec.adopt(0, wrong)


class TestSequentialPrefixSum:
    def test_matches_per_lane_scalar_folds(self):
        rng = np.random.default_rng(5)
        dts = rng.uniform(0.0, 1e-3, size=(9, 4))
        steps = np.asarray([0, 3, 7, 9])
        got = sequential_prefix_sum(0.125, dts, steps)
        for lane, count in enumerate(steps):
            acc = 0.125
            for i in range(count):
                acc += dts[i, lane]
            assert got[lane] == acc  # bitwise: same addition sequence

    def test_vector_start(self):
        dts = np.ones((3, 2)) * 0.5
        start = np.asarray([1.0, 2.0])
        got = sequential_prefix_sum(start, dts, [1, 3])
        assert got.tolist() == [1.5, 3.5]

    def test_validation(self):
        with pytest.raises(ValueError, match="tape"):
            sequential_prefix_sum(0.0, np.zeros(3), [1])
        with pytest.raises(ValueError, match="one count per lane"):
            sequential_prefix_sum(0.0, np.zeros((3, 2)), [1])
        with pytest.raises(ValueError, match="out of range"):
            sequential_prefix_sum(0.0, np.zeros((3, 2)), [1, 4])
