"""Unit tests for the P-parametric slab charging forms.

Each closed form must agree with a brute-force enumeration for every
processor count — scalar P for the ordinary simulation path, vector P
for the procs-lane sweep path — and :func:`charge_column_lanes` must
reproduce dedicated per-lane scalar folds bitwise."""

import dataclasses

import numpy as np
import pytest

from repro.machine.batchexec import ProcsVectorClocks, ProcsVectorMachine
from repro.machine.slabexec import (
    PColumnCharge,
    charge_column_lanes,
    slab_block_size,
    slab_local_count,
    slab_owned_trips,
    slab_rank_span,
    slab_trip_count,
)
from repro.machine.stats import Clocks
from repro.model import SP2

FAST = dataclasses.replace(SP2, name="fast", flop_time=1.0 / 500e6)


def _brute_owned(extent, procs, coord, first, stride, trips):
    """Enumerate the position progression and count hits in the block."""
    bs = -(-extent // procs)
    lo, hi = coord * bs, min((coord + 1) * bs, extent)
    positions = [first + k * stride for k in range(trips)]
    return sum(1 for p in positions if lo <= p < hi)


class TestClosedForms:
    @pytest.mark.parametrize(
        "low,high,step,expect",
        [(1, 10, 1, 10), (1, 10, 3, 4), (10, 1, 1, 0), (5, 5, 2, 1),
         (10, 1, -2, 5)],
    )
    def test_trip_count_scalar(self, low, high, step, expect):
        assert slab_trip_count(low, high, step) == expect

    def test_trip_count_vector(self):
        low = np.asarray([1, 1, 10])
        got = slab_trip_count(low, 10, 1)
        assert got.tolist() == [10, 10, 1]

    @pytest.mark.parametrize("extent", [1, 7, 16, 33])
    @pytest.mark.parametrize("procs", [1, 2, 3, 4, 8])
    def test_block_partition_forms(self, extent, procs):
        bs = slab_block_size(extent, procs)
        assert bs == -(-extent // procs)
        total = 0
        owners = 0
        for coord in range(procs):
            count = slab_local_count(extent, procs, coord)
            brute = max(0, min(bs, extent - coord * bs))
            assert count == brute
            total += count
            owners += count > 0
        assert total == extent  # the blocks tile the extent exactly
        assert slab_rank_span(extent, procs) == owners

    def test_partition_forms_vectorize_over_procs(self):
        procs = np.asarray([1, 2, 3, 4, 8])
        extent = 33
        assert slab_block_size(extent, procs).tolist() == [
            slab_block_size(extent, int(p)) for p in procs
        ]
        assert slab_rank_span(extent, procs).tolist() == [
            slab_rank_span(extent, int(p)) for p in procs
        ]
        assert slab_local_count(extent, procs, 1).tolist() == [
            slab_local_count(extent, int(p), 1) for p in procs
        ]

    @pytest.mark.parametrize("stride", [1, 2, 3, -1, -2, 0])
    @pytest.mark.parametrize("procs", [1, 2, 4, 5])
    def test_owned_trips_matches_enumeration(self, stride, procs):
        extent, trips = 20, 9
        first = 14 if stride < 0 else 2
        for coord in range(procs):
            got = slab_owned_trips(extent, procs, coord, first, stride, trips)
            assert got == _brute_owned(
                extent, procs, coord, first, stride, trips
            ), (stride, procs, coord)

    def test_owned_trips_vectorizes_over_procs(self):
        procs = np.asarray([1, 2, 4, 5])
        got = slab_owned_trips(20, procs, 1, 2, 2, 9)
        assert got.tolist() == [
            slab_owned_trips(20, int(p), 1, 2, 2, 9) for p in procs
        ]


class TestPColumnCharge:
    CHARGE = PColumnCharge(extent=20, first=1, stride=1, trips=18, unit_len=3)

    @pytest.mark.parametrize("procs", [1, 2, 3, 4, 8])
    def test_columns_partition_the_trips(self, procs):
        counts = [self.CHARGE.columns(procs, r) for r in range(procs)]
        assert sum(counts) == self.CHARGE.trips
        assert self.CHARGE.span(procs) == sum(c > 0 for c in counts)
        for r, count in enumerate(counts):
            assert self.CHARGE.rank_steps(procs, r) == (
                count * self.CHARGE.unit_len
            )

    def test_span_vectorizes(self):
        procs = np.asarray([1, 2, 4, 8])
        assert self.CHARGE.span(procs).tolist() == [
            self.CHARGE.span(int(p)) for p in procs
        ]


class TestChargeColumnLanes:
    def test_matches_per_lane_scalar_folds(self):
        models = (SP2, FAST, SP2)
        procs = (1, 2, 4)
        machine = ProcsVectorMachine(models, procs=procs)
        clocks = ProcsVectorClocks(machine)
        charge = PColumnCharge(
            extent=10, first=1, stride=1, trips=8, unit_len=2
        )
        # per-column dt tape: one compute charge per body statement
        unit = np.stack(
            [machine.compute_time(5, 1), machine.compute_time(9, 1)]
        )
        charge_column_lanes(clocks, charge, unit)
        for lane, (model, p) in enumerate(zip(models, procs)):
            scalar = Clocks(p, model)
            dts = [model.compute_time(5, 1), model.compute_time(9, 1)]
            for r in range(p):
                cols = charge.columns(p, r)
                scalar.charge_compute_tape(r, scalar.tape(dts * cols))
            assert clocks.lane_snapshot(lane) == scalar.snapshot()
            assert clocks.lane_elapsed(lane) == scalar.elapsed

    def test_shared_1d_unit_broadcasts_across_lanes(self):
        machine = ProcsVectorMachine((SP2, SP2), procs=(2, 4))
        clocks = ProcsVectorClocks(machine)
        charge = PColumnCharge(extent=8, first=1, stride=1, trips=8,
                               unit_len=1)
        charge_column_lanes(clocks, charge, np.asarray([1e-6]))
        for lane, p in enumerate((2, 4)):
            scalar = Clocks(p, SP2)
            for r in range(p):
                cols = charge.columns(p, r)
                scalar.charge_compute_tape(r, scalar.tape([1e-6] * cols))
            assert clocks.lane_snapshot(lane) == scalar.snapshot()

    def test_empty_unit_is_a_no_op(self):
        machine = ProcsVectorMachine((SP2,), procs=(2,))
        clocks = ProcsVectorClocks(machine)
        charge = PColumnCharge(extent=8, first=1, stride=1, trips=8,
                               unit_len=0)
        charge_column_lanes(clocks, charge, np.empty((0,)))
        assert clocks.lane_elapsed(0) == 0.0
