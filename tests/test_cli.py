"""CLI tests (driving repro.cli.main directly)."""

import pytest

from repro.cli import main


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "demo.hpf"
    path.write_text(
        "PROGRAM DEMO\n"
        "  PARAMETER (n = 16)\n"
        "  REAL A(n), B(n)\n"
        "  REAL t\n"
        "!HPF$ PROCESSORS P(4)\n"
        "!HPF$ ALIGN B(i) WITH A(i)\n"
        "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
        "  DO i = 2, n - 1\n"
        "    t = B(i - 1) + B(i + 1)\n"
        "    A(i) = 0.5 * t\n"
        "  END DO\n"
        "END PROGRAM\n"
    )
    return str(path)


class TestCompile:
    def test_report_printed(self, program_file, capsys):
        assert main(["compile", program_file]) == 0
        out = capsys.readouterr().out
        assert "scalar mappings" in out
        assert "aligned with A(I)" in out

    def test_spmd_flag(self, program_file, capsys):
        assert main(["compile", program_file, "--spmd"]) == 0
        out = capsys.readouterr().out
        assert "SPMD node program" in out
        assert "SHIFT_EXCHANGE" in out

    def test_strategy_flag(self, program_file, capsys):
        assert main(["compile", program_file, "--strategy", "replication"]) == 0
        out = capsys.readouterr().out
        assert "replicated" in out

    def test_procs_override(self, program_file, capsys):
        assert main(["compile", program_file, "--procs", "8"]) == 0
        out = capsys.readouterr().out
        assert "8 processors" in out

    def test_bad_strategy_rejected(self, program_file):
        with pytest.raises(SystemExit):
            main(["compile", program_file, "--strategy", "bogus"])

    def test_timings_flag(self, program_file, capsys):
        assert main(["compile", program_file, "--timings"]) == 0
        out = capsys.readouterr().out
        assert "pipeline timings:" in out
        for pass_name in ("parse", "ssa", "scalar-mapping", "comm-analysis"):
            assert pass_name in out

    def test_no_timings_by_default(self, program_file, capsys):
        assert main(["compile", program_file]) == 0
        assert "pipeline timings:" not in capsys.readouterr().out


class TestEstimate:
    def test_sweep(self, program_file, capsys):
        assert main(["estimate", program_file, "--procs", "1", "4"]) == 0
        out = capsys.readouterr().out
        assert "compute" in out
        assert out.count("s ") >= 2

    def test_combine_flag_accepted(self, program_file, capsys):
        assert (
            main(["estimate", program_file, "--procs", "4", "--combine-messages"])
            == 0
        )


class TestRun:
    def test_validates_against_sequential(self, program_file, capsys):
        assert main(["run", program_file, "--procs", "4"]) == 0
        out = capsys.readouterr().out
        assert "matches sequential: True" in out
        assert "0 unexpected" in out

    def test_seed_determinism(self, program_file, capsys):
        main(["run", program_file, "--seed", "3"])
        first = capsys.readouterr().out
        main(["run", program_file, "--seed", "3"])
        second = capsys.readouterr().out
        assert first == second


class TestTables:
    def test_single_fast_table(self, capsys):
        assert main(["tables", "--table", "2", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "DGEFA" in out
        assert "Alignment" in out

    def test_multiple_tables(self, capsys):
        assert main(["tables", "--table", "2", "3", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "DGEFA" in out and "APPSP" in out

    def test_timings_flag(self, capsys):
        assert main(["tables", "--table", "2", "--fast", "--timings"]) == 0
        out = capsys.readouterr().out
        assert "pipeline timings (all tables):" in out
        assert "scalar-mapping" in out
        # the DGEFA row compiles one source under two variants: the
        # shared manager must report front-end cache hits
        import re

        row = next(l for l in out.splitlines() if l.startswith("ssa "))
        cached = int(re.split(r"\s+", row.strip())[2])
        assert cached >= 1


class TestStdin:
    def test_dash_reads_stdin(self, monkeypatch, capsys):
        import io

        source = (
            "PROGRAM P\n  REAL A(8)\n!HPF$ DISTRIBUTE (BLOCK) :: A\n"
            "  DO i = 1, 8\n    A(i) = 1.0\n  END DO\nEND PROGRAM\n"
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(source))
        assert main(["compile", "-", "--procs", "2"]) == 0
        out = capsys.readouterr().out
        assert "=== P ===" in out


class TestExplainAndProfile:
    def test_explain_flag(self, program_file, capsys):
        assert main(["compile", program_file, "--explain"]) == 0
        out = capsys.readouterr().out
        assert "diagnostics:" in out

    def test_profile_command(self, program_file, capsys):
        assert main(["profile", program_file, "--procs", "4", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "statements by compute time" in out
        assert "transfers by time" in out


class TestTraceFlag:
    def test_run_with_trace(self, program_file, capsys):
        assert main(["run", program_file, "--procs", "4", "--trace", "5"]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "fetch" in out


class TestObsFlags:
    def test_trace_path_writes_chrome_json(self, program_file, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        out_path = tmp_path / "trace.json"
        assert (
            main(["run", program_file, "--procs", "4", "--trace", str(out_path)])
            == 0
        )
        assert f"to {out_path}" in capsys.readouterr().out
        chrome = json.loads(out_path.read_text())
        assert validate_chrome_trace(chrome) == []
        names = {e["name"] for e in chrome["traceEvents"]}
        assert any(n.startswith("pass:") for n in names)
        assert any(n.startswith("simulate[") for n in names)

    def test_metrics_flag_prints_registry(self, program_file, capsys):
        assert main(["run", program_file, "--procs", "4", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "sim.messages" in out
        assert "compile.cache.misses" in out

    def test_metrics_json(self, program_file, tmp_path):
        import json

        out_path = tmp_path / "metrics.json"
        assert (
            main(
                ["run", program_file, "--procs", "4",
                 "--metrics-json", str(out_path)]
            )
            == 0
        )
        loaded = json.loads(out_path.read_text())
        assert "sim.messages" in loaded["gauges"]
        assert "lowering.cache.size" in loaded["gauges"]

    def test_stats_json_is_byte_identical_across_runs(
        self, program_file, tmp_path, capsys
    ):
        first = tmp_path / "s1.json"
        second = tmp_path / "s2.json"
        assert (
            main(["run", program_file, "--procs", "4",
                  "--stats-json", str(first)]) == 0
        )
        assert (
            main(["run", program_file, "--procs", "4",
                  "--stats-json", str(second)]) == 0
        )
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()
        import json

        payload = json.loads(first.read_text())
        assert set(payload) == {"procs", "clocks", "stats", "tiers"}

    def test_estimate_does_not_mutate_namespace(self, program_file, capsys):
        """The sweep builds fresh options per procs value; the argparse
        namespace keeps the original list."""
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["estimate", program_file, "--procs", "1", "4"]
        )
        assert args.func(args) == 0
        capsys.readouterr()
        assert args.procs == [1, 4]
        assert not hasattr(args, "procs_single")


class TestSweepCommand:
    def test_table_output(self, program_file, capsys):
        assert main(["sweep", program_file, "--procs", "2", "4"]) == 0
        out = capsys.readouterr().out
        assert "elapsed" in out
        assert "2 points" in out
        assert "0 failed" in out

    def test_json_output(self, program_file, capsys):
        import json

        assert main(
            ["sweep", program_file, "--procs", "2", "--json",
             "--sweep-mode", "estimate"]
        ) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 1
        assert records[0]["ok"] is True
        assert "total_time" in records[0]

    def test_axis_flag(self, program_file, capsys):
        assert main(
            ["sweep", program_file, "--procs", "2",
             "--axis", "strategy=selected,producer",
             "--sweep-mode", "compile"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 points" in out

    def test_forced_batched_mode(self, program_file, capsys):
        assert main(
            ["sweep", program_file, "--procs", "2", "4",
             "--mode", "batched"]
        ) == 0
        out = capsys.readouterr().out
        assert "(2 batched" in out

    def test_rejects_machine_axis(self, program_file):
        with pytest.raises(SystemExit):
            main(["sweep", program_file, "--axis", "machine=a,b"])

    def test_rejects_unknown_axis_field(self, program_file):
        with pytest.raises(SystemExit):
            main(["sweep", program_file, "--axis", "warp_factor=9"])


class TestCalibrateCommand:
    def test_fits_and_renders(self, capsys, monkeypatch):
        from repro.perf import calibrate as calibrate_mod

        monkeypatch.setattr(
            calibrate_mod, "DEFAULT_CONFIGS",
            ((1, 20, 32), (1, 60, 32), (2, 20, 32), (2, 40, 64),
             (1, 10, 256)),
        )
        assert main(["calibrate", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "nest-cost calibration" in out
        for name in ("C_T2_STMT", "C_PREP", "C_VEC", "C_ELEM"):
            assert name in out
        assert "nest_cost_constants" in out

    def test_json_output(self, capsys, monkeypatch):
        import json

        from repro.perf import calibrate as calibrate_mod

        # the real micro-benchmarks take seconds; shrink them for CI
        monkeypatch.setattr(
            calibrate_mod, "DEFAULT_CONFIGS",
            ((1, 20, 32), (1, 60, 32), (2, 20, 32), (2, 40, 64),
             (1, 10, 256)),
        )
        assert main(["calibrate", "--repeats", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["constants"]) == {
            "C_T2_STMT", "C_PREP", "C_VEC", "C_ELEM"
        }
        assert all(v > 0 for v in payload["constants"].values())
        assert len(payload["samples"]) == 5


class TestFuzz:
    def test_clean_campaign_exits_zero(self, capsys):
        assert main(["fuzz", "--count", "4", "--sweep-every", "4"]) == 0
        out = capsys.readouterr().out
        assert "4/4 programs checked" in out
        assert "0 divergent" in out

    def test_divergent_campaign_exits_nonzero(
        self, capsys, monkeypatch, tmp_path
    ):
        from repro.fuzz import harness as harness_mod
        from repro.fuzz import runner as runner_mod

        real = harness_mod.check_tiers

        def broken(source, procs, **kwargs):
            divergences, reference = real(source, procs, **kwargs)
            if procs == 3:
                divergences = divergences + [
                    harness_mod.Divergence(
                        kind="clocks", detail="injected", procs=procs
                    )
                ]
            return divergences, reference

        monkeypatch.setattr(harness_mod, "check_tiers", broken)
        artifacts = tmp_path / "artifacts"
        assert main([
            "fuzz", "--count", "1", "--sweep-every", "0",
            "--shrink-steps", "5", "--artifacts", str(artifacts),
        ]) == 1
        out = capsys.readouterr().out
        assert "1 divergent" in out
        assert (artifacts / "findings.json").exists()
        assert list(artifacts.glob("divergence_*.hpf"))
