"""DGEFA end-to-end: elimination semantics + Table 2 shape."""

import numpy as np
import pytest

from repro.codegen import run_sequential
from repro.core import (
    CompilerOptions,
    FullyReplicatedReduction,
    ReductionMapping,
    compile_source,
)
from repro.ir import ScalarRef, parse_and_build
from repro.machine import simulate
from repro.perf import PerfEstimator
from repro.programs import dgefa_inputs, dgefa_reference, dgefa_source


class TestSequentialSemantics:
    def test_matches_numpy_reference(self):
        src = dgefa_source(n=10, procs=4)
        inputs = dgefa_inputs(10)
        store = run_sequential(parse_and_build(src), inputs)
        ref_a, ref_p = dgefa_reference(inputs["A"])
        assert np.allclose(store.get_array("A"), ref_a)
        assert np.allclose(store.get_array("AMD")[:9], ref_p[:9])

    def test_factorization_solves(self):
        """LU factors actually factor the matrix (reconstruction)."""
        n = 8
        inputs = dgefa_inputs(n)
        a0 = inputs["A"].copy()
        store = run_sequential(parse_and_build(dgefa_source(n=n, procs=2)), inputs)
        lu = store.get_array("A")
        pivots = store.get_array("AMD").astype(int)
        # Rebuild: apply the recorded row exchanges and multipliers.
        l = np.eye(n)
        u = np.triu(lu)
        l[np.tril_indices(n, -1)] = -lu[np.tril_indices(n, -1)]
        perm = np.eye(n)
        for k in range(n - 1):
            p = np.eye(n)
            lk = pivots[k] - 1
            p[[k, lk]] = p[[lk, k]]
            perm = p @ perm
        assert np.allclose(l @ u, perm @ a0, atol=1e-8)


class TestParallelSemantics:
    @pytest.mark.parametrize("align", [True, False])
    @pytest.mark.parametrize("procs", [2, 4])
    def test_simulation_matches_sequential(self, align, procs):
        src = dgefa_source(n=8, procs=procs)
        inputs = dgefa_inputs(8)
        seq = run_sequential(parse_and_build(src), inputs)
        compiled = compile_source(src, CompilerOptions(align_reductions=align))
        sim = simulate(compiled, inputs)
        assert np.allclose(sim.gather("A"), seq.get_array("A"))
        assert np.allclose(sim.gather("AMD"), seq.get_array("AMD"))
        assert sim.stats.unexpected_fetches == 0


class TestMappingDecisions:
    def test_pivot_scalars_reduction_mapped(self):
        compiled = compile_source(dgefa_source(n=64, procs=4), CompilerOptions())
        found = {}
        for stmt in compiled.proc.assignments():
            if isinstance(stmt.lhs, ScalarRef) and stmt.lhs.symbol.name in ("PMAX", "L"):
                mapping = compiled.scalar_mapping_of(stmt.stmt_id)
                found.setdefault(stmt.lhs.symbol.name, set()).add(type(mapping).__name__)
        assert found["PMAX"] == {"ReductionMapping"}
        assert found["L"] == {"ReductionMapping"}

    def test_maxloc_confined_to_column_owner(self):
        """With alignment, the pivot column A(i,k) is read locally —
        no column broadcast."""
        compiled = compile_source(dgefa_source(n=64, procs=4), CompilerOptions())
        pivot_reads = [
            e
            for e in compiled.comm.events
            if e.ref.symbol.name == "A"
            and "K" in str(e.ref)
            and e.stmt.nesting_level == 2  # inside the maxloc i loop
        ]
        assert not pivot_reads

    def test_default_broadcasts_pivot_column(self):
        compiled = compile_source(
            dgefa_source(n=64, procs=4), CompilerOptions(align_reductions=False)
        )
        maxloc_events = [
            e
            for e in compiled.comm.events
            if e.ref.symbol.name == "A" and e.pattern.kind in ("broadcast", "general")
        ]
        assert maxloc_events

    def test_no_combine_needed_when_confined(self):
        """The reduction spans no grid dimension (rows are collapsed):
        no allreduce events."""
        compiled = compile_source(dgefa_source(n=64, procs=4), CompilerOptions())
        assert not compiled.comm.reduces


class TestTable2Shape:
    @pytest.fixture(scope="class")
    def times(self):
        out = {}
        for align in (False, True):
            for procs in (2, 4, 8, 16):
                compiled = compile_source(
                    dgefa_source(n=500, procs=procs),
                    CompilerOptions(align_reductions=align),
                )
                out[align, procs] = PerfEstimator(compiled).estimate().total_time
        return out

    def test_alignment_wins_at_scale(self, times):
        for procs in (8, 16):
            assert times[True, procs] < times[False, procs]

    def test_both_versions_speed_up(self, times):
        assert times[True, 16] < times[True, 2]
        assert times[False, 16] < times[False, 2]

    def test_gap_grows_relatively(self, times):
        """The replicated reduction's overhead is an increasing share of
        the runtime as P grows (paper's observation)."""
        rel2 = (times[False, 2] - times[True, 2]) / times[True, 2]
        rel16 = (times[False, 16] - times[True, 16]) / times[True, 16]
        assert rel16 > rel2
