"""Cross-validation: the analytic estimator and the machine simulator
must agree on the *ordering* of compiler strategies (the property the
paper's tables rest on)."""

import numpy as np
import pytest

from repro.core import CompilerOptions, compile_source
from repro.machine import simulate
from repro.perf import PerfEstimator
from repro.programs import (
    dgefa_inputs,
    dgefa_source,
    tomcatv_inputs,
    tomcatv_source,
)


def measure_both(src, inputs, **opts):
    compiled = compile_source(src, CompilerOptions(**opts))
    est = PerfEstimator(compiled).estimate().total_time
    sim = simulate(compiled, inputs).elapsed
    return est, sim


class TestStrategyOrderingAgreement:
    def test_tomcatv_selected_beats_replication_in_both_models(self):
        src = tomcatv_source(n=12, niter=2, procs=4)
        inputs = tomcatv_inputs(12)
        est_sel, sim_sel = measure_both(src, inputs, strategy="selected")
        est_rep, sim_rep = measure_both(src, inputs, strategy="replication")
        assert est_sel < est_rep
        assert sim_sel < sim_rep

    def test_tomcatv_selected_beats_producer_in_both_models(self):
        src = tomcatv_source(n=12, niter=2, procs=4)
        inputs = tomcatv_inputs(12)
        est_sel, sim_sel = measure_both(src, inputs, strategy="selected")
        est_pro, sim_pro = measure_both(src, inputs, strategy="producer")
        assert est_sel < est_pro
        assert sim_sel < sim_pro

    def test_dgefa_models_agree_on_ordering(self):
        """At n=16 the latency-dominated regime actually favours the
        replicated maxloc (fewer small messages); what matters is that
        the analytic estimator and the simulator *agree* — the
        alignment win of Table 2 appears at the paper's n=1000."""
        src = dgefa_source(n=16, procs=4)
        inputs = dgefa_inputs(16)
        est_al, sim_al = measure_both(src, inputs, align_reductions=True)
        est_de, sim_de = measure_both(src, inputs, align_reductions=False)
        assert (est_al < est_de) == (sim_al < sim_de)

    def test_dgefa_estimator_tracks_simulator_closely(self):
        """On DGEFA the two performance models land within ~30% of each
        other — the analytic model is not a separate fiction."""
        src = dgefa_source(n=24, procs=4)
        inputs = dgefa_inputs(24)
        for align in (True, False):
            est, sim = measure_both(src, inputs, align_reductions=align)
            assert 0.5 < est / sim < 2.0

    def test_message_combining_helps_in_both_models(self):
        src = tomcatv_source(n=12, niter=2, procs=4)
        inputs = tomcatv_inputs(12)
        est_plain, sim_plain = measure_both(src, inputs)
        est_comb, sim_comb = measure_both(src, inputs, combine_messages=True)
        assert est_comb <= est_plain
        assert sim_comb <= sim_plain


class TestMessageAccounting:
    """The simulator's traffic must be fully explained by the static
    analysis under every configuration of every benchmark — the central
    cross-validation invariant."""

    @pytest.mark.parametrize("strategy", ["selected", "producer", "replication", "noalign", "consumer"])
    def test_tomcatv_all_fetches_analyzed(self, strategy):
        src = tomcatv_source(n=8, niter=1, procs=4)
        compiled = compile_source(src, CompilerOptions(strategy=strategy))
        sim = simulate(compiled, tomcatv_inputs(8))
        assert sim.stats.unexpected_fetches == 0

    @pytest.mark.parametrize("vectorize", [True, False])
    def test_vectorization_modes_accounted(self, vectorize):
        src = tomcatv_source(n=8, niter=1, procs=4)
        compiled = compile_source(
            src, CompilerOptions(message_vectorization=vectorize)
        )
        sim = simulate(compiled, tomcatv_inputs(8))
        assert sim.stats.unexpected_fetches == 0


class TestCloseAgreementAcrossBenchmarks:
    """Estimator vs simulator magnitudes at validation sizes.

    The two models agree closely when communication is vectorized or
    collective. For *inner-loop shifts* they intentionally differ: the
    estimator prices a collective per iteration instance (the 1997
    compiled-code behaviour the paper's catastrophic columns reflect),
    while the simulator fetches lazily point-to-point, paying only at
    block boundaries. The estimator is therefore deliberately the
    pessimistic/paper-faithful bound for pipelined communication."""

    def test_tomcatv(self):
        src = tomcatv_source(n=16, niter=2, procs=4)
        est, sim = measure_both(src, tomcatv_inputs(16))
        assert 0.4 < est / sim < 2.5

    def test_appsp_estimator_is_pessimistic_bound(self):
        from repro.programs import appsp_inputs, appsp_source

        src = appsp_source(nx=8, ny=8, nz=8, niter=2, procs=4, distribution="2d")
        est, sim = measure_both(src, appsp_inputs(8, 8, 8))
        # 2-D APPSP pipelines its z-sweep: the estimator's
        # collective-per-iteration pricing bounds the simulator's lazy
        # point-to-point fetching from above.
        assert sim <= est <= 10 * sim
