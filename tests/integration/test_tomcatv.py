"""TOMCATV end-to-end: semantics under every strategy + Table 1 shape."""

import numpy as np
import pytest

from repro.codegen import run_sequential
from repro.core import AlignedTo, CompilerOptions, ReductionMapping, compile_source
from repro.ir import ScalarRef, parse_and_build
from repro.machine import simulate
from repro.perf import PerfEstimator
from repro.programs import tomcatv_inputs, tomcatv_source


SMALL = dict(n=8, niter=2, procs=4)


@pytest.fixture(scope="module")
def sequential():
    src = tomcatv_source(**SMALL)
    return run_sequential(parse_and_build(src), tomcatv_inputs(8))


class TestSemantics:
    @pytest.mark.parametrize("strategy", ["selected", "producer", "replication", "noalign"])
    def test_simulation_matches_sequential(self, sequential, strategy):
        src = tomcatv_source(**SMALL)
        compiled = compile_source(src, CompilerOptions(strategy=strategy))
        sim = simulate(compiled, tomcatv_inputs(8))
        for name in ("X", "Y", "RX", "RY", "AA", "DD"):
            assert np.allclose(sim.gather(name), sequential.get_array(name)), name
        assert sim.stats.unexpected_fetches == 0

    def test_grid_sizes(self, sequential):
        for procs in (1, 2, 8):
            src = tomcatv_source(n=8, niter=2, procs=procs)
            sim = simulate(compile_source(src, CompilerOptions()), tomcatv_inputs(8))
            assert np.allclose(sim.gather("X"), sequential.get_array("X"))


class TestMappingDecisions:
    @pytest.fixture(scope="class")
    def compiled(self):
        return compile_source(tomcatv_source(n=64, niter=2, procs=4), CompilerOptions())

    def test_stencil_scalars_aligned_with_consumers(self, compiled):
        names = {"XX", "YX", "XY", "YY", "A", "B", "C", "PXX", "QXY"}
        for stmt in compiled.proc.assignments():
            if isinstance(stmt.lhs, ScalarRef) and stmt.lhs.symbol.name in names:
                mapping = compiled.scalar_mapping_of(stmt.stmt_id)
                assert isinstance(mapping, AlignedTo), (stmt, mapping)
                assert mapping.is_consumer, (stmt, mapping)

    def test_residual_reductions_mapped(self, compiled):
        names = {"RXM", "RYM"}
        found = 0
        for stmt in compiled.proc.assignments():
            if isinstance(stmt.lhs, ScalarRef) and stmt.lhs.symbol.name in names:
                mapping = compiled.scalar_mapping_of(stmt.stmt_id)
                assert isinstance(mapping, ReductionMapping)
                found += 1
        assert found >= 2

    def test_no_inner_loop_comm_under_selected(self, compiled):
        assert not compiled.comm.inner_loop_events()

    def test_producer_creates_inner_loop_comm(self):
        compiled = compile_source(
            tomcatv_source(n=64, niter=2, procs=4),
            CompilerOptions(strategy="producer"),
        )
        assert compiled.comm.inner_loop_events()


class TestTable1Shape:
    """The qualitative claims of paper Table 1."""

    @pytest.fixture(scope="class")
    def times(self):
        out = {}
        for strategy in ("replication", "producer", "selected"):
            for procs in (1, 4, 16):
                compiled = compile_source(
                    tomcatv_source(n=257, niter=3, procs=procs),
                    CompilerOptions(strategy=strategy),
                )
                out[strategy, procs] = PerfEstimator(compiled).estimate().total_time
        return out

    def test_selected_speeds_up(self, times):
        assert times["selected", 4] < times["selected", 1]
        assert times["selected", 16] < times["selected", 4]

    def test_replication_never_speeds_up(self, times):
        assert times["replication", 4] >= times["replication", 1]
        assert times["replication", 16] >= times["replication", 4]

    def test_producer_never_speeds_up(self, times):
        assert times["producer", 16] >= 0.5 * times["producer", 1]

    def test_selected_beats_baselines_at_16(self, times):
        assert times["selected", 16] < times["replication", 16]
        assert times["selected", 16] < times["producer", 16]

    def test_two_orders_of_magnitude(self, times):
        worst = max(times["replication", 16], times["producer", 16])
        assert worst / times["selected", 16] > 100
