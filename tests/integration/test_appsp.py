"""APPSP end-to-end: sweep semantics under all four Table-3 variants."""

import numpy as np
import pytest

from repro.codegen import run_sequential
from repro.core import CompilerOptions, compile_source
from repro.ir import parse_and_build
from repro.machine import simulate
from repro.perf import PerfEstimator
from repro.programs import appsp_inputs, appsp_source


VARIANTS = [
    ("1d", CompilerOptions(privatize_arrays=False), "1d-nopriv"),
    ("1d", CompilerOptions(), "1d-priv"),
    ("2d", CompilerOptions(partial_privatization=False), "2d-nopartial"),
    ("2d", CompilerOptions(), "2d-partial"),
]


class TestSemantics:
    @pytest.mark.parametrize("dist,opts,label", VARIANTS, ids=[v[2] for v in VARIANTS])
    def test_simulation_matches_sequential(self, dist, opts, label):
        src = appsp_source(nx=6, ny=6, nz=6, niter=2, procs=4, distribution=dist)
        inputs = appsp_inputs(6, 6, 6)
        seq = run_sequential(parse_and_build(src), inputs)
        sim = simulate(compile_source(src, opts), inputs)
        assert np.allclose(sim.gather("RSD"), seq.get_array("RSD"))
        assert sim.stats.unexpected_fetches == 0


class TestPrivatizationDecisions:
    def test_1d_full_privatization(self):
        compiled = compile_source(
            appsp_source(nx=16, ny=16, nz=16, niter=1, procs=4, distribution="1d"),
            CompilerOptions(),
        )
        privs = compiled.array_result.privatizations
        assert len(privs) == 1
        assert privs[0].array.name == "C"
        assert not privs[0].is_partial

    def test_2d_partial_privatization(self):
        compiled = compile_source(
            appsp_source(nx=16, ny=16, nz=16, niter=1, procs=4, distribution="2d"),
            CompilerOptions(),
        )
        privs = compiled.array_result.privatizations
        assert len(privs) == 1
        assert privs[0].is_partial
        assert privs[0].privatized_grid_dims == (1,)
        assert privs[0].partitioned_dims == {1: 0}

    def test_2d_without_partial_fails(self):
        compiled = compile_source(
            appsp_source(nx=16, ny=16, nz=16, niter=1, procs=4, distribution="2d"),
            CompilerOptions(partial_privatization=False),
        )
        assert not compiled.array_result.privatizations
        assert compiled.array_result.failures
        assert compiled.mappings["C"].is_replicated

    def test_nopriv_leaves_c_replicated(self):
        compiled = compile_source(
            appsp_source(nx=16, ny=16, nz=16, niter=1, procs=4, distribution="1d"),
            CompilerOptions(privatize_arrays=False),
        )
        assert compiled.mappings["C"].is_replicated


class TestTable3Shape:
    @pytest.fixture(scope="class")
    def times(self):
        out = {}
        for dist, opts, label in VARIANTS:
            for procs in (4, 16):
                compiled = compile_source(
                    appsp_source(
                        nx=32, ny=32, nz=32, niter=2, procs=procs, distribution=dist
                    ),
                    opts,
                )
                out[label, procs] = PerfEstimator(compiled).estimate().total_time
        return out

    def test_privatization_always_wins(self, times):
        for procs in (4, 16):
            assert times["1d-priv", procs] < times["1d-nopriv", procs]
            assert times["2d-partial", procs] < times["2d-nopartial", procs]

    def test_nopriv_does_not_scale(self, times):
        assert times["1d-nopriv", 16] >= times["1d-nopriv", 4]
        assert times["2d-nopartial", 16] >= times["2d-nopartial", 4]

    def test_2d_without_partial_equals_replication_disaster(self, times):
        """Paper: "with a 2-D distribution, even regular array
        privatization does not help" — the 2-D no-partial variant is in
        the same regime as no privatization at all."""
        ratio = times["2d-nopartial", 16] / times["1d-nopriv", 16]
        assert 0.5 < ratio < 2.0

    def test_paper_crossover(self, times):
        """Paper: the 2-D version "starts out at fewer processors with
        better performance [no transpose] but does not scale as well as
        the version using 1-D distribution"."""
        # At high P the 1-D (transpose) version wins...
        assert times["1d-priv", 16] < times["2d-partial", 16]
        # ...while both privatized variants stay far below the
        # no-privatization disasters everywhere.
        for procs in (4, 16):
            worst_priv = max(times["1d-priv", procs], times["2d-partial", procs])
            best_nopriv = min(
                times["1d-nopriv", procs], times["2d-nopartial", procs]
            )
            assert worst_priv < best_nopriv
