"""Robustness cases: indirect indexing (non-affine subscripts),
remaining reduction operators, and miscellaneous simulator paths."""

import numpy as np
import pytest

from repro.codegen import run_sequential
from repro.core import CompilerOptions, compile_source
from repro.ir import parse_and_build
from repro.machine import simulate


class TestIndirectIndexing:
    SRC = """
PROGRAM GATHERIDX
  PARAMETER (n = 16)
  REAL A(n), B(n)
  REAL IDX(n)
!HPF$ ALIGN B(i) WITH A(i)
!HPF$ DISTRIBUTE (BLOCK) :: A
  DO i = 1, n
    A(i) = B(INT(IDX(i)))
  END DO
END PROGRAM
"""

    def _inputs(self):
        rng = np.random.default_rng(9)
        return {
            "B": rng.uniform(1.0, 2.0, 16),
            "IDX": np.asarray(rng.permutation(16) + 1, dtype=float),
            "A": np.zeros(16),
        }

    def test_non_affine_subscript_compiles(self):
        compiled = compile_source(self.SRC, CompilerOptions(num_procs=4))
        events = [e for e in compiled.comm.events if e.ref.symbol.name == "B"]
        assert events
        # Unknown position: must be assumed remote (general pattern).
        assert events[0].pattern.kind in ("general", "broadcast")

    def test_simulation_correct(self):
        inputs = self._inputs()
        seq = run_sequential(parse_and_build(self.SRC), inputs)
        compiled = compile_source(self.SRC, CompilerOptions(num_procs=4))
        sim = simulate(compiled, inputs)
        assert np.allclose(sim.gather("A"), seq.get_array("A"))
        assert sim.stats.unexpected_fetches == 0

    def test_scatter_side(self):
        """Indirection on the lhs: A(INT(IDX(i))) = B(i)."""
        src = self.SRC.replace(
            "A(i) = B(INT(IDX(i)))", "A(INT(IDX(i))) = B(i)"
        )
        inputs = self._inputs()
        seq = run_sequential(parse_and_build(src), inputs)
        compiled = compile_source(src, CompilerOptions(num_procs=4))
        sim = simulate(compiled, inputs)
        assert np.allclose(sim.gather("A"), seq.get_array("A"))


class TestReductionOps:
    def _run(self, update, init, post="  B(1) = s"):
        src = (
            "PROGRAM T\n  PARAMETER (n = 12)\n  REAL A(n), B(n)\n  REAL s\n"
            "!HPF$ ALIGN B(i) WITH A(i)\n"
            "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
            f"  s = {init}\n"
            "  DO i = 1, n\n"
            f"    {update}\n"
            "  END DO\n"
            f"{post}\nEND PROGRAM\n"
        )
        rng = np.random.default_rng(4)
        inputs = {"A": rng.uniform(0.5, 1.5, 12), "B": np.zeros(12)}
        seq = run_sequential(parse_and_build(src), inputs)
        compiled = compile_source(src, CompilerOptions(num_procs=4))
        sim = simulate(compiled, inputs)
        return seq.get_array("B")[0], sim.gather("B")[0]

    def test_sum(self):
        expected, got = self._run("s = s + A(i)", "0.0")
        assert got == pytest.approx(expected)

    def test_sum_nonzero_init(self):
        expected, got = self._run("s = s + A(i)", "10.0")
        assert got == pytest.approx(expected)

    def test_product(self):
        expected, got = self._run("s = s * A(i)", "1.0")
        assert got == pytest.approx(expected)

    def test_max(self):
        expected, got = self._run("s = MAX(s, A(i))", "0.0")
        assert got == pytest.approx(expected)

    def test_min(self):
        expected, got = self._run("s = MIN(s, A(i))", "99.0")
        assert got == pytest.approx(expected)

    def test_maxloc_with_duplicates(self):
        src = (
            "PROGRAM T\n  PARAMETER (n = 12)\n  REAL A(n), B(n)\n"
            "  REAL s\n  INTEGER l\n"
            "!HPF$ ALIGN B(i) WITH A(i)\n"
            "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
            "  s = 0.0\n  l = 1\n"
            "  DO i = 1, n\n"
            "    IF (A(i) > s) THEN\n      s = A(i)\n      l = i\n    END IF\n"
            "  END DO\n"
            "  B(1) = l\nEND PROGRAM\n"
        )
        values = np.zeros(12)
        values[3] = 5.0
        values[9] = 5.0  # duplicate maximum: strict '>' keeps the first
        inputs = {"A": values, "B": np.zeros(12)}
        seq = run_sequential(parse_and_build(src), inputs)
        sim = simulate(compile_source(src, CompilerOptions(num_procs=4)), inputs)
        assert sim.gather("B")[0] == seq.get_array("B")[0] == 4.0


class TestMiscSimulatorPaths:
    def test_gather_scalar(self):
        src = (
            "PROGRAM T\n  REAL A(4)\n!HPF$ DISTRIBUTE (BLOCK) :: A\n"
            "  z = 7.5\n  A(1) = z\nEND PROGRAM\n"
        )
        sim = simulate(compile_source(src, CompilerOptions(num_procs=2)), {})
        assert sim.gather_scalar("z") == 7.5

    def test_negative_step_loop_parallel(self):
        src = (
            "PROGRAM T\n  PARAMETER (n = 12)\n  REAL A(n), B(n)\n"
            "!HPF$ ALIGN B(i) WITH A(i)\n"
            "!HPF$ DISTRIBUTE (BLOCK) :: A\n"
            "  DO i = n, 1, -1\n    A(i) = B(i) * 2.0\n  END DO\nEND PROGRAM\n"
        )
        inputs = {"B": np.arange(12, dtype=float), "A": np.zeros(12)}
        seq = run_sequential(parse_and_build(src), inputs)
        sim = simulate(compile_source(src, CompilerOptions(num_procs=4)), inputs)
        assert np.allclose(sim.gather("A"), seq.get_array("A"))

    def test_two_d_grid_stencil(self):
        src = (
            "PROGRAM T\n  PARAMETER (n = 8)\n  REAL U(n, n), V(n, n)\n"
            "!HPF$ PROCESSORS P(2, 2)\n"
            "!HPF$ ALIGN V(i, j) WITH U(i, j)\n"
            "!HPF$ DISTRIBUTE (BLOCK, BLOCK) :: U\n"
            "  DO j = 2, n - 1\n    DO i = 2, n - 1\n"
            "      V(i, j) = U(i - 1, j) + U(i + 1, j) + U(i, j - 1) + U(i, j + 1)\n"
            "    END DO\n  END DO\nEND PROGRAM\n"
        )
        rng = np.random.default_rng(12)
        inputs = {"U": rng.uniform(0, 1, (8, 8)), "V": np.zeros((8, 8))}
        seq = run_sequential(parse_and_build(src), inputs)
        sim = simulate(compile_source(src, CompilerOptions()), inputs)
        assert np.allclose(sim.gather("V"), seq.get_array("V"))
        assert sim.stats.unexpected_fetches == 0
