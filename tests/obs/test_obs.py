"""Unit tests of the repro.obs tracing + metrics primitives."""

import json

import pytest

from repro.obs import (
    Metrics,
    NULL_TRACER,
    Tracer,
    validate_chrome_trace,
)
from repro.obs.tracer import _NULL_SPAN


class TestTracer:
    def test_span_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("work", cat="test", tid=3, items=7):
            pass
        assert len(tracer) == 1
        event = tracer.events[0]
        assert event["name"] == "work"
        assert event["cat"] == "test"
        assert event["ph"] == "X"
        assert event["tid"] == 3
        assert event["args"] == {"items": 7}
        assert event["dur"] >= 0.0

    def test_span_add_attaches_args(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            span.add(found=2)
        assert tracer.events[0]["args"] == {"found": 2}

    def test_instant_and_counter(self):
        tracer = Tracer()
        tracer.instant("tick", src=1, dst=2)
        tracer.counter("queue", depth=4)
        phs = [e["ph"] for e in tracer.events]
        assert phs == ["i", "C"]
        assert tracer.events[0]["s"] == "t"
        assert tracer.events[1]["args"] == {"depth": 4}

    def test_timestamps_are_monotonic(self):
        tracer = Tracer()
        for i in range(5):
            tracer.instant(f"e{i}")
        stamps = [e["ts"] for e in tracer.events]
        assert stamps == sorted(stamps)
        assert all(ts >= 0 for ts in stamps)

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work", cost="should not even allocate"):
            tracer.instant("tick")
            tracer.counter("queue", depth=1)
        assert len(tracer) == 0

    def test_disabled_span_is_the_shared_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is _NULL_SPAN
        assert tracer.span("b") is _NULL_SPAN
        assert NULL_TRACER.span("c") is _NULL_SPAN
        _NULL_SPAN.add(anything=1)  # no-op, no error

    def test_clear(self):
        tracer = Tracer()
        tracer.instant("tick")
        tracer.clear()
        assert len(tracer) == 0

    def test_chrome_export_shape(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.instant("inner")
        chrome = tracer.to_chrome()
        assert validate_chrome_trace(chrome) == []
        path = tmp_path / "trace.json"
        tracer.write(str(path))
        assert validate_chrome_trace(json.loads(path.read_text())) == []


class TestValidateChromeTrace:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace({"events": []}) != []

    def test_rejects_bad_event(self):
        problems = validate_chrome_trace(
            {"traceEvents": [{"name": "x", "ph": "X", "ts": 0.0}]}
        )
        assert any("pid" in p for p in problems)
        assert any("dur" in p for p in problems)

    def test_rejects_negative_ts(self):
        problems = validate_chrome_trace(
            {
                "traceEvents": [
                    {"name": "x", "ph": "i", "ts": -1, "pid": 0, "tid": 0}
                ]
            }
        )
        assert any("ts" in p for p in problems)

    def test_accepts_empty(self):
        assert validate_chrome_trace({"traceEvents": []}) == []


class TestMetrics:
    def test_counters_accumulate(self):
        metrics = Metrics()
        metrics.inc("a")
        metrics.inc("a", 2)
        metrics.inc("b", 0.5)
        assert metrics.counters == {"a": 3, "b": 0.5}

    def test_gauges_overwrite(self):
        metrics = Metrics()
        metrics.gauge("x", 1)
        metrics.gauge("x", 9)
        assert metrics.gauges["x"] == 9

    def test_histograms_summarize(self):
        metrics = Metrics()
        for v in (1, 2, 3):
            metrics.observe("h", v)
        summary = metrics.histograms["h"].as_dict()
        assert summary == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0,
                           "mean": 2.0}

    def test_empty_histogram_mean_is_none(self):
        from repro.obs import Histogram

        assert Histogram().as_dict()["mean"] is None

    def test_as_dict_is_sorted_and_json_stable(self):
        metrics = Metrics()
        metrics.inc("z")
        metrics.inc("a")
        metrics.gauge("m", 1)
        first = json.dumps(metrics.as_dict(), sort_keys=True)
        second = json.dumps(metrics.as_dict(), sort_keys=True)
        assert first == second
        assert list(metrics.as_dict()["counters"]) == ["a", "z"]

    def test_merge(self):
        left, right = Metrics(), Metrics()
        left.inc("c", 1)
        right.inc("c", 2)
        right.gauge("g", 5)
        left.observe("h", 1)
        right.observe("h", 10)
        left.merge(right)
        assert left.counters["c"] == 3
        assert left.gauges["g"] == 5
        merged = left.histograms["h"].as_dict()
        assert merged["count"] == 2
        assert merged["min"] == 1.0 and merged["max"] == 10.0

    def test_write_round_trip(self, tmp_path):
        metrics = Metrics()
        metrics.inc("messages", 6)
        metrics.observe("per_event", 3)
        path = tmp_path / "metrics.json"
        metrics.write(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["counters"]["messages"] == 6
        assert loaded["histograms"]["per_event"]["count"] == 1

    def test_render_mentions_every_name(self):
        metrics = Metrics()
        metrics.inc("count.one")
        metrics.gauge("gauge.two", 2)
        metrics.observe("hist.three", 3)
        text = metrics.render()
        for name in ("count.one", "gauge.two", "hist.three"):
            assert name in text
        assert Metrics().render() == "  (no metrics recorded)"


class TestEndToEnd:
    """The obs layer wired through compile + simulate."""

    @pytest.fixture(scope="class")
    def traced_run(self):
        from repro.core import CompilerOptions, compile_source
        from repro.core.passes import PassManager
        from repro.machine import simulate
        from repro.programs import tomcatv_inputs, tomcatv_source

        tracer = Tracer()
        metrics = Metrics()
        manager = PassManager(tracer=tracer)
        compiled = compile_source(
            tomcatv_source(n=12, niter=1, procs=4),
            CompilerOptions(),
            manager=manager,
        )
        sim = simulate(
            compiled, tomcatv_inputs(12), tracer=tracer, metrics=metrics
        )
        manager.collect_metrics(metrics)
        return tracer, metrics, sim

    def test_span_taxonomy(self, traced_run):
        tracer, _, _ = traced_run
        names = {e["name"] for e in tracer.events}
        assert "parse" in names
        assert any(n.startswith("pass:") for n in names)
        assert any(n.startswith("simulate[") for n in names)
        # a fully-slabbed run reports takeovers; the per-fetch
        # msg.startup instants belong to the interpreted/lowered tiers
        assert "slab.takeover" in names
        assert validate_chrome_trace(tracer.to_chrome()) == []

    def test_lowered_tier_emits_message_startups(self, traced_run):
        from repro.machine import simulate
        from repro.programs import tomcatv_inputs

        _, _, sim = traced_run
        tracer = Tracer()
        lowered = simulate(
            sim.compiled,
            tomcatv_inputs(12),
            fast_path=True,
            slab_path=False,
            tracer=tracer,
        )
        startups = [
            e for e in tracer.events if e["name"] == "msg.startup"
        ]
        assert len(startups) == lowered.stats.messages
        assert validate_chrome_trace(tracer.to_chrome()) == []

    def test_metrics_cover_all_layers(self, traced_run):
        _, metrics, sim = traced_run
        gauges = metrics.gauges
        assert gauges["sim.messages"] == sim.stats.messages
        assert gauges["sim.slab_coverage"] == round(sim.slab_coverage, 6)
        assert "compile.cache.misses" in gauges
        assert "lowering.cache.size" in gauges
        assert metrics.histograms["sim.messages_per_event"].count > 0
        # sum of per-event message counts = total coalesced startups
        # attributed to placed events
        assert (
            metrics.histograms["sim.messages_per_event"].total
            <= sim.stats.messages
        )

    def test_tracing_does_not_disable_the_slab_tier(self, traced_run):
        _, _, sim = traced_run
        assert sim.slab_coverage > 0.8

    def test_collect_metrics_is_idempotent(self, traced_run):
        _, metrics, sim = traced_run
        before = json.dumps(metrics.as_dict(), sort_keys=True)
        sim.collect_metrics(metrics)
        after = json.dumps(metrics.as_dict(), sort_keys=True)
        assert before == after
