#!/usr/bin/env python
"""Show the generated SPMD node programs for the paper's benchmarks:
guards, shrunk loop bounds, hoisted (vectorized) communication, and
reduction combines — with and without message combining.

Run:  python examples/spmd_codegen.py
"""

from repro import CompilerOptions, compile_source, print_spmd
from repro.programs import dgefa_source, figure1_source, tomcatv_source


def show(title: str, source: str, options: CompilerOptions) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(print_spmd(compile_source(source, options)))


def main() -> None:
    show(
        "Figure 1 under the paper's algorithm",
        figure1_source(n=100, procs=4),
        CompilerOptions(),
    )
    show(
        "TOMCATV (n = 32) — vectorized halo exchange + shrunk j loops",
        tomcatv_source(n=32, niter=2, procs=4),
        CompilerOptions(combine_messages=True),
    )
    show(
        "DGEFA (n = 16) — cyclic columns, reduction-aligned pivot search",
        dgefa_source(n=16, procs=4),
        CompilerOptions(),
    )


if __name__ == "__main__":
    main()
