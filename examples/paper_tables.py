#!/usr/bin/env python
"""Regenerate every table of the paper's evaluation section
(Gupta, IPPS 1997, Section 5) with the analytic SP2-class cost model.

Run:  python examples/paper_tables.py [--fast]

``--fast`` uses reduced problem sizes for a quick look.
"""

import sys

from repro.report import table1_tomcatv, table2_dgefa, table3_appsp


def main() -> None:
    fast = "--fast" in sys.argv
    if fast:
        tables = [
            table1_tomcatv(n=129, niter=3, procs=(1, 4, 16)),
            table2_dgefa(n=300, procs=(4, 16)),
            table3_appsp(n=32, niter=2, procs=(4, 16)),
        ]
    else:
        tables = [table1_tomcatv(), table2_dgefa(), table3_appsp()]
    for table in tables:
        print(table.render())
        print()
    print(
        "Reminder: absolute seconds come from an analytic model of a\n"
        "1997 SP2-class machine; the reproduction targets the paper's\n"
        "orderings, ratios and scaling trends (see EXPERIMENTS.md)."
    )


if __name__ == "__main__":
    main()
