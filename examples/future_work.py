#!/usr/bin/env python
"""The paper's future-work section, implemented: automatic array
privatization and global message combining — plus the related-work
comparison against scalar expansion.

Run:  python examples/future_work.py
"""

from repro import CompilerOptions, PerfEstimator, compile_source
from repro.comm import combining_stats
from repro.core import compile_procedure
from repro.core.expansion import expand_scalars
from repro.perf import memory_report
from repro.programs import appsp_source, tomcatv_source


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def auto_privatization() -> None:
    banner("Future work 1: automatic array privatization (no NEW clause)")
    src = appsp_source(
        nx=32, ny=32, nz=32, niter=2, procs=16,
        distribution="2d", use_new_clause=False,
    )
    baseline = compile_source(src, CompilerOptions())
    inferred = compile_source(src, CompilerOptions(auto_privatize_arrays=True))
    t_base = PerfEstimator(baseline).estimate().total_time
    t_auto = PerfEstimator(inferred).estimate().total_time
    print(f"  without inference: C replicated, {t_base:8.3f} s (simulated)")
    for priv in inferred.array_result.privatizations:
        print(f"  inferred: {priv}")
    print(f"  with inference:                 {t_auto:8.3f} s (simulated)")


def message_combining() -> None:
    banner("Future work 2: global message combining across loop nests")
    src = tomcatv_source(n=513, niter=5, procs=16)
    plain = compile_source(src, CompilerOptions())
    combined = compile_source(src, CompilerOptions(combine_messages=True))
    stats = combining_stats(plain.comm, combined.comm)
    t_plain = PerfEstimator(plain).estimate()
    t_combined = PerfEstimator(combined).estimate()
    print(
        f"  transfers: {stats['events_before']} -> {stats['events_after']} "
        f"({stats['duplicates_removed']} duplicates removed, "
        f"{stats['messages_merged']} merged)"
    )
    print(f"  comm time: {t_plain.comm_time:.4f} s -> {t_combined.comm_time:.4f} s")


def expansion_comparison() -> None:
    banner("Related work: privatization vs scalar expansion [16]")
    src = tomcatv_source(n=257, niter=3, procs=16)
    priv = compile_source(src, CompilerOptions())
    result = expand_scalars(src, num_procs=16)
    expanded = compile_procedure(result.proc, CompilerOptions())
    t_priv = PerfEstimator(priv).estimate().total_time
    t_exp = PerfEstimator(expanded).estimate().total_time
    m_priv = memory_report(priv).total_bytes / 1024
    m_exp = memory_report(expanded).total_bytes / 1024
    print(f"  expanded {len(result.expanded)} scalars: "
          f"{', '.join(sorted(result.expanded))}")
    print(f"  privatization: {t_priv:7.4f} s, {m_priv:8.1f} KiB per processor")
    print(f"  expansion:     {t_exp:7.4f} s, {m_exp:8.1f} KiB per processor")
    print(
        "  -> the paper's framework delivers expansion's parallelism at a\n"
        "     fraction of its per-processor memory."
    )


def main() -> None:
    auto_privatization()
    message_combining()
    expansion_comparison()
    print()


if __name__ == "__main__":
    main()
