#!/usr/bin/env python
"""Walk through the paper's Figures 1–7, showing the compiler's decision
for each — the qualitative results of the paper as a narrated demo.

Run:  python examples/figure_walkthrough.py
"""

from repro import CompilerOptions, compile_source
from repro.core import align_level, build_context
from repro.ir import ArrayElemRef, IfStmt, ScalarRef, parse_and_build
from repro.programs import (
    figure1_source,
    figure2_source,
    figure4_source,
    figure5_source,
    figure6_source,
    figure7_source,
)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def show_scalars(compiled, names):
    for stmt in compiled.proc.assignments():
        if isinstance(stmt.lhs, ScalarRef) and stmt.lhs.symbol.name in names:
            mapping = compiled.scalar_mapping_of(stmt.stmt_id)
            print(f"  {stmt}\n      -> {mapping}")


def figure1() -> None:
    banner("Figure 1 - alignment choices for privatized scalars")
    compiled = compile_source(figure1_source(n=100, procs=4), CompilerOptions())
    show_scalars(compiled, {"M", "X", "Y", "Z"})
    print("  communication:")
    for event in compiled.comm.events:
        print(f"    {event}")
    print(
        "  (x follows its consumer D(i+1); y its producer A(i) because the\n"
        "   consumer choice would put A(i)'s transfer inside the loop; z and\n"
        "   the induction variable m are privatized without alignment.)"
    )


def figure2() -> None:
    banner("Figure 2 - availability requirements for subscripts")
    compiled = compile_source(figure2_source(n=64, procs=4), CompilerOptions())
    show_scalars(compiled, {"P", "Q"})
    print(
        "  H(i,p) is local to the owner of A(i), so only the executor needs p;\n"
        "  G(q,i) requires communication, so q must be available everywhere\n"
        "  (the dummy replicated consumer) and stays replicated."
    )


def figure4() -> None:
    banner("Figure 4 - AlignLevel of array references")
    ctx = build_context(parse_and_build(figure4_source(n=16, p0=2, p1=2)))
    for stmt in ctx.proc.assignments():
        if isinstance(stmt.lhs, ArrayElemRef):
            level = align_level(
                stmt.lhs, ctx.proc, ctx.ssa, ctx.array_mappings[stmt.lhs.symbol.name]
            )
            print(f"  AlignLevel({stmt.lhs}) = {level}")
    print("  (A(i,j,k) -> 2: the j loop; B(s,j,k) -> 3: s is only")
    print("   well-defined throughout the k loop.)")


def figure5() -> None:
    banner("Figure 5 - scalar involved in a reduction")
    compiled = compile_source(figure5_source(n=64, p0=2, p1=2), CompilerOptions())
    show_scalars(compiled, {"S"})
    for combine in compiled.comm.reduces:
        print(f"  {combine}")
    print(
        "  s is aligned with row A(i,:) and replicated along the reduction\n"
        "  (second) grid dimension: no broadcast of the row, one combine per i."
    )


def figure6() -> None:
    banner("Figure 6 - partial privatization")
    compiled = compile_source(figure6_source(n=12, p0=2, p1=2), CompilerOptions())
    for priv in compiled.array_result.privatizations:
        print(f"  {priv}")
    failed = compile_source(
        figure6_source(n=12, p0=2, p1=2),
        CompilerOptions(partial_privatization=False),
    )
    for name, loop, reason in failed.array_result.failures:
        print(f"  without partial privatization: {name} fails ({reason})")


def figure7() -> None:
    banner("Figure 7 - privatized execution of control flow")
    compiled = compile_source(figure7_source(n=64, procs=4), CompilerOptions())
    for stmt in compiled.proc.all_stmts():
        if isinstance(stmt, IfStmt):
            print(f"  {compiled.cf_decisions[stmt.stmt_id]}")
    print(f"  transfers needed: {len(compiled.comm.events)} "
          "(B(i) is co-located with every dependent statement)")


def main() -> None:
    figure1()
    figure2()
    figure4()
    figure5()
    figure6()
    figure7()
    print()


if __name__ == "__main__":
    main()
