#!/usr/bin/env python
"""Quickstart: compile a mini-HPF program with the paper's privatization
framework, inspect the mapping decisions, estimate SP2 performance, and
validate the parallel execution against sequential semantics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CompilerOptions,
    PerfEstimator,
    compile_source,
    parse_and_build,
    run_sequential,
    simulate,
)

# A small data-parallel kernel in the mini-HPF dialect: the scalar
# ``t`` must be privatized, and the compiler must decide who owns it.
SOURCE = """
PROGRAM SMOOTH
  PARAMETER (n = 64, niter = 4)
  REAL U(n), V(n)
  REAL t
!HPF$ PROCESSORS P(4)
!HPF$ ALIGN V(i) WITH U(i)
!HPF$ DISTRIBUTE (BLOCK) :: U
  DO it = 1, niter
    DO i = 2, n - 1
      t = U(i - 1) + 2.0 * U(i) + U(i + 1)
      V(i) = 0.25 * t
    END DO
    DO i = 2, n - 1
      U(i) = V(i)
    END DO
  END DO
END PROGRAM
"""


def main() -> None:
    # -- 1. compile with the paper's selected-alignment algorithm ------
    compiled = compile_source(SOURCE, CompilerOptions())
    print(compiled.report())
    print()

    # -- 2. estimate execution time on the SP2-class machine -----------
    for procs in (1, 2, 4, 8, 16):
        candidate = compile_source(SOURCE, CompilerOptions(num_procs=procs))
        estimate = PerfEstimator(candidate).estimate()
        print(f"P={procs:2d}: {estimate.summary()}")
    print()

    # -- 3. validate: SPMD simulation == sequential execution ----------
    rng = np.random.default_rng(1)
    inputs = {"U": rng.uniform(0.0, 1.0, 64)}
    sequential = run_sequential(parse_and_build(SOURCE), inputs)
    sim = simulate(compiled, inputs)
    match = np.allclose(sim.gather("U"), sequential.get_array("U"))
    print(f"simulated == sequential: {match}")
    print(
        f"simulated machine: {sim.stats.messages} messages, "
        f"{sim.stats.fetches} element fetches, "
        f"elapsed {sim.elapsed * 1e3:.3f} ms (virtual)"
    )
    assert match


if __name__ == "__main__":
    main()
