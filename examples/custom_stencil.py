#!/usr/bin/env python
"""Bring your own program: a Jacobi relaxation 2-D stencil
written in the mini-HPF dialect, compiled under each mapping strategy,
priced on the SP2-class model, and validated in the machine simulator.

This is the workflow a downstream user follows for their own kernels.

Run:  python examples/custom_stencil.py
"""

import numpy as np

from repro import (
    CompilerOptions,
    PerfEstimator,
    compile_source,
    parse_and_build,
    run_sequential,
    simulate,
)

SOURCE_TEMPLATE = """
PROGRAM JACOBI
  PARAMETER (n = {n}, niter = {niter})
  REAL U(n, n), V(n, n), F(n, n)
  REAL res, rmax
!HPF$ PROCESSORS P({procs})
!HPF$ ALIGN (i, j) WITH U(i, j) :: V, F
!HPF$ DISTRIBUTE (BLOCK, *) :: U
  DO it = 1, niter
    DO j = 2, n - 1
      DO i = 2, n - 1
        res = U(i - 1, j) + U(i + 1, j) + U(i, j - 1) + U(i, j + 1) &
          - 4.0 * U(i, j) - F(i, j)
        V(i, j) = U(i, j) + 0.25 * res
      END DO
    END DO
    rmax = 0.0
    DO j = 2, n - 1
      DO i = 2, n - 1
        rmax = MAX(rmax, ABS(V(i, j) - U(i, j)))
        U(i, j) = V(i, j)
      END DO
    END DO
  END DO
END PROGRAM
"""


def main() -> None:
    # -- performance at full size --------------------------------------
    print("Sweep over strategies and processor counts (n = 257):")
    print(f"{'P':>4} {'replication':>14} {'producer':>14} {'selected':>14}")
    for procs in (1, 4, 16):
        row = []
        for strategy in ("replication", "producer", "selected"):
            source = SOURCE_TEMPLATE.format(n=257, niter=4, procs=procs)
            compiled = compile_source(source, CompilerOptions(strategy=strategy))
            row.append(PerfEstimator(compiled).estimate().total_time)
        print(f"{procs:>4} " + " ".join(f"{t:>13.3f}s" for t in row))

    # -- what did the compiler decide? ----------------------------------
    source = SOURCE_TEMPLATE.format(n=257, niter=4, procs=16)
    compiled = compile_source(source, CompilerOptions())
    print()
    print("Selected-alignment decisions at P = 16:")
    print(compiled.report())

    # -- semantic validation at small size ------------------------------
    small = SOURCE_TEMPLATE.format(n=10, niter=2, procs=4)
    rng = np.random.default_rng(11)
    inputs = {
        "U": rng.uniform(0.0, 1.0, (10, 10)),
        "F": rng.uniform(0.0, 0.1, (10, 10)),
    }
    sequential = run_sequential(parse_and_build(small), inputs)
    print()
    for strategy in ("selected", "producer", "replication"):
        sim = simulate(
            compile_source(small, CompilerOptions(strategy=strategy)), inputs
        )
        ok = np.allclose(sim.gather("U"), sequential.get_array("U"))
        print(
            f"{strategy:12s}: results match = {ok}, "
            f"virtual time {sim.elapsed * 1e3:8.2f} ms, "
            f"{sim.stats.messages} messages"
        )
        assert ok


if __name__ == "__main__":
    main()
