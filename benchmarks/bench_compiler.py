"""Throughput of this reproduction itself: compilation speed and
simulator speed (not paper numbers — engineering health metrics).

``test_batch_compile_speedup`` additionally records the per-pass
pipeline timings and the batch-vs-sequential speedup into
``BENCH_compiler.json`` at the repository root, seeding the perf
trajectory across PRs.
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.core import (
    BatchJob,
    CompilerOptions,
    PipelineTimings,
    compile_many,
    compile_source,
)
from repro.machine import simulate
from repro.perf import PerfEstimator
from repro.programs import (
    appsp_source,
    dgefa_source,
    tomcatv_inputs,
    tomcatv_source,
)

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_compiler.json"


@pytest.mark.parametrize(
    "name,source",
    [
        ("tomcatv", tomcatv_source(n=513, niter=5, procs=16)),
        ("dgefa", dgefa_source(n=1000, procs=16)),
        ("appsp-2d", appsp_source(nx=64, ny=64, nz=64, niter=5, procs=16, distribution="2d")),
    ],
)
def test_compile_throughput(benchmark, name, source):
    compiled = benchmark(compile_source, source, CompilerOptions())
    assert compiled.comm is not None


def _ablation_jobs():
    """A realistic batch: every program of the paper's evaluation under
    its table's compiler variants (the ``repro tables`` workload)."""
    sources = [
        tomcatv_source(n=257, niter=3, procs=16),
        dgefa_source(n=500, procs=16),
        appsp_source(nx=32, ny=32, nz=32, niter=2, procs=16, distribution="2d"),
    ]
    variants = [
        CompilerOptions(),
        CompilerOptions(strategy="producer"),
        CompilerOptions(strategy="replication"),
        CompilerOptions(align_reductions=False),
        CompilerOptions(partial_privatization=False),
        CompilerOptions(message_vectorization=False),
        CompilerOptions(combine_messages=True),
    ]
    return [
        BatchJob(source=src, options=opt) for src in sources for opt in variants
    ]


def test_batch_compile_speedup(benchmark):
    """compile_many (front-end analysis cache + process-pool groups)
    versus the same jobs compiled sequentially from scratch; the
    ROADMAP's batching/caching health metric."""
    jobs = _ablation_jobs()

    started = time.perf_counter()
    sequential = [compile_source(j.source, j.options) for j in jobs]
    sequential_s = time.perf_counter() - started

    started = time.perf_counter()
    batched = benchmark.pedantic(compile_many, args=(jobs,), rounds=1, iterations=1)
    batch_s = time.perf_counter() - started

    assert len(batched) == len(sequential)
    speedup = sequential_s / batch_s
    sequential_timings = PipelineTimings()
    for compiled in sequential:
        sequential_timings.merge(compiled.timings)
    batch_timings = PipelineTimings()
    for compiled in batched:
        batch_timings.merge(compiled.timings)

    BENCH_JSON.write_text(
        json.dumps(
            {
                "benchmark": "batch_compile_speedup",
                "jobs": len(jobs),
                "sequential_s": round(sequential_s, 4),
                "batch_s": round(batch_s, 4),
                "speedup": round(speedup, 3),
                "sequential_passes": sequential_timings.as_dict(),
                "batch_passes": batch_timings.as_dict(),
            },
            indent=2,
        )
        + "\n"
    )
    benchmark.extra_info["sequential_s"] = round(sequential_s, 4)
    benchmark.extra_info["batch_s"] = round(batch_s, 4)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    assert speedup >= 1.5


def test_estimate_throughput(benchmark):
    compiled = compile_source(
        tomcatv_source(n=513, niter=5, procs=16), CompilerOptions()
    )
    estimate = benchmark(lambda: PerfEstimator(compiled).estimate())
    assert estimate.total_time > 0


def test_simulator_throughput(benchmark):
    compiled = compile_source(
        tomcatv_source(n=8, niter=1, procs=4), CompilerOptions()
    )
    inputs = tomcatv_inputs(8)

    def run():
        return simulate(compiled, inputs)

    sim = benchmark.pedantic(run, rounds=3, iterations=1)
    assert sim.stats.unexpected_fetches == 0
