"""Throughput of this reproduction itself: compilation speed and
simulator speed (not paper numbers — engineering health metrics)."""

import numpy as np
import pytest

from repro.core import CompilerOptions, compile_source
from repro.machine import simulate
from repro.perf import PerfEstimator
from repro.programs import (
    appsp_source,
    dgefa_source,
    tomcatv_inputs,
    tomcatv_source,
)


@pytest.mark.parametrize(
    "name,source",
    [
        ("tomcatv", tomcatv_source(n=513, niter=5, procs=16)),
        ("dgefa", dgefa_source(n=1000, procs=16)),
        ("appsp-2d", appsp_source(nx=64, ny=64, nz=64, niter=5, procs=16, distribution="2d")),
    ],
)
def test_compile_throughput(benchmark, name, source):
    compiled = benchmark(compile_source, source, CompilerOptions())
    assert compiled.comm is not None


def test_estimate_throughput(benchmark):
    compiled = compile_source(
        tomcatv_source(n=513, niter=5, procs=16), CompilerOptions()
    )
    estimate = benchmark(lambda: PerfEstimator(compiled).estimate())
    assert estimate.total_time > 0


def test_simulator_throughput(benchmark):
    compiled = compile_source(
        tomcatv_source(n=8, niter=1, procs=4), CompilerOptions()
    )
    inputs = tomcatv_inputs(8)

    def run():
        return simulate(compiled, inputs)

    sim = benchmark.pedantic(run, rounds=3, iterations=1)
    assert sim.stats.unexpected_fetches == 0
