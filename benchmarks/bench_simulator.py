"""Simulator fast-path benchmark: lowered closures + executor tables +
block-staged fetches versus the tree-walking interpreter.

Every run asserts **bit-for-bit identity** between the two paths —
virtual clocks, traffic statistics, and complete per-rank memory state
— before any timing is trusted; the identity asserts double as the
CI divergence gate (``BENCH_SIM_SMOKE=1`` shrinks the problem sizes
for the smoke job, full mode uses the paper's tomcatv problem size
n=513 and requires a >=3x speedup). Results land in
``BENCH_simulator.json`` at the repository root.
"""

import json
import os
import pathlib
import time

import pytest

from repro.core import CompilerOptions, compile_source
from repro.machine import simulate
from repro.programs import (
    appsp_inputs,
    appsp_source,
    dgefa_inputs,
    dgefa_source,
    tomcatv_inputs,
    tomcatv_source,
)

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_simulator.json"
SMOKE = os.environ.get("BENCH_SIM_SMOKE") == "1"

#: accumulated across the parametrized timing tests, rewritten on each
#: update so an -x abort still leaves a consistent file
_RESULTS: dict[str, dict] = {}

if SMOKE:
    _JOBS = [
        ("tomcatv", tomcatv_source(n=33, niter=1, procs=8), tomcatv_inputs(33), None),
        ("dgefa", dgefa_source(n=24, procs=4), dgefa_inputs(24), None),
        (
            "appsp-2d",
            appsp_source(nx=8, ny=8, nz=8, niter=1, procs=4, distribution="2d"),
            appsp_inputs(8, 8, 8),
            None,
        ),
    ]
else:
    _JOBS = [
        # the paper's tomcatv problem size; the ISSUE's >=3x target
        ("tomcatv", tomcatv_source(n=513, niter=1, procs=16), tomcatv_inputs(513), 3.0),
        ("dgefa", dgefa_source(n=120, procs=16), dgefa_inputs(120), None),
        (
            "appsp-2d",
            appsp_source(nx=16, ny=16, nz=16, niter=1, procs=16, distribution="2d"),
            appsp_inputs(16, 16, 16),
            None,
        ),
    ]


def assert_identical(fast, slow):
    """The whole observable machine state, bit for bit."""
    assert fast.clocks.snapshot() == slow.clocks.snapshot()
    assert fast.stats.as_dict() == slow.stats.as_dict()
    for fm, sm in zip(fast.memories, slow.memories):
        for name in sm.arrays:
            assert fm.arrays[name].tobytes() == sm.arrays[name].tobytes(), name
            assert fm.valid[name].tobytes() == sm.valid[name].tobytes(), name
        assert fm.scalars == sm.scalars
        assert fm.scalar_valid == sm.scalar_valid


def _write_json():
    BENCH_JSON.write_text(
        json.dumps(
            {
                "benchmark": "simulator_fast_path",
                "mode": "smoke" if SMOKE else "full",
                "programs": _RESULTS,
            },
            indent=2,
        )
        + "\n"
    )


@pytest.mark.parametrize(
    "name,source,inputs,min_speedup", _JOBS, ids=[j[0] for j in _JOBS]
)
def test_fast_path_speedup(name, source, inputs, min_speedup):
    compiled = compile_source(source, CompilerOptions())

    started = time.perf_counter()
    slow = simulate(compiled, inputs, fast_path=False)
    interpreted_s = time.perf_counter() - started

    started = time.perf_counter()
    fast = simulate(compiled, inputs, fast_path=True)
    lowered_s = time.perf_counter() - started

    assert_identical(fast, slow)
    for array in inputs:
        assert fast.gather(array).tobytes() == slow.gather(array).tobytes()

    speedup = interpreted_s / lowered_s
    _RESULTS[name] = {
        "interpreted_s": round(interpreted_s, 4),
        "lowered_s": round(lowered_s, 4),
        "speedup": round(speedup, 3),
        "paper_size": min_speedup is not None,
    }
    _write_json()
    if min_speedup is not None:
        assert speedup >= min_speedup, (
            f"{name}: fast path only {speedup:.2f}x (need >={min_speedup}x)"
        )


def _variants():
    return [
        ("selected", CompilerOptions()),
        ("producer", CompilerOptions(strategy="producer")),
        ("replication", CompilerOptions(strategy="replication")),
        ("noalign", CompilerOptions(strategy="noalign")),
        ("no-align-reductions", CompilerOptions(align_reductions=False)),
        ("no-partial-priv", CompilerOptions(partial_privatization=False)),
        ("no-msg-vec", CompilerOptions(message_vectorization=False)),
        ("combine", CompilerOptions(combine_messages=True)),
    ]


_SMALL = [
    ("tomcatv", tomcatv_source(n=8, niter=2, procs=4), tomcatv_inputs(8)),
    ("dgefa", dgefa_source(n=10, procs=4), dgefa_inputs(10)),
    (
        "appsp-2d",
        appsp_source(nx=6, ny=6, nz=6, niter=1, procs=4, distribution="2d"),
        appsp_inputs(6, 6, 6),
    ),
]


@pytest.mark.parametrize("vname,options", _variants(), ids=[v[0] for v in _variants()])
@pytest.mark.parametrize(
    "pname,source,inputs", _SMALL, ids=[p[0] for p in _SMALL]
)
def test_identity_under_every_ablation(pname, source, inputs, vname, options):
    """Bit-for-bit parity on all three paper programs under every
    mapping-strategy and optimization ablation."""
    compiled = compile_source(source, options)
    fast = simulate(compiled, inputs, fast_path=True)
    slow = simulate(compiled, inputs, fast_path=False)
    assert_identical(fast, slow)
