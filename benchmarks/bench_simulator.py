"""Simulator engine benchmark: tier-3 slab kernels vs tier-2 lowered
closures vs the tree-walking interpreter, plus the cost-driven
``tier="auto"`` mode that consults the compiled TierPlan per nest.

Every run asserts **bit-for-bit identity** across all four paths —
virtual clocks, traffic statistics, and complete per-rank memory state
— before any timing is trusted; the identity asserts double as the
CI divergence gate (``BENCH_SIM_SMOKE=1`` shrinks the problem sizes
for the smoke job; full mode uses the paper's problem sizes).  All
three paper programs must keep >=80% of their loop instances on the
slab path and beat the lowered engine in both the blanket-slab and
auto tiers at full size; the smoke job gates coverage on all three
and allows 10% timing noise on the auto ratio.  Results — including
the per-nest tier decisions — land in ``BENCH_simulator.json`` at the
repository root.
"""

import json
import os
import pathlib
import time

import pytest

from repro.core import CompilerOptions, compile_source
from repro.machine import simulate
from repro.obs import Metrics, Tracer, validate_chrome_trace
from repro.programs import (
    appsp_inputs,
    appsp_source,
    dgefa_inputs,
    dgefa_source,
    tomcatv_inputs,
    tomcatv_source,
)

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_simulator.json"
SMOKE = os.environ.get("BENCH_SIM_SMOKE") == "1"

#: accumulated across the parametrized timing tests, rewritten on each
#: update so an -x abort still leaves a consistent file
_RESULTS: dict[str, dict] = {}

#: per-program floors on the recorded metrics; identity is always
#: asserted, these additionally gate the speedups and slab coverage
if SMOKE:
    # smoke sizes run in milliseconds: the auto-vs-lowered ratio only
    # guards against a gross regression, real floors live in full mode
    _SMOKE_GATES = {"slab_coverage": 0.8, "speedup_auto_vs_lowered": 0.8}
    _JOBS = [
        (
            "tomcatv",
            tomcatv_source(n=33, niter=1, procs=8),
            tomcatv_inputs(33),
            dict(_SMOKE_GATES),
        ),
        ("dgefa", dgefa_source(n=40, procs=4), dgefa_inputs(40),
         dict(_SMOKE_GATES)),
        (
            "appsp-2d",
            appsp_source(nx=8, ny=8, nz=8, niter=1, procs=4, distribution="2d"),
            appsp_inputs(8, 8, 8),
            dict(_SMOKE_GATES),
        ),
    ]
else:
    _FULL_GATES = {
        "slab_coverage": 0.8,
        "speedup_vs_lowered": 1.0,
        "speedup_auto_vs_lowered": 1.0,
    }
    _JOBS = [
        # the paper's tomcatv problem size; the ISSUE's slab targets
        (
            "tomcatv",
            tomcatv_source(n=513, niter=1, procs=16),
            tomcatv_inputs(513),
            {
                "speedup": 3.0,
                "speedup_slab": 10.0,
                "speedup_vs_lowered": 2.5,
                **_FULL_GATES,
            },
        ),
        ("dgefa", dgefa_source(n=120, procs=16), dgefa_inputs(120),
         dict(_FULL_GATES)),
        (
            "appsp-2d",
            appsp_source(nx=16, ny=16, nz=16, niter=1, procs=16, distribution="2d"),
            appsp_inputs(16, 16, 16),
            dict(_FULL_GATES),
        ),
    ]


def assert_identical(fast, slow):
    """The whole observable machine state, bit for bit."""
    assert fast.clocks.snapshot() == slow.clocks.snapshot()
    assert fast.stats.as_dict() == slow.stats.as_dict()
    for fm, sm in zip(fast.memories, slow.memories):
        for name in sm.arrays:
            assert fm.arrays[name].tobytes() == sm.arrays[name].tobytes(), name
            assert fm.valid[name].tobytes() == sm.valid[name].tobytes(), name
        assert fm.scalars == sm.scalars
        assert fm.scalar_valid == sm.scalar_valid


def _write_json():
    BENCH_JSON.write_text(
        json.dumps(
            {
                "benchmark": "simulator_fast_path",
                "mode": "smoke" if SMOKE else "full",
                "programs": _RESULTS,
            },
            indent=2,
        )
        + "\n"
    )


@pytest.mark.parametrize(
    "name,source,inputs,gates", _JOBS, ids=[j[0] for j in _JOBS]
)
def test_engine_speedups(name, source, inputs, gates):
    compiled = compile_source(source, CompilerOptions())

    started = time.perf_counter()
    slow = simulate(compiled, inputs, fast_path=False)
    interpreted_s = time.perf_counter() - started

    started = time.perf_counter()
    fast = simulate(compiled, inputs, fast_path=True, slab_path=False)
    lowered_s = time.perf_counter() - started

    started = time.perf_counter()
    slab = simulate(compiled, inputs, fast_path=True, slab_path=True)
    slab_s = time.perf_counter() - started

    started = time.perf_counter()
    auto = simulate(compiled, inputs, tier="auto")
    auto_s = time.perf_counter() - started

    # Disabled-tracer overhead: the same slab run with an explicit
    # disabled Tracer attached must cost what the default (NULL_TRACER)
    # run costs — the obs hooks are one attribute load and one branch.
    started = time.perf_counter()
    traced = simulate(
        compiled, inputs, fast_path=True, slab_path=True,
        tracer=Tracer(enabled=False),
    )
    slab_traced_s = time.perf_counter() - started

    assert_identical(fast, slow)
    assert_identical(slab, slow)
    assert_identical(auto, slow)
    assert_identical(traced, slow)
    for array in inputs:
        assert fast.gather(array).tobytes() == slow.gather(array).tobytes()
        assert slab.gather(array).tobytes() == slow.gather(array).tobytes()
        assert auto.gather(array).tobytes() == slow.gather(array).tobytes()

    measured = {
        "speedup": interpreted_s / lowered_s,
        "speedup_slab": interpreted_s / slab_s,
        "speedup_vs_lowered": lowered_s / slab_s,
        "speedup_auto_vs_lowered": lowered_s / auto_s,
        "slab_coverage": slab.slab_coverage,
        "slab_coverage_auto": auto.slab_coverage,
    }
    tracer_overhead = slab_traced_s / slab_s
    tierplan = compiled.tierplan
    _RESULTS[name] = {
        "interpreted_s": round(interpreted_s, 4),
        "lowered_s": round(lowered_s, 4),
        "slab_s": round(slab_s, 4),
        "auto_s": round(auto_s, 4),
        **{k: round(v, 3) for k, v in measured.items()},
        "tracer_overhead": round(tracer_overhead, 4),
        # coverage/traffic columns (identical across tiers by the
        # asserts above)
        "messages": slab.stats.messages,
        "elements": slab.stats.elements,
        "fetches": slab.stats.fetches,
        # per-nest decision breakdown: what the TierPlan predicted and
        # what the auto run actually chose, on stable loop ordinals
        "tierplan": tierplan.summary() if tierplan is not None else None,
        "tier_decisions": auto.canonical_stats()["tiers"],
        "paper_size": not SMOKE,
    }
    _write_json()
    for metric, floor in gates.items():
        assert measured[metric] >= floor, (
            f"{name}: {metric} only {measured[metric]:.3f} (need >={floor})"
        )
    if not SMOKE and name == "tomcatv":
        # the ISSUE's acceptance bound; smoke sizes are milliseconds and
        # too noisy for a 2% ratio, so only the paper size asserts
        assert tracer_overhead <= 1.02, (
            f"{name}: disabled-tracer slab run {tracer_overhead:.4f}x "
            "the default run (need <=1.02)"
        )


def _variants():
    return [
        ("selected", CompilerOptions()),
        ("producer", CompilerOptions(strategy="producer")),
        ("replication", CompilerOptions(strategy="replication")),
        ("noalign", CompilerOptions(strategy="noalign")),
        ("no-align-reductions", CompilerOptions(align_reductions=False)),
        ("no-partial-priv", CompilerOptions(partial_privatization=False)),
        ("no-msg-vec", CompilerOptions(message_vectorization=False)),
        ("combine", CompilerOptions(combine_messages=True)),
    ]


_SMALL = [
    ("tomcatv", tomcatv_source(n=8, niter=2, procs=4), tomcatv_inputs(8)),
    ("dgefa", dgefa_source(n=10, procs=4), dgefa_inputs(10)),
    (
        "appsp-2d",
        appsp_source(nx=6, ny=6, nz=6, niter=1, procs=4, distribution="2d"),
        appsp_inputs(6, 6, 6),
    ),
]


def test_trace_and_metrics_artifacts(output_dir):
    """An enabled run emits a valid Chrome trace and a metrics JSON;
    both land in ``benchmarks/output/`` (CI uploads them), and tracing
    does not perturb the machine state."""
    from repro.core.passes import PassManager

    source = tomcatv_source(n=33, niter=1, procs=8)
    inputs = tomcatv_inputs(33)
    tracer = Tracer()
    metrics = Metrics()
    manager = PassManager(tracer=tracer)
    compiled = compile_source(source, CompilerOptions(), manager=manager)
    traced = simulate(compiled, inputs, tracer=tracer, metrics=metrics)
    manager.collect_metrics(metrics)

    plain = simulate(compiled, inputs)
    assert_identical(traced, plain)

    assert len(tracer) > 0
    chrome = tracer.to_chrome()
    assert validate_chrome_trace(chrome) == []
    names = {e["name"] for e in chrome["traceEvents"]}
    assert any(n.startswith("pass:") for n in names)
    assert any(n.startswith("simulate[") for n in names)

    trace_path = output_dir / "trace_tomcatv.json"
    tracer.write(str(trace_path))
    assert validate_chrome_trace(json.loads(trace_path.read_text())) == []
    metrics_path = output_dir / "metrics_tomcatv.json"
    metrics.write(str(metrics_path))
    loaded = json.loads(metrics_path.read_text())
    assert loaded["gauges"]["sim.messages"] == plain.stats.messages
    assert loaded["gauges"]["sim.slab_coverage"] >= 0.8


@pytest.mark.parametrize("vname,options", _variants(), ids=[v[0] for v in _variants()])
@pytest.mark.parametrize(
    "pname,source,inputs", _SMALL, ids=[p[0] for p in _SMALL]
)
def test_identity_under_every_ablation(pname, source, inputs, vname, options):
    """Bit-for-bit parity on all three paper programs under every
    mapping-strategy and optimization ablation, across all three
    execution engines."""
    compiled = compile_source(source, options)
    slab = simulate(compiled, inputs, fast_path=True, slab_path=True)
    fast = simulate(compiled, inputs, fast_path=True, slab_path=False)
    slow = simulate(compiled, inputs, fast_path=False)
    assert_identical(fast, slow)
    assert_identical(slab, slow)


# -- the fuzz corpus as extra identity gates --------------------------------

_CORPUS = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "tests" / "corpus")
    .glob("*.hpf")
)


@pytest.mark.parametrize("path", _CORPUS, ids=[p.stem for p in _CORPUS])
def test_identity_on_fuzz_corpus(path):
    """The checked-in fuzz survivors (feature-diverse generated
    programs plus every minimized divergence class a campaign has
    found) hold bit-for-bit identity across all four engine modes —
    the same gate the paper programs get, on shapes they never hit."""
    from repro.fuzz.harness import make_inputs

    source = path.read_text()
    for procs in (3, 4):
        compiled = compile_source(source, CompilerOptions(num_procs=procs))
        inputs = make_inputs(source, 0)
        slow = simulate(compiled, dict(inputs), fast_path=False)
        fast = simulate(compiled, dict(inputs), fast_path=True, slab_path=False)
        slab = simulate(compiled, dict(inputs), fast_path=True, slab_path=True)
        auto = simulate(compiled, dict(inputs), tier="auto")
        assert_identical(fast, slow)
        assert_identical(slab, slow)
        assert_identical(auto, slow)
