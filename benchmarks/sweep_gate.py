#!/usr/bin/env python
"""CI sweep + compile-cache gate.

Runs the small paper-table grid (TOMCATV and DGEFA at reduced sizes,
across processor counts and scalar-mapping strategies) through
``repro.sweep.run_sweep`` on a two-worker pool, twice against each of
two fresh persistent cache roots:

* **timing grid** (compile mode): the cold pass compiles every point
  through the full pass pipeline and persists it; the warm pass must
  serve every point from the disk cache and finish at least
  ``--min-speedup`` (default 2.0) times faster.  Compile mode isolates
  what the cache can actually accelerate — simulation time is paid
  identically cold and warm and would only dilute the signal.
* **stats grid** (simulate mode): cold-vs-warm per-point
  ``canonical_stats`` payloads are byte-compared — a revived pickle
  must drive the simulator to exactly the clocks and traffic a fresh
  compile does, or the cache is lying.

A third, **batched grid** (simulate mode, 3 processor counts × 7
machine-parameter variants = 21 points on TOMCATV) gates the batched
sweep evaluator: run cold through the pool path and cold through
``mode="batched"``, the batched leg must produce byte-identical
``canonical_stats`` and finish at least ``--min-batched-speedup``
(default 5.0) times faster — machine-parameter lanes share one
lane-vector simulation and the procs axis shares compiles, so ~21
full jobs collapse to ~3 compiles + 3 simulations.

With ``--inject-crash``, the first timing-grid point's pool worker is
killed mid-flight (``os._exit``) on its first attempt — the supervisor
must retry it without losing the point, proving the engine's recovery
path in CI rather than only in unit tests.

Writes a JSON artifact (``--stats-out``) with the timings, the
speedup, and the disk caches' footprint + per-pass hit counts.

Usage::

    python benchmarks/sweep_gate.py [--workers 2] [--min-speedup 2.0]
                                    [--cache-dir DIR] [--stats-out F]
                                    [--inject-crash] [--verbose]

Exits 0 when every gate holds, 1 otherwise.
"""

import argparse
import dataclasses
import json
import pathlib
import shutil
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"
sys.path.insert(0, str(SRC_DIR))

from repro.core.diskcache import CompileCache  # noqa: E402
from repro.model import SP2  # noqa: E402
from repro.programs import dgefa_source, tomcatv_source  # noqa: E402
from repro.sweep import SweepSpec, run_sweep  # noqa: E402

#: seven machine-parameter ablations around the SP2 baseline — the
#: lane axis of the batched grid (3 procs x 7 machines = 21 points)
MACHINE_VARIANTS = (
    SP2,
    dataclasses.replace(SP2, name="fast-net", alpha=5e-6, beta=1.0 / 300e6),
    dataclasses.replace(SP2, name="slow-net", alpha=200e-6, beta=1.0 / 5e6),
    dataclasses.replace(SP2, name="fast-cpu", flop_time=1.0 / 500e6),
    dataclasses.replace(SP2, name="slow-cpu", flop_time=1.0 / 5e6),
    dataclasses.replace(SP2, name="wan", alpha=5e-3, beta=1.0 / 1e6),
    dataclasses.replace(SP2, name="zero-overhead", stmt_overhead=0.0),
)


def build_jobs(procs, strategies, mode, inject_crash=False):
    spec = SweepSpec(
        programs={
            "tomcatv": lambda p: tomcatv_source(n=8, niter=1, procs=p),
            "dgefa": lambda p: dgefa_source(n=8, procs=p),
        },
        procs=tuple(procs),
        axes={"strategy": tuple(strategies)},
        mode=mode,
    )
    jobs = spec.jobs()
    if inject_crash:
        jobs[0] = dataclasses.replace(jobs[0], inject={"crash_attempts": 1})
    return jobs


def run_pass(jobs, workers, cache_root):
    cache = CompileCache(cache_root)
    started = time.perf_counter()
    results = run_sweep(
        jobs, workers=workers, cache=cache, timeout=120, retries=2,
        backoff=0.05,
    )
    elapsed = time.perf_counter() - started
    return results, elapsed, cache


def check_pass_pair(name, jobs, cold, warm, failures):
    """Shared cold/warm invariants: nothing lost, nothing failed, cold
    all-miss, warm all-hit."""
    for tag, results in (("cold", cold), ("warm", warm)):
        if len(results) != len(jobs):
            failures.append(f"{name} {tag}: grid points were lost")
        bad = [r for r in results if not r.ok]
        if bad:
            failures.append(f"{name} {tag}: {len(bad)} failed grid "
                            f"point(s), first: {bad[0].error}")
    cold_hits = [r.label for r in cold if r.cache_hit]
    if cold_hits:
        failures.append(f"{name}: cold pass had cache hits: {cold_hits[:3]}")
    warm_misses = [r.label for r in warm if not r.cache_hit]
    if warm_misses:
        failures.append(f"{name}: warm pass had cache misses: "
                        f"{warm_misses[:3]}")


def stats_payload(results) -> bytes:
    """The deterministic record the stats grid is byte-compared on."""
    return json.dumps(
        [{"label": r.label, "stats": r.canonical_stats} for r in results],
        sort_keys=True,
    ).encode("utf-8")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--procs", type=int, nargs="+", default=[1, 2, 4, 8])
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--min-batched-speedup", type=float, default=5.0)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--stats-out", default=None)
    parser.add_argument("--inject-crash", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    base_root = pathlib.Path(
        args.cache_dir or tempfile.mkdtemp(prefix="repro-sweep-gate-")
    )
    if base_root.exists():
        shutil.rmtree(base_root)
    failures = []

    # -- timing grid: compile mode, warm must be >= min-speedup faster --
    timing_jobs = build_jobs(
        args.procs, ("selected", "consumer", "producer"), "compile",
        inject_crash=args.inject_crash,
    )
    print(f"timing grid: {len(timing_jobs)} compile-mode points, "
          f"{args.workers} workers")
    cold, t_cold, _ = run_pass(timing_jobs, args.workers, base_root / "timing")
    warm, t_warm, timing_cache = run_pass(
        timing_jobs, args.workers, base_root / "timing"
    )
    check_pass_pair("timing", timing_jobs, cold, warm, failures)

    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    print(f"cold {t_cold:.3f}s, warm {t_warm:.3f}s -> speedup "
          f"{speedup:.2f}x (gate: >= {args.min_speedup:.1f}x)")
    if speedup < args.min_speedup:
        failures.append(f"warm sweep only {speedup:.2f}x faster "
                        f"(need >= {args.min_speedup:.1f}x)")

    if args.inject_crash and not failures:
        crashed = cold[0]
        if crashed.attempts < 2:
            failures.append("injected crash was not retried "
                            f"(attempts={crashed.attempts})")
        else:
            print(f"injected crash recovered: {crashed.label} ok after "
                  f"{crashed.attempts} attempts on {crashed.worker}")

    # -- stats grid: simulate mode, canonical stats byte-identical -----
    stats_jobs = build_jobs((2, 4), ("selected", "consumer"), "simulate")
    print(f"stats grid: {len(stats_jobs)} simulate-mode points")
    s_cold, _, _ = run_pass(stats_jobs, args.workers, base_root / "stats")
    s_warm, _, stats_cache = run_pass(
        stats_jobs, args.workers, base_root / "stats"
    )
    check_pass_pair("stats", stats_jobs, s_cold, s_warm, failures)
    if stats_payload(s_cold) != stats_payload(s_warm):
        failures.append("canonical stats differ between cold and warm passes")
    else:
        print(f"canonical stats byte-identical across "
              f"{len(stats_jobs)} points")

    # -- batched grid: machine-parameter lanes, one sim per batch ------
    # 3 procs x 7 machine variants; the batched evaluator should pay
    # ~3 compiles + 3 lane-vector simulations where the pool path pays
    # 21 full compile+simulate jobs.  Both legs run cold (fresh cache
    # roots), and their measurement payloads must be byte-identical.
    batched_spec = SweepSpec(
        programs={"tomcatv": lambda p: tomcatv_source(n=24, niter=1, procs=p)},
        procs=(2, 4, 8),
        axes={"machine": MACHINE_VARIANTS},
        mode="simulate",
    )
    batched_jobs = batched_spec.jobs()
    print(f"batched grid: {len(batched_jobs)} simulate-mode points "
          f"({len(batched_spec.procs)} procs x {len(MACHINE_VARIANTS)} "
          f"machines)")
    pool_cache = CompileCache(base_root / "batched-pool")
    started = time.perf_counter()
    b_pool = run_sweep(
        batched_jobs, workers=args.workers, cache=pool_cache,
        timeout=120, retries=2, backoff=0.05, mode="pool",
    )
    t_pool = time.perf_counter() - started
    batched_cache = CompileCache(base_root / "batched")
    started = time.perf_counter()
    b_fast = run_sweep(
        batched_jobs, workers=args.workers, cache=batched_cache,
        timeout=120, retries=2, backoff=0.05, mode="batched",
    )
    t_batched = time.perf_counter() - started

    for tag, results in (("pool", b_pool), ("batched", b_fast)):
        if len(results) != len(batched_jobs):
            failures.append(f"batched grid {tag}: grid points were lost")
        bad = [r for r in results if not r.ok]
        if bad:
            failures.append(f"batched grid {tag}: {len(bad)} failed "
                            f"point(s), first: {bad[0].error}")
    off_path = [r.label for r in b_fast if r.worker != "batched"]
    if off_path:
        failures.append(f"batched grid: points fell off the fast path: "
                        f"{off_path[:3]}")
    if stats_payload(b_pool) != stats_payload(b_fast):
        failures.append("batched grid: canonical stats differ from the "
                        "pool path")
    else:
        print(f"batched canonical stats byte-identical across "
              f"{len(batched_jobs)} points")
    batched_speedup = t_pool / t_batched if t_batched > 0 else float("inf")
    print(f"pool {t_pool:.3f}s, batched {t_batched:.3f}s -> speedup "
          f"{batched_speedup:.2f}x (gate: >= "
          f"{args.min_batched_speedup:.1f}x)")
    if batched_speedup < args.min_batched_speedup:
        failures.append(
            f"batched sweep only {batched_speedup:.2f}x faster than the "
            f"pool path (need >= {args.min_batched_speedup:.1f}x)"
        )

    if args.verbose:
        for r in warm + s_warm + b_fast:
            print(f"  {r.label:45s} {r.mode:8s} hit={r.cache_hit} "
                  f"worker={r.worker} {r.duration_s * 1e3:7.1f} ms")

    artifact = {
        "timing_jobs": len(timing_jobs),
        "stats_jobs": len(stats_jobs),
        "workers": args.workers,
        "cold_seconds": t_cold,
        "warm_seconds": t_warm,
        "speedup": t_cold / t_warm if t_warm > 0 else None,
        "min_speedup": args.min_speedup,
        "inject_crash": args.inject_crash,
        # hit counts come from the result records: pool workers hold
        # their own CompileCache handles, so parent-side session
        # counters would read zero under a multi-worker sweep
        "timing_warm_hits": sum(r.cache_hit for r in warm),
        "stats_warm_hits": sum(r.cache_hit for r in s_warm),
        "timing_cache": timing_cache.stats_dict(),
        "stats_cache": stats_cache.stats_dict(),
        "batched_jobs": len(batched_jobs),
        "batched_machine_variants": len(MACHINE_VARIANTS),
        "batched_pool_seconds": t_pool,
        "batched_seconds": t_batched,
        "batched_speedup": batched_speedup,
        "min_batched_speedup": args.min_batched_speedup,
        "batched_compile_dedups": sum(r.compile_dedup for r in b_fast),
        "failures": failures,
    }
    if args.stats_out:
        out = pathlib.Path(args.stats_out)
        out.write_text(json.dumps(artifact, indent=1, sort_keys=True) + "\n")
        print(f"wrote cache stats artifact to {out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("sweep gate OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
