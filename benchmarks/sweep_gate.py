#!/usr/bin/env python
"""CI sweep + compile-cache gate.

Runs the small paper-table grid (TOMCATV and DGEFA at reduced sizes,
across processor counts and scalar-mapping strategies) through
``repro.sweep.run_sweep`` on a two-worker pool, twice against each of
two fresh persistent cache roots:

* **timing grid** (compile mode): the cold pass compiles every point
  through the full pass pipeline and persists it; the warm pass must
  serve every point from the disk cache and finish at least
  ``--min-speedup`` (default 2.0) times faster.  Compile mode isolates
  what the cache can actually accelerate — simulation time is paid
  identically cold and warm and would only dilute the signal.
* **stats grid** (simulate mode): cold-vs-warm per-point
  ``canonical_stats`` payloads are byte-compared — a revived pickle
  must drive the simulator to exactly the clocks and traffic a fresh
  compile does, or the cache is lying.

A third, **batched grid** (simulate mode, 3 processor counts × 7
machine-parameter variants = 21 points on TOMCATV) gates the batched
sweep evaluator: run cold through the pool path and cold through
``mode="batched"``, the batched leg must produce byte-identical
``canonical_stats`` and finish at least ``--min-batched-speedup``
(default 5.0) times faster — machine-parameter lanes share one
lane-vector simulation and the procs axis shares compiles, so ~21
full jobs collapse to ~3 compiles + 3 simulations.

A fourth, **procs grid** (simulate mode, 7 processor counts × 5
machines over TOMCATV + DGEFA + APPSP = 105 points) gates the procs
axis as a lane dimension: every batched point must report
``procs_lanes == 7`` (all seven processor counts fused as sub-groups
of its batch), produce ``canonical_stats`` byte-identical to the pool
path, and the batched leg must finish at least ``--min-procs-speedup``
(default 3.0) times faster.  A companion **compile-once gate** sweeps
a pinned-PROCESSORS TOMCATV source over ``procs=(None, 4)`` — the
directive fixes the grid either way, so the second lane must reuse
the first lane's compile (``compile_dedup``) and land on byte-identical
stats: a P-independent program compiles once for the whole procs
vector.

With ``--inject-crash``, the first timing-grid point's pool worker is
killed mid-flight (``os._exit``) on its first attempt — the supervisor
must retry it without losing the point, proving the engine's recovery
path in CI rather than only in unit tests.

Writes a JSON artifact (``--stats-out``) with the timings, the
speedup, and the disk caches' footprint + per-pass hit counts.

Usage::

    python benchmarks/sweep_gate.py [--workers 2] [--min-speedup 2.0]
                                    [--min-batched-speedup 5.0]
                                    [--min-procs-speedup 3.0]
                                    [--cache-dir DIR] [--stats-out F]
                                    [--inject-crash] [--verbose]

Exits 0 when every gate holds, 1 otherwise.
"""

import argparse
import dataclasses
import json
import pathlib
import shutil
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"
sys.path.insert(0, str(SRC_DIR))

from repro.core.diskcache import CompileCache  # noqa: E402
from repro.core.driver import CompilerOptions  # noqa: E402
from repro.model import SP2  # noqa: E402
from repro.programs import (  # noqa: E402
    appsp_source,
    dgefa_source,
    tomcatv_source,
)
from repro.records import comparable  # noqa: E402
from repro.sweep import SweepJob, SweepSpec, run_sweep  # noqa: E402

#: seven machine-parameter ablations around the SP2 baseline — the
#: lane axis of the batched grid (3 procs x 7 machines = 21 points)
MACHINE_VARIANTS = (
    SP2,
    dataclasses.replace(SP2, name="fast-net", alpha=5e-6, beta=1.0 / 300e6),
    dataclasses.replace(SP2, name="slow-net", alpha=200e-6, beta=1.0 / 5e6),
    dataclasses.replace(SP2, name="fast-cpu", flop_time=1.0 / 500e6),
    dataclasses.replace(SP2, name="slow-cpu", flop_time=1.0 / 5e6),
    dataclasses.replace(SP2, name="wan", alpha=5e-3, beta=1.0 / 1e6),
    dataclasses.replace(SP2, name="zero-overhead", stmt_overhead=0.0),
)


def build_jobs(procs, strategies, mode, inject_crash=False):
    spec = SweepSpec(
        programs={
            "tomcatv": lambda p: tomcatv_source(n=8, niter=1, procs=p),
            "dgefa": lambda p: dgefa_source(n=8, procs=p),
        },
        procs=tuple(procs),
        axes={"strategy": tuple(strategies)},
        mode=mode,
    )
    jobs = spec.jobs()
    if inject_crash:
        jobs[0] = dataclasses.replace(jobs[0], inject={"crash_attempts": 1})
    return jobs


def run_pass(jobs, workers, cache_root):
    cache = CompileCache(cache_root)
    started = time.perf_counter()
    results = run_sweep(
        jobs, workers=workers, cache=cache, timeout=120, retries=2,
        backoff=0.05,
    )
    elapsed = time.perf_counter() - started
    return results, elapsed, cache


def check_pass_pair(name, jobs, cold, warm, failures):
    """Shared cold/warm invariants: nothing lost, nothing failed, cold
    all-miss, warm all-hit."""
    for tag, results in (("cold", cold), ("warm", warm)):
        if len(results) != len(jobs):
            failures.append(f"{name} {tag}: grid points were lost")
        bad = [r for r in results if not r.ok]
        if bad:
            failures.append(f"{name} {tag}: {len(bad)} failed grid "
                            f"point(s), first: {bad[0].error}")
    cold_hits = [r.label for r in cold if r.cache_hit]
    if cold_hits:
        failures.append(f"{name}: cold pass had cache hits: {cold_hits[:3]}")
    warm_misses = [r.label for r in warm if not r.cache_hit]
    if warm_misses:
        failures.append(f"{name}: warm pass had cache misses: "
                        f"{warm_misses[:3]}")


def stats_payload(results) -> bytes:
    """The deterministic record the stats grid is byte-compared on:
    the shared repro.records schema with volatile provenance fields
    (worker, timings, cache hits) stripped."""
    return json.dumps(
        [comparable(r.as_dict()) for r in results], sort_keys=True
    ).encode("utf-8")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--procs", type=int, nargs="+", default=[1, 2, 4, 8])
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--min-batched-speedup", type=float, default=5.0)
    parser.add_argument("--min-procs-speedup", type=float, default=3.0)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--stats-out", default=None)
    parser.add_argument("--inject-crash", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    base_root = pathlib.Path(
        args.cache_dir or tempfile.mkdtemp(prefix="repro-sweep-gate-")
    )
    if base_root.exists():
        shutil.rmtree(base_root)
    failures = []

    # -- timing grid: compile mode, warm must be >= min-speedup faster --
    timing_jobs = build_jobs(
        args.procs, ("selected", "consumer", "producer"), "compile",
        inject_crash=args.inject_crash,
    )
    print(f"timing grid: {len(timing_jobs)} compile-mode points, "
          f"{args.workers} workers")
    cold, t_cold, _ = run_pass(timing_jobs, args.workers, base_root / "timing")
    warm, t_warm, timing_cache = run_pass(
        timing_jobs, args.workers, base_root / "timing"
    )
    check_pass_pair("timing", timing_jobs, cold, warm, failures)

    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    print(f"cold {t_cold:.3f}s, warm {t_warm:.3f}s -> speedup "
          f"{speedup:.2f}x (gate: >= {args.min_speedup:.1f}x)")
    if speedup < args.min_speedup:
        failures.append(f"warm sweep only {speedup:.2f}x faster "
                        f"(need >= {args.min_speedup:.1f}x)")

    if args.inject_crash and not failures:
        crashed = cold[0]
        if crashed.attempts < 2:
            failures.append("injected crash was not retried "
                            f"(attempts={crashed.attempts})")
        else:
            print(f"injected crash recovered: {crashed.label} ok after "
                  f"{crashed.attempts} attempts on {crashed.worker}")

    # -- stats grid: simulate mode, canonical stats byte-identical -----
    stats_jobs = build_jobs((2, 4), ("selected", "consumer"), "simulate")
    print(f"stats grid: {len(stats_jobs)} simulate-mode points")
    s_cold, _, _ = run_pass(stats_jobs, args.workers, base_root / "stats")
    s_warm, _, stats_cache = run_pass(
        stats_jobs, args.workers, base_root / "stats"
    )
    check_pass_pair("stats", stats_jobs, s_cold, s_warm, failures)
    if stats_payload(s_cold) != stats_payload(s_warm):
        failures.append("canonical stats differ between cold and warm passes")
    else:
        print(f"canonical stats byte-identical across "
              f"{len(stats_jobs)} points")

    # -- batched grid: machine-parameter lanes, one sim per batch ------
    # 3 procs x 7 machine variants; the batched evaluator should pay
    # ~3 compiles + 3 lane-vector simulations where the pool path pays
    # 21 full compile+simulate jobs.  Both legs run cold (fresh cache
    # roots), and their measurement payloads must be byte-identical.
    batched_spec = SweepSpec(
        programs={"tomcatv": lambda p: tomcatv_source(n=24, niter=1, procs=p)},
        procs=(2, 4, 8),
        axes={"machine": MACHINE_VARIANTS},
        mode="simulate",
    )
    batched_jobs = batched_spec.jobs()
    print(f"batched grid: {len(batched_jobs)} simulate-mode points "
          f"({len(batched_spec.procs)} procs x {len(MACHINE_VARIANTS)} "
          f"machines)")
    pool_cache = CompileCache(base_root / "batched-pool")
    started = time.perf_counter()
    b_pool = run_sweep(
        batched_jobs, workers=args.workers, cache=pool_cache,
        timeout=120, retries=2, backoff=0.05, mode="pool",
    )
    t_pool = time.perf_counter() - started
    batched_cache = CompileCache(base_root / "batched")
    started = time.perf_counter()
    b_fast = run_sweep(
        batched_jobs, workers=args.workers, cache=batched_cache,
        timeout=120, retries=2, backoff=0.05, mode="batched",
    )
    t_batched = time.perf_counter() - started

    for tag, results in (("pool", b_pool), ("batched", b_fast)):
        if len(results) != len(batched_jobs):
            failures.append(f"batched grid {tag}: grid points were lost")
        bad = [r for r in results if not r.ok]
        if bad:
            failures.append(f"batched grid {tag}: {len(bad)} failed "
                            f"point(s), first: {bad[0].error}")
    off_path = [r.label for r in b_fast if r.worker != "batched"]
    if off_path:
        failures.append(f"batched grid: points fell off the fast path: "
                        f"{off_path[:3]}")
    if stats_payload(b_pool) != stats_payload(b_fast):
        failures.append("batched grid: canonical stats differ from the "
                        "pool path")
    else:
        print(f"batched canonical stats byte-identical across "
              f"{len(batched_jobs)} points")
    batched_speedup = t_pool / t_batched if t_batched > 0 else float("inf")
    print(f"pool {t_pool:.3f}s, batched {t_batched:.3f}s -> speedup "
          f"{batched_speedup:.2f}x (gate: >= "
          f"{args.min_batched_speedup:.1f}x)")
    if batched_speedup < args.min_batched_speedup:
        failures.append(
            f"batched sweep only {batched_speedup:.2f}x faster than the "
            f"pool path (need >= {args.min_batched_speedup:.1f}x)"
        )

    # -- procs grid: the procs axis itself as a lane dimension ---------
    # 7 processor counts x 3 machines over three paper kernels; the
    # batched evaluator fuses each program's 21 points into one batch
    # of 7 procs sub-groups (one compile + sub-simulation each) and one
    # fused extraction, where the pool path pays 21 full jobs.
    procs_values = (1, 2, 3, 4, 6, 8, 12)
    procs_machines = MACHINE_VARIANTS[:5]
    procs_spec = SweepSpec(
        programs={
            "tomcatv": lambda p: tomcatv_source(n=16, niter=1, procs=p),
            "dgefa": lambda p: dgefa_source(n=12, procs=p),
            "appsp": lambda p: appsp_source(
                nx=6, ny=6, nz=6, niter=1, procs=p
            ),
        },
        procs=procs_values,
        axes={"machine": procs_machines},
        mode="simulate",
    )
    procs_jobs = procs_spec.jobs()
    print(f"procs grid: {len(procs_jobs)} simulate-mode points "
          f"({len(procs_values)} procs x {len(procs_machines)} machines "
          f"x {len(procs_spec.programs)} programs)")
    started = time.perf_counter()
    p_pool = run_sweep(
        procs_jobs, workers=args.workers,
        cache=CompileCache(base_root / "procs-pool"),
        timeout=120, retries=2, backoff=0.05, mode="pool",
    )
    t_procs_pool = time.perf_counter() - started
    started = time.perf_counter()
    p_fast = run_sweep(
        procs_jobs, workers=args.workers,
        cache=CompileCache(base_root / "procs-batched"),
        timeout=120, retries=2, backoff=0.05, mode="batched",
    )
    t_procs_batched = time.perf_counter() - started

    for tag, results in (("pool", p_pool), ("batched", p_fast)):
        if len(results) != len(procs_jobs):
            failures.append(f"procs grid {tag}: grid points were lost")
        bad = [r for r in results if not r.ok]
        if bad:
            failures.append(f"procs grid {tag}: {len(bad)} failed "
                            f"point(s), first: {bad[0].error}")
    off_path = [r.label for r in p_fast if r.worker != "batched"]
    if off_path:
        failures.append(f"procs grid: points fell off the fast path: "
                        f"{off_path[:3]}")
    unfused = [r.label for r in p_fast
               if r.procs_lanes != len(procs_values)]
    if unfused:
        failures.append(
            f"procs grid: points whose batch did not fuse all "
            f"{len(procs_values)} procs sub-groups: {unfused[:3]}"
        )
    if stats_payload(p_pool) != stats_payload(p_fast):
        failures.append("procs grid: canonical stats differ from the "
                        "pool path")
    else:
        print(f"procs-lane canonical stats byte-identical across "
              f"{len(procs_jobs)} points")
    procs_speedup = (
        t_procs_pool / t_procs_batched
        if t_procs_batched > 0 else float("inf")
    )
    print(f"pool {t_procs_pool:.3f}s, batched {t_procs_batched:.3f}s -> "
          f"speedup {procs_speedup:.2f}x (gate: >= "
          f"{args.min_procs_speedup:.1f}x)")
    if procs_speedup < args.min_procs_speedup:
        failures.append(
            f"procs-lane sweep only {procs_speedup:.2f}x faster than "
            f"the pool path (need >= {args.min_procs_speedup:.1f}x)"
        )

    # -- compile-once gate: a P-independent program compiles once ------
    # The pinned PROCESSORS(4) directive fixes the grid whether the
    # sweep requests num_procs=None or num_procs=4, so the batched
    # evaluator must compile the source once and dedupe the other lane.
    pinned_source = tomcatv_source(n=16, niter=1, procs=4)
    pinned_jobs = [
        SweepJob(program="tomcatv-pinned", source=pinned_source,
                 mode="simulate", procs=None, options=CompilerOptions()),
        SweepJob(program="tomcatv-pinned", source=pinned_source,
                 mode="simulate", procs=4,
                 options=CompilerOptions(num_procs=4)),
    ]
    pinned = run_sweep(
        pinned_jobs, workers=0, cache=CompileCache(base_root / "pinned"),
        mode="batched",
    )
    bad = [r for r in pinned if not r.ok]
    if bad:
        failures.append(f"compile-once gate: {len(bad)} failed "
                        f"point(s), first: {bad[0].error}")
    elif [r.compile_dedup for r in pinned] != [False, True]:
        failures.append(
            "compile-once gate: pinned-PROCESSORS source was not "
            "compiled exactly once across the procs vector (dedup flags "
            f"{[r.compile_dedup for r in pinned]})"
        )
    elif (json.dumps(pinned[0].canonical_stats, sort_keys=True)
          != json.dumps(pinned[1].canonical_stats, sort_keys=True)):
        failures.append("compile-once gate: the deduped lane's stats "
                        "differ from the compiled lane's")
    else:
        print("compile-once gate: pinned-PROCESSORS source compiled "
              "once for the whole procs vector, identical stats")

    if args.verbose:
        for r in warm + s_warm + b_fast + p_fast:
            print(f"  {r.label:45s} {r.mode:8s} hit={r.cache_hit} "
                  f"worker={r.worker} {r.duration_s * 1e3:7.1f} ms")

    artifact = {
        "timing_jobs": len(timing_jobs),
        "stats_jobs": len(stats_jobs),
        "workers": args.workers,
        "cold_seconds": t_cold,
        "warm_seconds": t_warm,
        "speedup": t_cold / t_warm if t_warm > 0 else None,
        "min_speedup": args.min_speedup,
        "inject_crash": args.inject_crash,
        # hit counts come from the result records: pool workers hold
        # their own CompileCache handles, so parent-side session
        # counters would read zero under a multi-worker sweep
        "timing_warm_hits": sum(r.cache_hit for r in warm),
        "stats_warm_hits": sum(r.cache_hit for r in s_warm),
        "timing_cache": timing_cache.stats_dict(),
        "stats_cache": stats_cache.stats_dict(),
        "batched_jobs": len(batched_jobs),
        "batched_machine_variants": len(MACHINE_VARIANTS),
        "batched_pool_seconds": t_pool,
        "batched_seconds": t_batched,
        "batched_speedup": batched_speedup,
        "min_batched_speedup": args.min_batched_speedup,
        "batched_compile_dedups": sum(r.compile_dedup for r in b_fast),
        "procs_jobs": len(procs_jobs),
        "procs_values": list(procs_values),
        "procs_machine_variants": len(procs_machines),
        "procs_pool_seconds": t_procs_pool,
        "procs_batched_seconds": t_procs_batched,
        "procs_speedup": procs_speedup,
        "min_procs_speedup": args.min_procs_speedup,
        "procs_compile_dedups": sum(r.compile_dedup for r in p_fast),
        "procs_lanes_fused": sum(r.procs_lanes > 1 for r in p_fast),
        "pinned_compile_once": bool(
            pinned and all(r.ok for r in pinned)
            and [r.compile_dedup for r in pinned] == [False, True]
        ),
        "failures": failures,
    }
    if args.stats_out:
        out = pathlib.Path(args.stats_out)
        out.write_text(json.dumps(artifact, indent=1, sort_keys=True) + "\n")
        print(f"wrote cache stats artifact to {out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("sweep gate OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
