#!/usr/bin/env python
"""CI persistent-sweep-service gate.

Submits the batched-grid workload (21 simulate-mode points on TOMCATV:
3 processor counts × 7 machine-parameter variants) to a fresh service
directory as one durable job sharded across the grid's fusion groups,
then drives it with **two** ``repro serve`` worker subprocesses — and
kills one of them mid-run (``_REPRO_SERVICE_EXIT_AFTER_POINTS``
hard-exits the process after N point commits, simulating a kill -9).
The gate holds when:

* the job still completes: the surviving/replacement worker reclaims
  the dead owner's lease and drains the remaining points;
* the job's per-point results are **byte-identical** (shared
  ``repro.records`` schema, volatile provenance fields stripped) to a
  direct serial ``run_sweep(mode="batched")`` of the same grid;
* the catalog's audit shows **each grid point evaluated exactly
  once** — completed points were reused from durable state, never
  recomputed (commit-level exactly-once; only uncommitted in-flight
  work may repeat, and the audit counts it when it does);
* a resubmission of the same grid is served entirely from the catalog
  (all points ``reused``, zero new evaluations).

Writes a JSON artifact (``--stats-out``) with the queue/catalog
footprint, per-worker shard counts, and the kill diagnostics.

Usage::

    python benchmarks/service_gate.py [--kill-after 3]
                                      [--service-dir DIR] [--stats-out F]
                                      [--verbose]

Exits 0 when every gate holds, 1 otherwise.
"""

import argparse
import json
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"
sys.path.insert(0, str(SRC_DIR))

from repro.records import comparable  # noqa: E402
from repro.service import KILL_AFTER_ENV, SweepService  # noqa: E402
from repro.service.service import KILLED_EXIT_CODE  # noqa: E402
from repro.sweep import SweepSpec, run_sweep  # noqa: E402

from sweep_gate import MACHINE_VARIANTS  # noqa: E402

_SERVE_SNIPPET = """
import sys
from repro.service import SweepService

service = SweepService(sys.argv[1], lease_ttl=30.0)
processed = service.serve_forever(once=True)
print(f"worker processed {processed} shard(s)")
"""


def build_spec() -> SweepSpec:
    from repro.programs import tomcatv_source

    return SweepSpec(
        programs={
            "tomcatv": lambda p: tomcatv_source(n=8, niter=1, procs=p)
        },
        procs=(2, 4, 8),
        axes={"machine": MACHINE_VARIANTS},
        mode="simulate",
    )


def spawn_worker(service_dir, kill_after=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR)
    env["PYTHONHASHSEED"] = env.get("PYTHONHASHSEED", "0")
    if kill_after is not None:
        env[KILL_AFTER_ENV] = str(kill_after)
    else:
        env.pop(KILL_AFTER_ENV, None)
    return subprocess.Popen(
        [sys.executable, "-c", _SERVE_SNIPPET, str(service_dir)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def canon(results) -> bytes:
    return json.dumps(
        [comparable(r.as_dict()) for r in results], sort_keys=True
    ).encode("utf-8")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--kill-after", type=int, default=3, metavar="N",
        help="hard-kill the doomed worker after N point commits "
        "(default: 3)",
    )
    parser.add_argument("--service-dir", default=None)
    parser.add_argument("--stats-out", default=None, metavar="F")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    scratch = None
    if args.service_dir:
        service_dir = pathlib.Path(args.service_dir)
    else:
        scratch = tempfile.mkdtemp(prefix="repro-service-gate-")
        service_dir = pathlib.Path(scratch) / "svc"

    failures: list[str] = []
    stats: dict = {"kill_after": args.kill_after}
    spec = build_spec()
    jobs = spec.jobs()
    print(f"service grid: {len(jobs)} simulate-mode points "
          f"(3 procs x {len(MACHINE_VARIANTS)} machines)")

    try:
        # the reference leg: direct serial batched sweep, no service
        started = time.perf_counter()
        reference = run_sweep(jobs, workers=0, mode="batched")
        stats["direct_batched_s"] = round(time.perf_counter() - started, 3)
        if not all(r.ok for r in reference):
            failures.append("direct batched reference sweep had failures")

        # submit once, sharded per point for maximal kill granularity
        client = SweepService(service_dir)
        handle = client.submit(spec, name="service-gate", shards=len(jobs))
        stats["shards"] = handle.poll().n_shards

        started = time.perf_counter()
        doomed = spawn_worker(service_dir, kill_after=args.kill_after)
        survivor = spawn_worker(service_dir)
        doomed_out, doomed_err = doomed.communicate(timeout=300)
        if doomed.returncode != KILLED_EXIT_CODE:
            failures.append(
                f"doomed worker exited {doomed.returncode}, expected "
                f"injected kill {KILLED_EXIT_CODE}: {doomed_err.strip()}"
            )
        else:
            print(f"killed worker pid {doomed.pid} after "
                  f"{args.kill_after} point commit(s)")
        survivor_out, survivor_err = survivor.communicate(timeout=300)
        if survivor.returncode != 0:
            failures.append(
                f"surviving worker failed: {survivor_err.strip()}"
            )
        # the dead pid's lease is reclaimable immediately; one more
        # drain pass picks up anything the survivor exited before
        replacement = spawn_worker(service_dir)
        replacement_out, _ = replacement.communicate(timeout=300)
        stats["service_elapsed_s"] = round(time.perf_counter() - started, 3)
        if args.verbose:
            for tag, out in (("doomed", doomed_out),
                             ("survivor", survivor_out),
                             ("replacement", replacement_out)):
                print(f"  {tag}: {out.strip()}")

        status = handle.poll()
        stats["job"] = status.as_dict()
        if status.state != "done":
            failures.append(
                f"job is {status.state} after worker death "
                f"({status.done}/{status.n_points} points)"
            )
        else:
            results = handle.result(timeout=60)
            print(f"job completed: {status.done}/{status.n_points} points "
                  f"across {status.n_shards} shards despite the kill")
            if canon(results) != canon(reference):
                failures.append(
                    "service results diverge from the direct batched sweep"
                )
            else:
                print(f"canonical stats byte-identical to the direct "
                      f"batched sweep across {len(results)} points")

        evaluations = [client.catalog.evaluations(job) for job in jobs]
        stats["evaluations"] = evaluations
        over = [count for count in evaluations if count != 1]
        if over:
            failures.append(
                f"{len(over)} grid point(s) not evaluated exactly once: "
                f"{sorted(set(evaluations))}"
            )
        else:
            print("catalog audit: every grid point evaluated exactly once")

        # warm resubmission: all catalog, zero recomputation
        second = client.submit(spec, name="service-gate-warm")
        client.serve_forever(once=True)
        warm_status = second.poll()
        stats["warm"] = warm_status.as_dict()
        if warm_status.reused != len(jobs):
            failures.append(
                f"warm resubmission recomputed points: "
                f"{warm_status.reused}/{len(jobs)} reused"
            )
        elif canon(second.result(timeout=60)) != canon(reference):
            failures.append("warm catalog results diverge from reference")
        else:
            print(f"warm resubmission served {warm_status.reused}/"
                  f"{len(jobs)} points from the catalog")

        stats["catalog"] = client.catalog.stats_dict()
        stats["queue_depth"] = client.queue.depth()
        client.close()
    finally:
        if scratch:
            shutil.rmtree(scratch, ignore_errors=True)

    if args.stats_out:
        with open(args.stats_out, "w", encoding="utf-8") as handle_out:
            json.dump(stats, handle_out, indent=1, sort_keys=True,
                      default=str)
            handle_out.write("\n")
        print(f"wrote stats to {args.stats_out}")

    if failures:
        print()
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("service gate OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
