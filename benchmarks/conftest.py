"""Shared benchmark helpers.

Every benchmark regenerates a piece of the paper's evaluation: the
timed quantity is this reproduction's compile+estimate (or simulate)
pipeline, and the *simulated SP2 execution time* — the number that
corresponds to the paper's tables — is attached as
``benchmark.extra_info["simulated_time_s"]`` and also written to
``benchmarks/output/``.
"""

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def record_table(output_dir, name, table):
    (output_dir / f"{name}.txt").write_text(table.render() + "\n")
