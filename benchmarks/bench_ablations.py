"""Ablations of the design choices called out in DESIGN.md §6.

1. consumer-over-producer preference + inner-loop-comm veto,
2. reduction alignment vs full replication,
3. partial privatization,
4. privatization without alignment vs Palermo-style always-no-align,
5. message-vectorization awareness in the cost model.
"""

import pytest

from repro.core import CompilerOptions, PassManager, compile_source
from repro.perf import PerfEstimator
from repro.programs import appsp_source, dgefa_source, tomcatv_source

PROCS = 16

#: one manager for the whole module: each ablation pair compiles the
#: same source twice, so the parse and front-end analyses are shared
_MANAGER = PassManager()


def simulated(source, **opts):
    compiled = compile_source(source, CompilerOptions(**opts), manager=_MANAGER)
    return PerfEstimator(compiled).estimate().total_time


def test_ablation_consumer_veto(benchmark):
    """Turning off the inner-loop-comm veto ('consumer' strategy) must
    not beat the full algorithm — on TOMCATV they coincide, on Figure-1
    style code the veto wins."""
    src = tomcatv_source(n=257, niter=3, procs=PROCS)

    def run():
        return (
            simulated(src, strategy="selected"),
            simulated(src, strategy="consumer"),
        )

    selected, consumer_only = benchmark.pedantic(run, rounds=1, iterations=1)
    assert selected <= consumer_only * 1.01
    benchmark.extra_info["selected_s"] = round(selected, 4)
    benchmark.extra_info["consumer_no_veto_s"] = round(consumer_only, 4)


def test_ablation_palermo_noalign(benchmark):
    """Palermo-style privatization without alignment: every privatizable
    scalar executes with no guard, so partitioned rhs data is fetched by
    every processor — measurably worse than selected alignment (the
    paper's related-work comparison)."""
    src = tomcatv_source(n=257, niter=3, procs=PROCS)

    def run():
        return (
            simulated(src, strategy="selected"),
            simulated(src, strategy="noalign"),
        )

    selected, noalign = benchmark.pedantic(run, rounds=1, iterations=1)
    assert selected < noalign
    benchmark.extra_info["selected_s"] = round(selected, 4)
    benchmark.extra_info["palermo_noalign_s"] = round(noalign, 4)


def test_ablation_reduction_alignment(benchmark):
    src = dgefa_source(n=500, procs=PROCS)

    def run():
        return (
            simulated(src, align_reductions=True),
            simulated(src, align_reductions=False),
        )

    aligned, replicated = benchmark.pedantic(run, rounds=1, iterations=1)
    assert aligned < replicated
    benchmark.extra_info["aligned_s"] = round(aligned, 4)
    benchmark.extra_info["replicated_s"] = round(replicated, 4)


def test_ablation_partial_privatization(benchmark):
    src = appsp_source(nx=32, ny=32, nz=32, niter=2, procs=PROCS, distribution="2d")

    def run():
        return (
            simulated(src),
            simulated(src, partial_privatization=False),
        )

    partial, without = benchmark.pedantic(run, rounds=1, iterations=1)
    assert partial < without
    benchmark.extra_info["partial_s"] = round(partial, 4)
    benchmark.extra_info["no_partial_s"] = round(without, 4)


def test_ablation_message_vectorization(benchmark):
    """A placement-blind cost model (every transfer inner-loop) prices
    TOMCATV orders of magnitude above the vectorizing one — the paper's
    point that the cost model must 'take into account the placement of
    communication'."""
    src = tomcatv_source(n=257, niter=3, procs=PROCS)

    def run():
        return (
            simulated(src),
            simulated(src, message_vectorization=False),
        )

    vectorized, blind = benchmark.pedantic(run, rounds=1, iterations=1)
    assert blind > 10 * vectorized
    benchmark.extra_info["vectorized_s"] = round(vectorized, 4)
    benchmark.extra_info["placement_blind_s"] = round(blind, 4)


def test_ablation_control_flow_privatization(benchmark):
    from repro.programs import figure7_source

    src = figure7_source(n=4096, procs=PROCS)

    def run():
        return (
            simulated(src),
            simulated(src, privatize_control_flow=False),
        )

    privatized, replicated = benchmark.pedantic(run, rounds=1, iterations=1)
    assert privatized < replicated
    benchmark.extra_info["privatized_s"] = round(privatized, 6)
    benchmark.extra_info["replicated_s"] = round(replicated, 6)


def test_extension_message_combining(benchmark):
    """The paper's future work: "considerable scope for improving the
    performance ... by global message combining across loop nests."
    Implemented here as an optional pass; TOMCATV's 16 per-reference
    halo transfers collapse to 4 combined exchanges."""
    src = tomcatv_source(n=513, niter=5, procs=PROCS)

    def run():
        return (
            simulated(src),
            simulated(src, combine_messages=True),
        )

    plain, combined = benchmark.pedantic(run, rounds=1, iterations=1)
    assert combined < plain
    benchmark.extra_info["phpf_s"] = round(plain, 4)
    benchmark.extra_info["with_combining_s"] = round(combined, 4)


def test_extension_auto_privatization(benchmark):
    """The paper's future work: automatic array privatization. Without
    a NEW clause the baseline compiler replicates APPSP's work array;
    the Tu-Padua inference recovers the partial privatization."""
    src = appsp_source(
        nx=32, ny=32, nz=32, niter=2, procs=PROCS,
        distribution="2d", use_new_clause=False,
    )

    def run():
        return (
            simulated(src),
            simulated(src, auto_privatize_arrays=True),
        )

    baseline, auto = benchmark.pedantic(run, rounds=1, iterations=1)
    assert auto < baseline
    benchmark.extra_info["no_inference_s"] = round(baseline, 4)
    benchmark.extra_info["auto_privatized_s"] = round(auto, 4)
