"""Paper Table 3 — APPSP, n = 64.

Columns: 1-D ± array privatization, 2-D ± partial privatization.
Shape asserted: the no-privatization variants are far slower and do not
scale (the paper aborted them after >1 day); partial privatization is
what makes the 2-D distribution usable at all.
"""

import pytest

from repro.core import CompilerOptions, compile_source
from repro.perf import PerfEstimator
from repro.programs import appsp_source
from repro.report import table3_appsp

from conftest import record_table

N = 64
NITER = 5
PROCS = [2, 4, 8, 16]
VARIANTS = {
    "1d-nopriv": ("1d", dict(privatize_arrays=False)),
    "1d-priv": ("1d", {}),
    "2d-nopartial": ("2d", dict(partial_privatization=False)),
    "2d-partial": ("2d", {}),
}


def _run(variant, procs):
    dist, opts = VARIANTS[variant]
    compiled = compile_source(
        appsp_source(nx=N, ny=N, nz=N, niter=NITER, procs=procs, distribution=dist),
        CompilerOptions(**opts),
    )
    return PerfEstimator(compiled).estimate()


@pytest.mark.parametrize("procs", PROCS)
@pytest.mark.parametrize("variant", list(VARIANTS))
def test_table3_cell(benchmark, variant, procs):
    estimate = benchmark.pedantic(_run, args=(variant, procs), rounds=1, iterations=1)
    benchmark.extra_info["simulated_time_s"] = round(estimate.total_time, 4)
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["procs"] = procs


def test_table3_full(benchmark, output_dir):
    table = benchmark.pedantic(
        table3_appsp,
        kwargs=dict(n=N, niter=NITER, procs=tuple(PROCS)),
        rounds=1,
        iterations=1,
    )
    record_table(output_dir, "table3_appsp", table)
    print()
    print(table.render())

    nopriv_1d = [table.cell(p, "1-D, No Array Priv.") for p in PROCS]
    priv_1d = [table.cell(p, "1-D, Priv.") for p in PROCS]
    nopart_2d = [table.cell(p, "2-D, No Partial Priv.") for p in PROCS]
    part_2d = [table.cell(p, "2-D, Partial Priv.") for p in PROCS]
    # Privatization always wins.
    assert all(b < a for a, b in zip(nopriv_1d, priv_1d))
    assert all(b < a for a, b in zip(nopart_2d, part_2d))
    # The no-privatization versions do not scale.
    assert nopriv_1d[-1] >= nopriv_1d[0]
    assert nopart_2d[-1] >= nopart_2d[0]


def test_table3_simulator_crosscheck(benchmark, output_dir):
    """Table 3's privatization comparisons re-measured by execution on
    the simulated machine."""
    from repro.report import table3_appsp_simulated

    table = benchmark.pedantic(
        table3_appsp_simulated,
        kwargs=dict(n=8, niter=2, procs=(4,)),
        rounds=1,
        iterations=1,
    )
    record_table(output_dir, "table3_appsp_simulated", table)
    assert table.cell(4, "2-D, Partial Priv.") < table.cell(
        4, "2-D, No Partial Priv."
    )
    assert table.cell(4, "1-D, Priv.") < table.cell(4, "1-D, No Array Priv.")
