"""Privatization vs scalar expansion (the paper's related-work
comparison, references [16]/[7]): same parallelism, different memory."""

import pytest

from repro.core import CompilerOptions, compile_procedure, compile_source
from repro.core.expansion import expand_scalars
from repro.perf import PerfEstimator, memory_report
from repro.programs import tomcatv_source

PROCS = 16


def test_privatization_vs_expansion(benchmark):
    src = tomcatv_source(n=257, niter=3, procs=PROCS)

    def run():
        priv = compile_source(src, CompilerOptions())
        expanded = compile_procedure(
            expand_scalars(src, num_procs=PROCS).proc, CompilerOptions()
        )
        return priv, expanded

    priv, expanded = benchmark.pedantic(run, rounds=1, iterations=1)
    t_priv = PerfEstimator(priv).estimate().total_time
    t_exp = PerfEstimator(expanded).estimate().total_time
    m_priv = memory_report(priv).total_bytes
    m_exp = memory_report(expanded).total_bytes

    # Expansion pays O(n) memory per expanded temporary; privatization
    # achieves comparable (or better) time with O(1) extra storage.
    assert m_exp > 1.5 * m_priv
    assert t_priv <= t_exp * 1.1

    benchmark.extra_info["privatized_s"] = round(t_priv, 4)
    benchmark.extra_info["expanded_s"] = round(t_exp, 4)
    benchmark.extra_info["privatized_KiB"] = m_priv // 1024
    benchmark.extra_info["expanded_KiB"] = m_exp // 1024
