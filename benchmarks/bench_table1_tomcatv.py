"""Paper Table 1 — TOMCATV, (*, BLOCK), n = 513.

Columns: scalar Replication / Producer Alignment / Selected Alignment;
rows: 1, 2, 4, 8, 16 processors. The benchmark times this
reproduction's compile+estimate pipeline; the simulated SP2 execution
time (the paper's quantity) is attached as extra_info and asserted to
follow the paper's shape:

* only Selected Alignment achieves speedup,
* Selected beats the baselines by > 2 orders of magnitude at P = 16.
"""

import pytest

from repro.core import CompilerOptions, compile_source
from repro.perf import PerfEstimator
from repro.programs import tomcatv_source
from repro.report import table1_tomcatv

from conftest import record_table

N = 513
NITER = 5
STRATEGIES = ["replication", "producer", "selected"]
PROCS = [1, 2, 4, 8, 16]


def _run(strategy, procs):
    compiled = compile_source(
        tomcatv_source(n=N, niter=NITER, procs=procs),
        CompilerOptions(strategy=strategy),
    )
    return PerfEstimator(compiled).estimate()


@pytest.mark.parametrize("procs", PROCS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_table1_cell(benchmark, strategy, procs):
    estimate = benchmark.pedantic(
        _run, args=(strategy, procs), rounds=1, iterations=1
    )
    benchmark.extra_info["simulated_time_s"] = round(estimate.total_time, 4)
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["procs"] = procs


def test_table1_full(benchmark, output_dir):
    table = benchmark.pedantic(
        table1_tomcatv,
        kwargs=dict(n=N, niter=NITER, procs=tuple(PROCS)),
        rounds=1,
        iterations=1,
    )
    record_table(output_dir, "table1_tomcatv", table)
    print()
    print(table.render())

    selected = [table.cell(p, "Selected Alignment") for p in PROCS]
    replication = [table.cell(p, "Replication") for p in PROCS]
    producer = [table.cell(p, "Producer Alignment") for p in PROCS]
    # Selected speeds up monotonically.
    assert all(b < a for a, b in zip(selected, selected[1:]))
    # The baselines never achieve speedup over serial.
    assert min(replication[1:]) >= 0.9 * replication[0]
    assert min(producer[1:]) >= 0.9 * producer[0]
    # More than two orders of magnitude at 16 processors.
    assert max(replication[-1], producer[-1]) / selected[-1] > 100


def test_table1_simulator_crosscheck(benchmark, output_dir):
    """The same Table-1 comparison, measured by actually executing on
    the simulated machine at a reduced size: the ordering must match
    the analytic table's."""
    from repro.report import table1_tomcatv_simulated

    table = benchmark.pedantic(
        table1_tomcatv_simulated,
        kwargs=dict(n=12, niter=2, procs=(2, 4)),
        rounds=1,
        iterations=1,
    )
    record_table(output_dir, "table1_tomcatv_simulated", table)
    for procs in (2, 4):
        selected = table.cell(procs, "Selected Alignment")
        assert selected < table.cell(procs, "Replication")
        assert selected < table.cell(procs, "Producer Alignment")
