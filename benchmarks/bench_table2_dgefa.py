"""Paper Table 2 — DGEFA, (*, CYCLIC), n = 1000.

Columns: Default (replicated maxloc reduction scalars) vs Alignment
(Section 2.3 reduction mapping). Shape asserted: Alignment wins, and
the Default's overhead is an increasing share of the runtime with P.
"""

import pytest

from repro.core import CompilerOptions, compile_source
from repro.perf import PerfEstimator
from repro.programs import dgefa_source
from repro.report import table2_dgefa

from conftest import record_table

N = 1000
PROCS = [2, 4, 8, 16]


def _run(align, procs):
    compiled = compile_source(
        dgefa_source(n=N, procs=procs),
        CompilerOptions(align_reductions=align),
    )
    return PerfEstimator(compiled).estimate()


@pytest.mark.parametrize("procs", PROCS)
@pytest.mark.parametrize("align", [False, True], ids=["default", "alignment"])
def test_table2_cell(benchmark, align, procs):
    estimate = benchmark.pedantic(_run, args=(align, procs), rounds=1, iterations=1)
    benchmark.extra_info["simulated_time_s"] = round(estimate.total_time, 4)
    benchmark.extra_info["align_reductions"] = align
    benchmark.extra_info["procs"] = procs


def test_table2_full(benchmark, output_dir):
    table = benchmark.pedantic(
        table2_dgefa, kwargs=dict(n=N, procs=tuple(PROCS)), rounds=1, iterations=1
    )
    record_table(output_dir, "table2_dgefa", table)
    print()
    print(table.render())

    default = [table.cell(p, "Default") for p in PROCS]
    aligned = [table.cell(p, "Alignment") for p in PROCS]
    # Alignment wins at every processor count.
    assert all(a < d for a, d in zip(aligned, default))
    # Both versions speed up with P (elimination itself is parallel).
    assert aligned[-1] < aligned[0]
    assert default[-1] < default[0]
    # The replicated reduction's overhead share grows with P.
    shares = [(d - a) / a for d, a in zip(default, aligned)]
    assert shares[-1] > shares[0]
