#!/usr/bin/env python
"""CI determinism gate.

Runs ``python -m repro run`` twice on the same tomcatv program in two
*separate* processes and byte-compares the ``--stats-json`` output.
The payload (``SPMDSimulator.canonical_stats``) keys per-event traffic
on the stable event ordinal, so two runs of the same source must be
byte-identical — any drift means communication charging picked up a
run-varying input again (the ``id(event)`` coalescing-key bug this
gate was built to catch).

Usage::

    python benchmarks/determinism_gate.py [--n 33] [--niter 2]
                                          [--procs 8] [--verbose]

Exits 0 on byte-identical stats, 1 on mismatch (with a unified diff).
"""

import argparse
import difflib
import os
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"
sys.path.insert(0, str(SRC_DIR))

from repro.programs import tomcatv_source  # noqa: E402


def run_once(program: pathlib.Path, procs: int, stats: pathlib.Path) -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    env.setdefault("PYTHONHASHSEED", "0")
    subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "run",
            str(program),
            "--procs",
            str(procs),
            "--stats-json",
            str(stats),
        ],
        check=True,
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL if not VERBOSE else None,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=33, help="tomcatv grid size")
    parser.add_argument("--niter", type=int, default=2)
    parser.add_argument("--procs", type=int, default=8)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    global VERBOSE
    VERBOSE = args.verbose

    with tempfile.TemporaryDirectory(prefix="determinism-gate-") as tmp:
        tmpdir = pathlib.Path(tmp)
        program = tmpdir / "tomcatv.hpf"
        program.write_text(
            tomcatv_source(n=args.n, niter=args.niter, procs=args.procs)
        )
        first = tmpdir / "stats_run1.json"
        second = tmpdir / "stats_run2.json"
        run_once(program, args.procs, first)
        run_once(program, args.procs, second)
        a, b = first.read_bytes(), second.read_bytes()
        if a == b:
            print(
                f"determinism gate PASSED: two tomcatv runs "
                f"(n={args.n}, niter={args.niter}, procs={args.procs}) "
                f"produced byte-identical stats ({len(a)} bytes)"
            )
            return 0
        print("determinism gate FAILED: stats differ between runs")
        diff = difflib.unified_diff(
            a.decode().splitlines(keepends=True),
            b.decode().splitlines(keepends=True),
            fromfile="run1/stats.json",
            tofile="run2/stats.json",
        )
        sys.stdout.writelines(diff)
        return 1


VERBOSE = False

if __name__ == "__main__":
    raise SystemExit(main())
