"""Paper Figures 1–7 as compiler-decision benchmarks.

Each benchmark compiles the figure's code fragment and asserts the
exact decision the paper describes (Figure 3 is the DetermineMapping
pseudocode itself, exercised by every other figure)."""

import pytest

from repro.core import (
    AlignedTo,
    CompilerOptions,
    PrivateNoAlign,
    ReductionMapping,
    compile_source,
)
from repro.ir import IfStmt, ScalarRef
from repro.programs import (
    figure1_source,
    figure2_source,
    figure4_source,
    figure5_source,
    figure6_source,
    figure7_source,
)


def scalar_mappings(compiled, name):
    return [
        compiled.scalar_mapping_of(s.stmt_id)
        for s in compiled.proc.assignments()
        if isinstance(s.lhs, ScalarRef) and s.lhs.symbol.name == name
    ]


def test_figure1_mapping_choices(benchmark):
    compiled = benchmark.pedantic(
        compile_source,
        args=(figure1_source(n=513, procs=16), CompilerOptions()),
        rounds=1,
        iterations=1,
    )
    x = scalar_mappings(compiled, "X")[0]
    y = scalar_mappings(compiled, "Y")[0]
    z = scalar_mappings(compiled, "Z")[0]
    m = scalar_mappings(compiled, "M")[1]
    assert isinstance(x, AlignedTo) and x.is_consumer
    assert isinstance(y, AlignedTo) and not y.is_consumer
    assert isinstance(z, PrivateNoAlign)
    assert isinstance(m, PrivateNoAlign)
    benchmark.extra_info["decisions"] = {
        "x": str(x), "y": str(y), "z": str(z), "m": str(m)
    }


def test_figure2_subscript_consumers(benchmark):
    compiled = benchmark.pedantic(
        compile_source,
        args=(figure2_source(n=512, procs=16), CompilerOptions()),
        rounds=1,
        iterations=1,
    )
    # H(i,p) local -> no events on H; G(q,i) remote -> events on G.
    assert not [e for e in compiled.comm.events if e.ref.symbol.name == "H"]
    assert [e for e in compiled.comm.events if e.ref.symbol.name == "G"]


def test_figure4_align_levels(benchmark):
    from repro.core import align_level, build_context
    from repro.ir import ArrayElemRef, parse_and_build

    def run():
        ctx = build_context(parse_and_build(figure4_source(n=64, p0=4, p1=4)))
        levels = {}
        for stmt in ctx.proc.assignments():
            if isinstance(stmt.lhs, ArrayElemRef):
                name = stmt.lhs.symbol.name
                levels[name] = align_level(
                    stmt.lhs, ctx.proc, ctx.ssa, ctx.array_mappings[name]
                )
        return levels

    levels = benchmark.pedantic(run, rounds=1, iterations=1)
    assert levels == {"A": 2, "B": 3}
    benchmark.extra_info["align_levels"] = levels


def test_figure5_reduction_mapping(benchmark):
    compiled = benchmark.pedantic(
        compile_source,
        args=(figure5_source(n=512, p0=4, p1=4), CompilerOptions()),
        rounds=1,
        iterations=1,
    )
    mapping = scalar_mappings(compiled, "S")[1]
    assert isinstance(mapping, ReductionMapping)
    assert mapping.replicated_grid_dims == (1,)
    assert not [e for e in compiled.comm.events if e.ref.symbol.name == "A"]


def test_figure6_partial_privatization(benchmark):
    compiled = benchmark.pedantic(
        compile_source,
        args=(figure6_source(n=32, p0=4, p1=4), CompilerOptions()),
        rounds=1,
        iterations=1,
    )
    privs = compiled.array_result.privatizations
    assert len(privs) == 1 and privs[0].is_partial
    assert privs[0].privatized_grid_dims == (1,)
    assert privs[0].partitioned_dims == {1: 0}


def test_figure7_control_flow_privatization(benchmark):
    compiled = benchmark.pedantic(
        compile_source,
        args=(figure7_source(n=512, procs=16), CompilerOptions()),
        rounds=1,
        iterations=1,
    )
    decisions = [
        compiled.cf_decisions[s.stmt_id]
        for s in compiled.proc.all_stmts()
        if isinstance(s, IfStmt)
    ]
    assert decisions and all(d.privatized for d in decisions)
    assert not compiled.comm.events
